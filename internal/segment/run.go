package segment

import (
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync"
	"time"

	"applab/internal/rdf"
)

// Immutable sorted run ("ASEG1"): one flushed memtable (or one
// compaction output) as a self-describing, checksummed file that can
// be opened by reading its fixed-size footer alone — the property that
// makes cold boot O(segments), not O(dataset).
//
//	magic "ASEG1"
//	dict     nTerms terms, structurally encoded, sorted by Key
//	rows     nRows fixed 29-byte rows (s,p,o u32 | vf,vt i64 | flags u8)
//	         sorted in (S,P,O) order; flags bit0 = valid time, bit1 =
//	         tombstone
//	posPerm  nRows u32 row ids in (P,O,S) order
//	ospPerm  nRows u32 row ids in (O,S,P) order
//	sIdx     per distinct subject: (termID, start, count) into rows
//	pIdx     per distinct predicate: (termID, start, count) into posPerm
//	oIdx     per distinct object: (termID, start, count) into ospPerm
//	footer   fixed 125 bytes: section offsets/counts/CRCs, tombstone
//	         count, footer CRC, magic "ASEGF"
//
// The three index sections double as the per-segment cardinality
// footer: the count of any bound term at any position is one binary
// search away, with no row bytes read — which is what the query
// planner's StatsSource consumes. Row, permutation, and dictionary
// sections are loaded lazily (and verified against their CRCs) on
// first use, pread-style via ReadAt; opening a run reads only the
// footer.
const (
	runMagic       = "ASEG1"
	runFooterMagic = "ASEGF"
	rowSize        = 29
	idxEntrySize   = 12
	footerSize     = 125
)

const (
	rowHasVT     = 1 << 0
	rowTombstone = 1 << 1
)

// row is one dictionary-encoded triple.
type row struct {
	s, p, o uint32
	vf, vt  int64
	flags   uint8
}

// idxEntry maps a term (at one position) to a contiguous range of the
// section it indexes.
type idxEntry struct {
	term  uint32
	start uint32
	count uint32
}

type runFooter struct {
	dictOff, dictLen uint64
	nTerms           uint32
	dictCRC          uint32
	rowsOff          uint64
	nRows            uint32
	rowsCRC          uint32
	posOff           uint64
	posCRC           uint32
	ospOff           uint64
	ospCRC           uint32
	sOff             uint64
	nS               uint32
	sCRC             uint32
	pOff             uint64
	nP               uint32
	pCRC             uint32
	oOff             uint64
	nO               uint32
	oCRC             uint32
	nTombs           uint32
}

// Run is an open immutable segment.
type Run struct {
	path string
	seq  uint64
	f    *os.File
	size int64
	foot runFooter

	// mu guards the lazy section loads; once a section pointer is set
	// it is immutable and readable without the lock (set-once under mu,
	// read via loaded copies returned by the ensure* helpers).
	mu      sync.Mutex
	terms   []rdf.Term
	keys    []string
	rows    []row
	posPerm []uint32
	ospPerm []uint32
	sIdx    []idxEntry
	pIdx    []idxEntry
	oIdx    []idxEntry
}

// encodeRun serializes adds (live triples) and tombs (tombstones) into
// a complete run image.
func encodeRun(adds, tombs []rdf.Triple) ([]byte, error) {
	n := len(adds) + len(tombs)
	if n > maxTriples {
		return nil, fmt.Errorf("segment: run of %d rows exceeds the %d cap", n, maxTriples)
	}
	// Dictionary: every distinct term, sorted by key.
	termSet := map[string]rdf.Term{}
	collect := func(ts []rdf.Triple) {
		for _, t := range ts {
			termSet[t.S.Key()] = t.S
			termSet[t.P.Key()] = t.P
			termSet[t.O.Key()] = t.O
		}
	}
	collect(adds)
	collect(tombs)
	keys := make([]string, 0, len(termSet))
	for k := range termSet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	id := make(map[string]uint32, len(keys))
	for i, k := range keys {
		id[k] = uint32(i)
	}

	rows := make([]row, 0, n)
	addRows := func(ts []rdf.Triple, extra uint8) {
		for _, t := range ts {
			r := row{s: id[t.S.Key()], p: id[t.P.Key()], o: id[t.O.Key()], flags: extra}
			if t.HasValidTime() {
				r.flags |= rowHasVT
				r.vf = t.ValidFrom.UnixNano()
				r.vt = t.ValidTo.UnixNano()
			}
			rows = append(rows, r)
		}
	}
	addRows(adds, 0)
	addRows(tombs, rowTombstone)
	sort.Slice(rows, func(i, j int) bool { return rowLess(rows[i], rows[j], bySPO) })

	perm := func(less func(a, b row) bool) []uint32 {
		p := make([]uint32, len(rows))
		for i := range p {
			p[i] = uint32(i)
		}
		sort.Slice(p, func(i, j int) bool { return less(rows[p[i]], rows[p[j]]) })
		return p
	}
	posPerm := perm(func(a, b row) bool { return rowLess(a, b, byPOS) })
	ospPerm := perm(func(a, b row) bool { return rowLess(a, b, byOSP) })

	index := func(termAt func(row) uint32, order []uint32) []idxEntry {
		var idx []idxEntry
		for i := 0; i < len(order); {
			t := termAt(rows[order[i]])
			j := i
			for j < len(order) && termAt(rows[order[j]]) == t {
				j++
			}
			idx = append(idx, idxEntry{term: t, start: uint32(i), count: uint32(j - i)})
			i = j
		}
		return idx
	}
	rowOrder := make([]uint32, len(rows))
	for i := range rowOrder {
		rowOrder[i] = uint32(i)
	}
	sIdx := index(func(r row) uint32 { return r.s }, rowOrder)
	pIdx := index(func(r row) uint32 { return r.p }, posPerm)
	oIdx := index(func(r row) uint32 { return r.o }, ospPerm)

	// Serialize the sections.
	dict := make([]byte, 0, 32*len(keys))
	for _, k := range keys {
		dict = appendTerm(dict, termSet[k])
	}
	rowsBuf := make([]byte, 0, rowSize*len(rows))
	for _, r := range rows {
		rowsBuf = appendU32(rowsBuf, r.s)
		rowsBuf = appendU32(rowsBuf, r.p)
		rowsBuf = appendU32(rowsBuf, r.o)
		rowsBuf = appendI64(rowsBuf, r.vf)
		rowsBuf = appendI64(rowsBuf, r.vt)
		rowsBuf = append(rowsBuf, r.flags)
	}
	permBuf := func(p []uint32) []byte {
		b := make([]byte, 0, 4*len(p))
		for _, v := range p {
			b = appendU32(b, v)
		}
		return b
	}
	posBuf, ospBuf := permBuf(posPerm), permBuf(ospPerm)
	idxBuf := func(idx []idxEntry) []byte {
		b := make([]byte, 0, idxEntrySize*len(idx))
		for _, e := range idx {
			b = appendU32(b, e.term)
			b = appendU32(b, e.start)
			b = appendU32(b, e.count)
		}
		return b
	}
	sBuf, pBuf, oBuf := idxBuf(sIdx), idxBuf(pIdx), idxBuf(oIdx)

	img := make([]byte, 0, len(runMagic)+len(dict)+len(rowsBuf)+len(posBuf)+len(ospBuf)+len(sBuf)+len(pBuf)+len(oBuf)+footerSize)
	img = append(img, runMagic...)
	foot := runFooter{nTerms: uint32(len(keys)), nRows: uint32(len(rows)), nTombs: uint32(len(tombs)),
		nS: uint32(len(sIdx)), nP: uint32(len(pIdx)), nO: uint32(len(oIdx))}
	foot.dictOff, foot.dictLen, foot.dictCRC = uint64(len(img)), uint64(len(dict)), crc32.ChecksumIEEE(dict)
	img = append(img, dict...)
	foot.rowsOff, foot.rowsCRC = uint64(len(img)), crc32.ChecksumIEEE(rowsBuf)
	img = append(img, rowsBuf...)
	foot.posOff, foot.posCRC = uint64(len(img)), crc32.ChecksumIEEE(posBuf)
	img = append(img, posBuf...)
	foot.ospOff, foot.ospCRC = uint64(len(img)), crc32.ChecksumIEEE(ospBuf)
	img = append(img, ospBuf...)
	foot.sOff, foot.sCRC = uint64(len(img)), crc32.ChecksumIEEE(sBuf)
	img = append(img, sBuf...)
	foot.pOff, foot.pCRC = uint64(len(img)), crc32.ChecksumIEEE(pBuf)
	img = append(img, pBuf...)
	foot.oOff, foot.oCRC = uint64(len(img)), crc32.ChecksumIEEE(oBuf)
	img = append(img, oBuf...)
	img = append(img, encodeFooter(foot)...)
	return img, nil
}

type rowOrderKind int

const (
	bySPO rowOrderKind = iota
	byPOS
	byOSP
)

func rowLess(a, b row, ord rowOrderKind) bool {
	var ka, kb [3]uint32
	switch ord {
	case bySPO:
		ka, kb = [3]uint32{a.s, a.p, a.o}, [3]uint32{b.s, b.p, b.o}
	case byPOS:
		ka, kb = [3]uint32{a.p, a.o, a.s}, [3]uint32{b.p, b.o, b.s}
	default:
		ka, kb = [3]uint32{a.o, a.s, a.p}, [3]uint32{b.o, b.s, b.p}
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return ka[i] < kb[i]
		}
	}
	if a.vf != b.vf {
		return a.vf < b.vf
	}
	if a.vt != b.vt {
		return a.vt < b.vt
	}
	return a.flags < b.flags
}

func encodeFooter(f runFooter) []byte {
	b := make([]byte, 0, footerSize)
	b = appendU64(b, f.dictOff)
	b = appendU64(b, f.dictLen)
	b = appendU32(b, f.nTerms)
	b = appendU32(b, f.dictCRC)
	b = appendU64(b, f.rowsOff)
	b = appendU32(b, f.nRows)
	b = appendU32(b, f.rowsCRC)
	b = appendU64(b, f.posOff)
	b = appendU32(b, f.posCRC)
	b = appendU64(b, f.ospOff)
	b = appendU32(b, f.ospCRC)
	b = appendU64(b, f.sOff)
	b = appendU32(b, f.nS)
	b = appendU32(b, f.sCRC)
	b = appendU64(b, f.pOff)
	b = appendU32(b, f.nP)
	b = appendU32(b, f.pCRC)
	b = appendU64(b, f.oOff)
	b = appendU32(b, f.nO)
	b = appendU32(b, f.oCRC)
	b = appendU32(b, f.nTombs)
	b = appendU32(b, crc32.ChecksumIEEE(b))
	b = append(b, runFooterMagic...)
	return b
}

func decodeFooter(b []byte) (runFooter, error) {
	if len(b) != footerSize {
		return runFooter{}, errCorrupt
	}
	if string(b[footerSize-len(runFooterMagic):]) != runFooterMagic {
		return runFooter{}, fmt.Errorf("segment: bad run footer magic")
	}
	fields := b[:footerSize-len(runFooterMagic)-4]
	c := cursor{data: b[len(fields):]}
	sum, _ := c.u32()
	if crc32.ChecksumIEEE(fields) != sum {
		return runFooter{}, fmt.Errorf("segment: run footer checksum mismatch")
	}
	fc := cursor{data: fields}
	var f runFooter
	var err error
	read64 := func(dst *uint64) {
		if err == nil {
			*dst, err = fc.u64()
		}
	}
	read32 := func(dst *uint32) {
		if err == nil {
			*dst, err = fc.u32()
		}
	}
	read64(&f.dictOff)
	read64(&f.dictLen)
	read32(&f.nTerms)
	read32(&f.dictCRC)
	read64(&f.rowsOff)
	read32(&f.nRows)
	read32(&f.rowsCRC)
	read64(&f.posOff)
	read32(&f.posCRC)
	read64(&f.ospOff)
	read32(&f.ospCRC)
	read64(&f.sOff)
	read32(&f.nS)
	read32(&f.sCRC)
	read64(&f.pOff)
	read32(&f.nP)
	read32(&f.pCRC)
	read64(&f.oOff)
	read32(&f.nO)
	read32(&f.oCRC)
	read32(&f.nTombs)
	if err != nil {
		return runFooter{}, err
	}
	return f, nil
}

// OpenRun opens a run file, validating only its header magic and
// footer (magic, checksum, and exact section geometry). No section
// data is read until a query touches it.
func OpenRun(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := openRunFile(f)
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("segment: %s: %w", path, err)
	}
	r.path = path
	return r, nil
}

func openRunFile(f *os.File) (*Run, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < int64(len(runMagic)+footerSize) {
		return nil, fmt.Errorf("segment: run too short (%d bytes)", size)
	}
	head := make([]byte, len(runMagic))
	if _, err := f.ReadAt(head, 0); err != nil {
		return nil, err
	}
	if string(head) != runMagic {
		return nil, fmt.Errorf("segment: bad run magic %q", head)
	}
	fb := make([]byte, footerSize)
	if _, err := f.ReadAt(fb, size-footerSize); err != nil {
		return nil, err
	}
	foot, err := decodeFooter(fb)
	if err != nil {
		return nil, err
	}
	if err := validateGeometry(foot, uint64(size)); err != nil {
		return nil, err
	}
	return &Run{f: f, size: size, foot: foot}, nil
}

// validateGeometry pins every section to its exact expected offset, so
// declared counts can never reference bytes the file does not have and
// every byte of the file is accounted for.
func validateGeometry(f runFooter, size uint64) error {
	if f.nTerms > maxTerms || f.nRows > maxTriples {
		return fmt.Errorf("segment: run declares %d terms / %d rows, over cap", f.nTerms, f.nRows)
	}
	if f.nTombs > f.nRows {
		return fmt.Errorf("segment: run declares %d tombstones of %d rows", f.nTombs, f.nRows)
	}
	for _, n := range []uint32{f.nS, f.nP, f.nO} {
		if n > f.nRows || n > f.nTerms {
			return fmt.Errorf("segment: run index larger than its domain")
		}
	}
	want := uint64(len(runMagic))
	if f.dictOff != want {
		return errGeometry("dict", f.dictOff, want)
	}
	want += f.dictLen
	if f.rowsOff != want {
		return errGeometry("rows", f.rowsOff, want)
	}
	want += uint64(f.nRows) * rowSize
	if f.posOff != want {
		return errGeometry("posPerm", f.posOff, want)
	}
	want += uint64(f.nRows) * 4
	if f.ospOff != want {
		return errGeometry("ospPerm", f.ospOff, want)
	}
	want += uint64(f.nRows) * 4
	if f.sOff != want {
		return errGeometry("sIdx", f.sOff, want)
	}
	want += uint64(f.nS) * idxEntrySize
	if f.pOff != want {
		return errGeometry("pIdx", f.pOff, want)
	}
	want += uint64(f.nP) * idxEntrySize
	if f.oOff != want {
		return errGeometry("oIdx", f.oOff, want)
	}
	want += uint64(f.nO)*idxEntrySize + footerSize
	if size != want {
		return fmt.Errorf("segment: run is %d bytes, geometry wants %d", size, want)
	}
	return nil
}

func errGeometry(section string, got, want uint64) error {
	return fmt.Errorf("segment: %s section at %d, geometry wants %d", section, got, want)
}

// section reads and CRC-checks one section.
func (r *Run) section(off uint64, n int, sum uint32) ([]byte, error) {
	buf := make([]byte, n)
	if _, err := r.f.ReadAt(buf, int64(off)); err != nil {
		return nil, fmt.Errorf("segment: %s: read section: %w", r.path, err)
	}
	if crc32.ChecksumIEEE(buf) != sum {
		return nil, fmt.Errorf("segment: %s: section checksum mismatch", r.path)
	}
	return buf, nil
}

// ensureDict lazily loads the term dictionary.
func (r *Run) ensureDict() ([]rdf.Term, []string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.terms != nil {
		return r.terms, r.keys, nil
	}
	buf, err := r.section(r.foot.dictOff, int(r.foot.dictLen), r.foot.dictCRC)
	if err != nil {
		return nil, nil, err
	}
	hint := r.foot.nTerms
	if hint > 1<<16 {
		hint = 1 << 16
	}
	terms := make([]rdf.Term, 0, hint)
	keys := make([]string, 0, hint)
	c := cursor{data: buf}
	for i := uint32(0); i < r.foot.nTerms; i++ {
		t, err := c.term()
		if err != nil {
			return nil, nil, fmt.Errorf("segment: %s: dict term %d: %w", r.path, i, err)
		}
		k := t.Key()
		if len(keys) > 0 && keys[len(keys)-1] >= k {
			return nil, nil, fmt.Errorf("segment: %s: dict not strictly sorted", r.path)
		}
		terms = append(terms, t)
		keys = append(keys, k)
	}
	if c.remaining() != 0 {
		return nil, nil, fmt.Errorf("segment: %s: trailing dict bytes", r.path)
	}
	r.terms, r.keys = terms, keys
	return terms, keys, nil
}

// ensureRows lazily loads and decodes the row section.
func (r *Run) ensureRows() ([]row, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rows != nil {
		return r.rows, nil
	}
	buf, err := r.section(r.foot.rowsOff, int(r.foot.nRows)*rowSize, r.foot.rowsCRC)
	if err != nil {
		return nil, err
	}
	rows := make([]row, r.foot.nRows)
	c := cursor{data: buf}
	for i := range rows {
		rows[i].s, _ = c.u32()
		rows[i].p, _ = c.u32()
		rows[i].o, _ = c.u32()
		rows[i].vf, _ = c.i64()
		rows[i].vt, _ = c.i64()
		rows[i].flags, err = c.u8()
		if err != nil {
			return nil, errCorrupt
		}
		if rows[i].s >= r.foot.nTerms || rows[i].p >= r.foot.nTerms || rows[i].o >= r.foot.nTerms {
			return nil, fmt.Errorf("segment: %s: row %d references term out of range", r.path, i)
		}
	}
	r.rows = rows
	return rows, nil
}

// ensurePerm lazily loads one of the permutation sections.
func (r *Run) ensurePerm(osp bool) ([]uint32, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	dst := &r.posPerm
	off, sum := r.foot.posOff, r.foot.posCRC
	if osp {
		dst, off, sum = &r.ospPerm, r.foot.ospOff, r.foot.ospCRC
	}
	if *dst != nil {
		return *dst, nil
	}
	buf, err := r.section(off, int(r.foot.nRows)*4, sum)
	if err != nil {
		return nil, err
	}
	perm := make([]uint32, r.foot.nRows)
	c := cursor{data: buf}
	for i := range perm {
		perm[i], _ = c.u32()
		if perm[i] >= r.foot.nRows {
			return nil, fmt.Errorf("segment: %s: permutation entry out of range", r.path)
		}
	}
	*dst = perm
	return perm, nil
}

// ensureIdx lazily loads one of the three index sections. pos is 0 for
// subject, 1 for predicate, 2 for object.
func (r *Run) ensureIdx(pos int) ([]idxEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var dst *[]idxEntry
	var off uint64
	var n, sum uint32
	switch pos {
	case 0:
		dst, off, n, sum = &r.sIdx, r.foot.sOff, r.foot.nS, r.foot.sCRC
	case 1:
		dst, off, n, sum = &r.pIdx, r.foot.pOff, r.foot.nP, r.foot.pCRC
	default:
		dst, off, n, sum = &r.oIdx, r.foot.oOff, r.foot.nO, r.foot.oCRC
	}
	if *dst != nil {
		return *dst, nil
	}
	buf, err := r.section(off, int(n)*idxEntrySize, sum)
	if err != nil {
		return nil, err
	}
	idx := make([]idxEntry, n)
	c := cursor{data: buf}
	var total uint64
	for i := range idx {
		idx[i].term, _ = c.u32()
		idx[i].start, _ = c.u32()
		idx[i].count, err = c.u32()
		if err != nil {
			return nil, errCorrupt
		}
		if idx[i].term >= r.foot.nTerms {
			return nil, fmt.Errorf("segment: %s: index term out of range", r.path)
		}
		if uint64(idx[i].start)+uint64(idx[i].count) > uint64(r.foot.nRows) {
			return nil, fmt.Errorf("segment: %s: index range out of bounds", r.path)
		}
		if i > 0 && idx[i].term <= idx[i-1].term {
			return nil, fmt.Errorf("segment: %s: index not strictly sorted", r.path)
		}
		total += uint64(idx[i].count)
	}
	if total != uint64(r.foot.nRows) {
		return nil, fmt.Errorf("segment: %s: index covers %d of %d rows", r.path, total, r.foot.nRows)
	}
	r.idxStore(dst, idx)
	return idx, nil
}

func (r *Run) idxStore(dst *[]idxEntry, idx []idxEntry) { *dst = idx }

// termID resolves a term to its dictionary id.
func (r *Run) termID(t rdf.Term) (uint32, bool, error) {
	_, keys, err := r.ensureDict()
	if err != nil {
		return 0, false, err
	}
	k := t.Key()
	i := sort.SearchStrings(keys, k)
	if i < len(keys) && keys[i] == k {
		return uint32(i), true, nil
	}
	return 0, false, nil
}

// lookupIdx binary-searches an index section for a term id.
func lookupIdx(idx []idxEntry, id uint32) (idxEntry, bool) {
	i := sort.Search(len(idx), func(i int) bool { return idx[i].term >= id })
	if i < len(idx) && idx[i].term == id {
		return idx[i], true
	}
	return idxEntry{}, false
}

// cardinality estimates the number of rows matching the pattern: the
// smallest bound-position bucket (rdf.Graph's estimator), read from the
// index sections alone. The all-wildcard estimate is the live row
// count.
func (r *Run) cardinality(s, p, o rdf.Term) (int, error) {
	est := -1
	take := func(n int) {
		if est < 0 || n < est {
			est = n
		}
	}
	for pos, t := range []rdf.Term{s, p, o} {
		if t.IsZero() {
			continue
		}
		id, ok, err := r.termID(t)
		if err != nil {
			return 0, err
		}
		if !ok {
			return 0, nil
		}
		idx, err := r.ensureIdx(pos)
		if err != nil {
			return 0, err
		}
		e, ok := lookupIdx(idx, id)
		if !ok {
			return 0, nil
		}
		take(int(e.count))
	}
	if est < 0 {
		return int(r.foot.nRows) - int(r.foot.nTombs), nil
	}
	return est, nil
}

// match streams every row matching the pattern (tombstones included —
// the engine needs them for masking) to fn in the run's sort order for
// the chosen access path.
func (r *Run) match(s, p, o rdf.Term, fn func(t rdf.Triple, tombstone bool)) error {
	if r.foot.nRows == 0 {
		return nil
	}
	type path struct {
		pos   int
		entry idxEntry
	}
	best := path{pos: -1}
	for pos, t := range []rdf.Term{s, p, o} {
		if t.IsZero() {
			continue
		}
		id, ok, err := r.termID(t)
		if err != nil {
			return err
		}
		if !ok {
			return nil // bound term not in this run: nothing matches
		}
		idx, err := r.ensureIdx(pos)
		if err != nil {
			return err
		}
		e, ok := lookupIdx(idx, id)
		if !ok {
			return nil
		}
		if best.pos < 0 || e.count < best.entry.count {
			best = path{pos: pos, entry: e}
		}
	}
	rows, err := r.ensureRows()
	if err != nil {
		return err
	}
	terms, _, err := r.ensureDict()
	if err != nil {
		return err
	}
	emit := func(rw row) {
		t := rdf.Triple{S: terms[rw.s], P: terms[rw.p], O: terms[rw.o]}
		if rw.flags&rowHasVT != 0 {
			t.ValidFrom = time.Unix(0, rw.vf).UTC()
			t.ValidTo = time.Unix(0, rw.vt).UTC()
		}
		if matchesPattern(t, s, p, o) {
			fn(t, rw.flags&rowTombstone != 0)
		}
	}
	switch best.pos {
	case -1: // all wildcards: full scan in SPO order
		for _, rw := range rows {
			emit(rw)
		}
	case 0: // subject range directly over rows
		for _, rw := range rows[best.entry.start : best.entry.start+best.entry.count] {
			emit(rw)
		}
	default: // predicate or object range via the permutation
		perm, err := r.ensurePerm(best.pos == 2)
		if err != nil {
			return err
		}
		for _, ri := range perm[best.entry.start : best.entry.start+best.entry.count] {
			emit(rows[ri])
		}
	}
	return nil
}

// bytes reports the file size.
func (r *Run) bytes() int64 { return r.size }

// Rows reports the total row count (tombstones included).
func (r *Run) Rows() int { return int(r.foot.nRows) }

// Tombstones reports the tombstone row count.
func (r *Run) Tombstones() int { return int(r.foot.nTombs) }

func (r *Run) close() error { return r.f.Close() }
