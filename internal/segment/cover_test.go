package segment

import (
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"applab/internal/faults"
	"applab/internal/rdf"
	"applab/internal/telemetry"
)

// Hostile-input and error-path tests: everything here drives the
// decoders and the engine through the branches a healthy run never
// takes — corrupt frames, tampered footers, failing syscalls, calls
// after Close. The fuzz targets explore this space randomly; these
// tests pin it deterministically so the coverage gate sees it.

// diverseTriples exercises every term encoding: IRI, plain / typed /
// language-tagged literals, blank nodes, and valid time (including
// rows identical up to their interval, which the run sort must order).
func diverseTriples() []rdf.Triple {
	t0 := time.Unix(1000, 0).UTC()
	t1 := time.Unix(2000, 0).UTC()
	t2 := time.Unix(3000, 0).UTC()
	lang := rdf.NewTriple(rdf.NewIRI("http://ex/s"), rdf.NewIRI("http://ex/label"),
		rdf.NewLangLiteral("Blattflächenindex", "de"))
	typed := rdf.NewTriple(rdf.NewIRI("http://ex/s"), rdf.NewIRI("http://ex/lai"),
		rdf.NewTypedLiteral("2.5", "http://www.w3.org/2001/XMLSchema#double"))
	blank := rdf.NewTriple(rdf.NewBlank("b1"), rdf.NewIRI("http://ex/p"),
		rdf.NewLiteral("plain"))
	return []rdf.Triple{
		tri("s", "p", "o"),
		lang,
		typed,
		blank,
		litTri("s", "p", "lex"),
		vtTri("s", "p", "o", t0, t1),
		vtTri("s", "p", "o", t0, t2), // same terms+from, later to
		vtTri("s", "p", "o", t1, t2), // same terms, later from
	}
}

// TestWALDiverseTermsRoundTrip: every term kind survives a crash-reopen
// through the WAL codec.
func TestWALDiverseTermsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, dir, Options{})
	ts := diverseTriples()
	mustAdd(t, e, ts...)
	if _, err := e.Delete(ts[0]); err != nil {
		t.Fatal(err)
	}
	abandon(e)

	e2 := mustOpen(t, dir, Options{})
	defer e2.Close()
	want := canonicalSet(ts[1:])
	if got := committedSet(e2); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay of diverse terms: got %d triples, want %d", len(got), len(want))
	}
}

// walFrame frames a raw payload with a correct checksum, so the decode
// failure under test is the payload's, not the frame's.
func walFrame(payload []byte) []byte {
	b := appendU32(nil, uint32(len(payload)))
	b = appendU32(b, crc32.ChecksumIEEE(payload))
	return append(b, payload...)
}

func walPayload(op byte, ts []rdf.Triple) []byte {
	p := []byte{op}
	p = appendU32(p, uint32(len(ts)))
	for _, t := range ts {
		p = appendTriple(p, t)
	}
	return p
}

// TestWALHostilePayloads: CRC-valid frames with undecodable payloads
// end the committed prefix — they never error, never panic, and never
// let a later valid record through.
func TestWALHostilePayloads(t *testing.T) {
	valid := walPayload(opAdd, diverseTriples())
	bad := [][]byte{
		{},                              // empty payload
		{99},                            // invalid op
		walPayload(7, nil),              // invalid op, framed shape
		{opAdd},                         // op without count
		appendU32([]byte{opAdd}, 1<<31), // count over maxTriples
		appendU32([]byte{opAdd}, 1<<20), // huge count, no triples
		append(valid, 0xAA),             // trailing garbage
	}
	// Every strict prefix of a valid payload is undecodable too: this
	// walks each bounds check in the term and triple decoders.
	for i := 1; i < len(valid); i++ {
		bad = append(bad, valid[:i])
	}
	tail := walFrame(walPayload(opAdd, []rdf.Triple{tri("after", "the", "bad")}))
	for i, p := range bad {
		img := append([]byte(walMagic), walFrame(p)...)
		img = append(img, tail...)
		ops, good, err := replayWAL(img)
		if err != nil {
			t.Fatalf("payload %d: replay error %v, want torn-frame stop", i, err)
		}
		if len(ops) != 0 || good != int64(len(walMagic)) {
			t.Fatalf("payload %d: %d ops committed through a corrupt frame (boundary %d)", i, len(ops), good)
		}
	}
	// A frame whose declared length overruns the file is torn, and a
	// zero-length frame is corrupt.
	for _, img := range [][]byte{
		append([]byte(walMagic), appendU32(appendU32(nil, 1<<20), 0)...),
		append([]byte(walMagic), appendU32(appendU32(nil, 0), 0)...),
	} {
		if ops, good, err := replayWAL(img); err != nil || len(ops) != 0 || good != int64(len(walMagic)) {
			t.Fatalf("hostile frame header: ops=%d good=%d err=%v", len(ops), good, err)
		}
	}
}

// TestWALBrokenAfterFailedRepair: when the post-failure truncate itself
// fails, the WAL refuses further appends instead of writing after
// garbage.
func TestWALBrokenAfterFailedRepair(t *testing.T) {
	dir := t.TempDir()
	wrap := func(s Sink) Sink {
		return noTruncate{faults.NewFile(s, faults.Seq(
			faults.Step{Kind: faults.OK},
			faults.Step{Kind: faults.ConnError},
		), nil)}
	}
	e := mustOpen(t, dir, Options{WrapWAL: wrap})
	mustAdd(t, e, tri("ok", "first", "append"))
	if _, err := e.Add(tri("will", "fail", "now")); !errors.Is(err, faults.ErrInjectedWrite) {
		t.Fatalf("second append: %v, want injected write error", err)
	}
	if _, err := e.Add(tri("after", "broken", "wal")); err == nil ||
		!strings.Contains(err.Error(), "broken") {
		t.Fatalf("append on broken WAL: %v, want broken-WAL refusal", err)
	}
	abandon(e)
	// The committed first record is still recoverable.
	e2 := mustOpen(t, dir, Options{})
	defer e2.Close()
	if got, want := committedSet(e2), canonicalSet([]rdf.Triple{tri("ok", "first", "append")}); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovery after broken WAL lost the committed record")
	}
}

// noTruncate hides the underlying Truncate and fails it, simulating a
// filesystem that cannot even cut the tail back.
type noTruncate struct{ Sink }

func (noTruncate) Truncate(int64) error { return errors.New("injected truncate failure") }

// TestRunByteFlipSweep: flipping ANY single byte of a run image either
// fails OpenRun or fails the section checksum on first read — it never
// panics and never silently serves corrupt rows whose checksum broke.
func TestRunByteFlipSweep(t *testing.T) {
	img, err := encodeRun(diverseTriples(), []rdf.Triple{tri("dead", "row", "here")})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "flip.seg")
	s, p := rdf.NewIRI("http://ex/s"), rdf.NewIRI("http://ex/p")
	for i := range img {
		mut := append([]byte(nil), img...)
		mut[i] ^= 0xFF
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := OpenRun(path)
		if err != nil {
			continue // footer or magic rejected the flip
		}
		// Footer survived: the flip is in a section; reads must verify.
		_ = r.match(rdf.Term{}, rdf.Term{}, rdf.Term{}, func(rdf.Triple, bool) {})
		_ = r.match(s, rdf.Term{}, rdf.Term{}, func(rdf.Triple, bool) {})
		_ = r.match(rdf.Term{}, p, rdf.Term{}, func(rdf.Triple, bool) {})
		_, _ = r.cardinality(s, rdf.Term{}, rdf.Term{})
		_, _ = r.cardinality(rdf.Term{}, rdf.Term{}, rdf.Term{})
		r.close()
	}
	// Truncation sweep: every prefix must be rejected or decode cleanly.
	for _, mut := range faults.Truncations(img, 3, 64) {
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if r, err := OpenRun(path); err == nil {
			_ = r.match(rdf.Term{}, rdf.Term{}, rdf.Term{}, func(rdf.Triple, bool) {})
			r.close()
		}
	}
}

// TestRunGeometryErrors: a syntactically valid, checksummed footer
// whose geometry lies about the file is rejected field by field.
func TestRunGeometryErrors(t *testing.T) {
	img, err := encodeRun(nTriples(6), []rdf.Triple{tri("gone", "p", "o")})
	if err != nil {
		t.Fatal(err)
	}
	foot, err := decodeFooter(img[len(img)-footerSize:])
	if err != nil {
		t.Fatal(err)
	}
	mutations := []struct {
		name string
		mut  func(f *runFooter)
	}{
		{"terms over cap", func(f *runFooter) { f.nTerms = maxTerms + 1 }},
		{"rows over cap", func(f *runFooter) { f.nRows = maxTriples + 1 }},
		{"tombs over rows", func(f *runFooter) { f.nTombs = f.nRows + 1 }},
		{"index over domain", func(f *runFooter) { f.nS = f.nRows + 1 }},
		{"dict off", func(f *runFooter) { f.dictOff++ }},
		{"dict len", func(f *runFooter) { f.dictLen++ }},
		{"rows off", func(f *runFooter) { f.rowsOff++ }},
		{"pos off", func(f *runFooter) { f.posOff++ }},
		{"osp off", func(f *runFooter) { f.ospOff++ }},
		{"s off", func(f *runFooter) { f.sOff++ }},
		{"p off", func(f *runFooter) { f.pOff++ }},
		{"o off", func(f *runFooter) { f.oOff++ }},
		{"size mismatch", func(f *runFooter) { f.nO-- }},
	}
	dir := t.TempDir()
	for _, m := range mutations {
		f := foot
		m.mut(&f)
		mut := append([]byte(nil), img[:len(img)-footerSize]...)
		mut = append(mut, encodeFooter(f)...)
		path := filepath.Join(dir, "geom.seg")
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if r, err := OpenRun(path); err == nil {
			r.close()
			t.Errorf("%s: tampered geometry accepted", m.name)
		}
	}
}

// TestEngineDiskTermSets: Subjects / Objects / FirstObject / Len /
// MemGraph / Dir on a disk engine whose data sits in runs, checked
// against the in-memory graph over the same triples.
func TestEngineDiskTermSets(t *testing.T) {
	ts := append(diverseTriples(), nTriples(9)...)
	g := rdf.NewGraph()
	g.AddAll(ts)

	dir := t.TempDir()
	e := mustOpen(t, dir, Options{})
	mustAdd(t, e, ts...)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Segments() == 0 {
		t.Fatal("no segments; the disk paths are not under test")
	}
	if e.Dir() != dir {
		t.Fatalf("Dir = %q, want %q", e.Dir(), dir)
	}
	if New().Dir() != "" {
		t.Fatal("memory engine reports a directory")
	}
	if n := e.MemGraph().Len(); n != 0 {
		t.Fatalf("memtable has %d triples after flush", n)
	}
	if got, want := e.Len(), g.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}

	p, o := rdf.NewIRI("http://ex/p"), rdf.NewIRI("http://ex/o")
	if got, want := e.Subjects(p, o), g.Subjects(p, o); !reflect.DeepEqual(got, want) {
		t.Fatalf("Subjects(p,o) = %v, want %v", got, want)
	}
	s := rdf.NewIRI("http://ex/s")
	if got, want := e.Objects(s, p), g.Objects(s, p); !reflect.DeepEqual(got, want) {
		t.Fatalf("Objects(s,p) = %v, want %v", got, want)
	}
	fo, ok := e.FirstObject(s, p)
	if !ok {
		t.Fatal("FirstObject found nothing")
	}
	// Disk order is canonical; the first object is the smallest key
	// among the graph's objects for (s, p).
	objs := g.Objects(s, p)
	if len(objs) == 0 || !fo.Equal(objs[0]) {
		t.Fatalf("FirstObject = %v, want %v", fo, objs[0])
	}
	if _, ok := e.FirstObject(rdf.NewIRI("http://ex/absent"), p); ok {
		t.Fatal("FirstObject invented a triple")
	}
	if got, want := canonicalSet(e.Triples()), canonicalSet(g.Triples()); !reflect.DeepEqual(got, want) {
		t.Fatalf("Triples: %d vs %d", len(got), len(want))
	}
}

// TestEngineReadErrorsNoted: a run corrupted at rest does not panic the
// query path — reads fail their checksum, the error lands in Err() and
// the ReadErrors counter, and the rest of the data keeps serving.
func TestEngineReadErrorsNoted(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, dir, Options{})
	mustAdd(t, e, nTriples(8)...)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Corrupt the dictionary of the published run behind the engine's
	// back; sections are lazy, so nothing has been read yet.
	name := filepath.Join(dir, runName(e.segs[0].seq))
	f, err := os.OpenFile(name, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, int64(len(runMagic))+2); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if err := e.Err(); err != nil {
		t.Fatalf("Err before any read: %v", err)
	}
	_ = e.Match(rdf.Term{}, rdf.Term{}, rdf.Term{})
	if err := e.Err(); err == nil {
		t.Fatal("Match over a corrupt run noted no error")
	}
	_ = e.Cardinality(rdf.NewIRI("http://ex/s0"), rdf.Term{}, rdf.Term{})
	if n := e.Stats().ReadErrors; n < 2 {
		t.Fatalf("ReadErrors = %d, want >= 2 (match + cardinality)", n)
	}
}

// TestOpenRejectsCorruptState: the open path refuses bad manifests, bad
// run files, bad run names, and bad WAL headers — and closes whatever
// it had already opened on the way out.
func TestOpenRejectsCorruptState(t *testing.T) {
	if _, err := Open("", Options{}); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}

	// A path whose parent is a file cannot be MkdirAll'd.
	tmp := t.TempDir()
	file := filepath.Join(tmp, "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(file, "sub"), Options{}); err == nil {
		t.Fatal("Open under a plain file succeeded")
	}

	// seed builds a dir with one committed run and a clean WAL,
	// returning the dir and the committed run's file name.
	seed := func(t *testing.T) (string, string) {
		dir := t.TempDir()
		e := mustOpen(t, dir, Options{})
		mustAdd(t, e, nTriples(5)...)
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		name := runName(e.segs[0].seq)
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		return dir, name
	}

	cases := []struct {
		name string
		mut  func(t *testing.T, dir, run string)
	}{
		{"bad manifest magic", func(t *testing.T, dir, run string) {
			if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("NOPE\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"manifest path escape", func(t *testing.T, dir, run string) {
			body := manifestMagic + "\nseg-../../etc.seg\n"
			if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"manifest foreign entry", func(t *testing.T, dir, run string) {
			body := manifestMagic + "\nwal.log\n"
			if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"manifest lists missing run", func(t *testing.T, dir, run string) {
			body := manifestMagic + "\n" + run + "\n" + runName(99) + "\n"
			if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"unparsable run name", func(t *testing.T, dir, run string) {
			// Valid run content under a name runSeq cannot parse, listed
			// after a good run so closeAll has something to close.
			data, err := os.ReadFile(filepath.Join(dir, run))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "seg-xx.seg"), data, 0o644); err != nil {
				t.Fatal(err)
			}
			body := manifestMagic + "\n" + run + "\nseg-xx.seg\n"
			if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bad wal magic", func(t *testing.T, dir, run string) {
			if err := os.WriteFile(filepath.Join(dir, "wal.log"), []byte("XWAL9junk"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated run footer", func(t *testing.T, dir, run string) {
			path := filepath.Join(dir, run)
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, info.Size()-3); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, run := seed(t)
			tc.mut(t, dir, run)
			if e, err := Open(dir, Options{}); err == nil {
				e.Close()
				t.Fatal("Open accepted corrupt state")
			}
		})
	}
}

// TestClosedEngineRefusesWrites: every mutating call after Close fails
// cleanly; Close and Flush stay idempotent.
func TestClosedEngineRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, dir, Options{})
	mustAdd(t, e, tri("a", "b", "c"))
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := e.Add(tri("x", "y", "z")); err == nil {
		t.Fatal("Add after Close succeeded")
	}
	if _, err := e.Delete(tri("a", "b", "c")); err == nil {
		t.Fatal("Delete after Close succeeded")
	}
	if err := e.Compact(); err == nil {
		t.Fatal("Compact after Close succeeded")
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush after Close: %v (must be a no-op)", err)
	}

	m := New()
	if changed, err := m.AddAll(nil); err != nil || changed {
		t.Fatalf("AddAll(nil) = %v, %v", changed, err)
	}
	if err := m.Flush(); err != nil {
		t.Fatalf("memory Flush: %v", err)
	}
	if err := m.Compact(); err != nil {
		t.Fatalf("memory Compact: %v", err)
	}
}

// TestBackgroundCompactionError: a failing merge (corrupt run) is noted
// on the engine instead of killing the compaction loop.
func TestBackgroundCompactionError(t *testing.T) {
	dir := t.TempDir()
	clock := faults.NewClock(time.Unix(0, 0))
	e := mustOpen(t, dir, Options{
		CompactAt:    2,
		CompactEvery: time.Minute,
		After:        clock.After,
	})
	mustAdd(t, e, nTriples(6)...)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, e, tri("second", "run", "x"))
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the first run at rest so the merge read fails.
	name := filepath.Join(dir, runName(e.segs[0].seq))
	f, err := os.OpenFile(name, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, int64(len(runMagic))+1); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	clock.AwaitTimers(1)
	clock.Advance(time.Minute)
	clock.AwaitTimers(2) // first tick fully processed

	if err := e.Err(); err == nil {
		t.Fatal("background compaction over a corrupt run noted no error")
	}
	if e.Stats().Compactions != 0 {
		t.Fatal("a failed compaction was counted as done")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRegisterMetricsLabels: the labeled registration path (what the
// sharded store uses per shard) snapshots per-engine values.
func TestRegisterMetricsLabels(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New()
	mustAdd(t, e, nTriples(3)...)
	RegisterMetrics(reg, e, "shard", "7")
	snap := reg.Snapshot()
	found := false
	for name, v := range snap.Gauges {
		if strings.Contains(name, "segment_memtable_triples") && strings.Contains(name, "shard") {
			found = true
			if v != 3 {
				t.Fatalf("labeled memtable gauge = %v, want 3", v)
			}
		}
	}
	if !found {
		t.Fatalf("no labeled segment gauge in snapshot: %v", snap.Gauges)
	}
}
