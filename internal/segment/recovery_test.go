package segment

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"applab/internal/faults"
	"applab/internal/rdf"
)

// The crash-recovery matrix: every test injects a storage fault (torn
// tail, short write, write error, fsync error, duplicate replay) and
// asserts the reopened engine serves EXACTLY the committed pre-crash
// set — nothing lost, nothing resurrected. All scenarios run with zero
// real sleeps; the background-compaction test drives a fake clock.

// abandon simulates a crash: close the raw file descriptors without
// flushing or resetting anything, as a killed process would.
func abandon(e *Engine) {
	if e.wal != nil {
		e.wal.f.Close()
	}
	for _, r := range e.segs {
		r.close()
	}
}

// committedSet is the canonical triple set of an engine.
func committedSet(e *Engine) map[string]bool { return canonicalSet(e.Triples()) }

// TestRecoveryTornTail: the WAL ends mid-record (power loss during a
// write). Reopen recovers every fully committed record, discards the
// torn frame, and accepts new appends.
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, dir, Options{})
	batch1 := nTriples(5)
	batch2 := []rdf.Triple{tri("x", "y", "z"), tri("q", "r", "s")}
	mustAdd(t, e, batch1...)
	mustAdd(t, e, batch2...)
	abandon(e)

	walPath := filepath.Join(dir, "wal.log")
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Cut one byte: the second record loses its checksum tail.
	if err := os.Truncate(walPath, info.Size()-1); err != nil {
		t.Fatal(err)
	}

	e2 := mustOpen(t, dir, Options{})
	if got, want := committedSet(e2), canonicalSet(batch1); !reflect.DeepEqual(got, want) {
		t.Fatalf("torn tail: got %d triples, want exactly batch1 (%d)", len(got), len(want))
	}
	if e2.Stats().WALDiscarded == 0 {
		t.Fatal("expected discarded bytes to be reported")
	}
	// The log must accept appends after repair and survive another cycle.
	batch3 := []rdf.Triple{tri("after", "the", "crash")}
	mustAdd(t, e2, batch3...)
	abandon(e2)
	e3 := mustOpen(t, dir, Options{})
	defer e3.Close()
	want := canonicalSet(append(append([]rdf.Triple{}, batch1...), batch3...))
	if got := committedSet(e3); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-repair append lost: got %d want %d", len(got), len(want))
	}
}

// TestRecoveryShortWrite: the kernel accepts only a prefix of the
// frame (ENOSPC mid-write). The append must fail, the engine must
// repair its tail, and a reopened engine sees only committed batches.
func TestRecoveryShortWrite(t *testing.T) {
	dir := t.TempDir()
	writes := faults.Seq(
		faults.Step{Kind: faults.OK},
		faults.Step{Kind: faults.Truncate, KeepBytes: 7},
	)
	e := mustOpen(t, dir, Options{WrapWAL: func(s Sink) Sink {
		return faults.NewFile(s.(*os.File), writes, nil)
	}})
	batch1 := nTriples(4)
	mustAdd(t, e, batch1...)
	if _, err := e.AddAll([]rdf.Triple{tri("torn", "torn", "torn")}); !errors.Is(err, faults.ErrInjectedWrite) {
		t.Fatalf("short write not surfaced: %v", err)
	}
	// The failed batch is invisible in the live engine too.
	if got, want := committedSet(e), canonicalSet(batch1); !reflect.DeepEqual(got, want) {
		t.Fatalf("failed batch leaked into live engine")
	}
	// And a later append still works (tail was repaired in place).
	batch3 := []rdf.Triple{tri("recovered", "p", "o")}
	mustAdd(t, e, batch3...)
	abandon(e)

	e2 := mustOpen(t, dir, Options{})
	defer e2.Close()
	want := canonicalSet(append(append([]rdf.Triple{}, batch1...), batch3...))
	if got := committedSet(e2); !reflect.DeepEqual(got, want) {
		t.Fatalf("short-write recovery: got %d triples, want %d", len(got), len(want))
	}
	if e2.Stats().WALDiscarded != 0 {
		t.Fatalf("repair should have cleaned the tail before the crash, found %d stray bytes",
			e2.Stats().WALDiscarded)
	}
}

// TestRecoveryWriteError: the write fails before any byte lands. The
// append reports the error and nothing changes on disk.
func TestRecoveryWriteError(t *testing.T) {
	dir := t.TempDir()
	writes := faults.Seq(
		faults.Step{Kind: faults.OK},
		faults.Step{Kind: faults.ConnError},
	)
	e := mustOpen(t, dir, Options{WrapWAL: func(s Sink) Sink {
		return faults.NewFile(s.(*os.File), writes, nil)
	}})
	batch1 := nTriples(3)
	mustAdd(t, e, batch1...)
	if _, err := e.Add(tri("lost", "lost", "lost")); !errors.Is(err, faults.ErrInjectedWrite) {
		t.Fatalf("write error not surfaced: %v", err)
	}
	abandon(e)

	e2 := mustOpen(t, dir, Options{})
	defer e2.Close()
	if got, want := committedSet(e2), canonicalSet(batch1); !reflect.DeepEqual(got, want) {
		t.Fatalf("write-error recovery: got %d triples, want %d", len(got), len(want))
	}
}

// TestRecoveryFsyncError: the bytes reached the file but the
// durability barrier failed — the record is NOT committed. The engine
// truncates it away, so neither the live engine nor a reopened one
// ever serves it.
func TestRecoveryFsyncError(t *testing.T) {
	dir := t.TempDir()
	syncs := faults.Seq(
		faults.Step{Kind: faults.OK},
		faults.Step{Kind: faults.SyncError},
	)
	e := mustOpen(t, dir, Options{WrapWAL: func(s Sink) Sink {
		return faults.NewFile(s.(*os.File), nil, syncs)
	}})
	batch1 := nTriples(6)
	mustAdd(t, e, batch1...)
	if _, err := e.Add(tri("unsynced", "p", "o")); !errors.Is(err, faults.ErrInjectedSync) {
		t.Fatalf("fsync error not surfaced: %v", err)
	}
	if got, want := committedSet(e), canonicalSet(batch1); !reflect.DeepEqual(got, want) {
		t.Fatalf("unsynced batch visible in live engine")
	}
	abandon(e)

	e2 := mustOpen(t, dir, Options{})
	defer e2.Close()
	if got, want := committedSet(e2), canonicalSet(batch1); !reflect.DeepEqual(got, want) {
		t.Fatalf("fsync-error recovery: got %d triples, want %d", len(got), len(want))
	}
	if e2.Stats().WALDiscarded != 0 {
		t.Fatalf("fsync failure should have been repaired before the crash")
	}
}

// TestRecoveryDuplicateReplay: crash in the window between segment
// publication and WAL reset. On reopen the WAL replays records whose
// triples are already in the published run; newest-wins dedup
// converges to the exact committed set.
func TestRecoveryDuplicateReplay(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, dir, Options{})
	ts := nTriples(10)
	mustAdd(t, e, ts...)

	// Save the WAL as it is before the flush...
	walPath := filepath.Join(dir, "wal.log")
	preFlush, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	// ...then put it back, as if the machine died after the manifest
	// rename but before the WAL truncate.
	if err := os.WriteFile(walPath, preFlush, 0o644); err != nil {
		t.Fatal(err)
	}
	abandon(e)

	e2 := mustOpen(t, dir, Options{})
	defer e2.Close()
	if e2.Stats().WALReplayed != 10 {
		t.Fatalf("expected all 10 triples replayed, got %d", e2.Stats().WALReplayed)
	}
	if e2.Segments() != 1 {
		t.Fatalf("segments = %d, want 1", e2.Segments())
	}
	if got, want := committedSet(e2), canonicalSet(ts); !reflect.DeepEqual(got, want) {
		t.Fatalf("duplicate replay diverged: got %d triples, want %d", len(got), len(want))
	}
	if e2.Len() != 10 {
		t.Fatalf("Len = %d after duplicate replay, want 10 (dedup failed)", e2.Len())
	}
}

// TestRecoveryDeleteReplay: tombstones replay idempotently too — a
// delete in the replayed window stays deleted.
func TestRecoveryDeleteReplay(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, dir, Options{})
	ts := nTriples(5)
	mustAdd(t, e, ts...)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Delete(ts[2]); err != nil {
		t.Fatal(err)
	}
	abandon(e) // crash with the delete only in the WAL

	e2 := mustOpen(t, dir, Options{})
	defer e2.Close()
	if e2.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (replayed delete lost)", e2.Len())
	}
	if got := e2.Match(ts[2].S, ts[2].P, ts[2].O); len(got) != 0 {
		t.Fatalf("deleted triple resurrected: %v", got)
	}
}

// TestRecoveryCrashBeforeManifest: the segment file was renamed into
// place but the crash hit before the manifest commit. The orphaned run
// is ignored and removed; the WAL still has everything.
func TestRecoveryCrashBeforeManifest(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, dir, Options{})
	ts := nTriples(8)
	mustAdd(t, e, ts...)
	abandon(e)

	// Fabricate the crash artifact: a fully written run file that never
	// made it into the manifest.
	img, err := encodeRun(ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, runName(0))
	if err := os.WriteFile(orphan, img, 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := mustOpen(t, dir, Options{})
	defer e2.Close()
	if e2.Segments() != 0 {
		t.Fatalf("orphan run adopted: %d segments", e2.Segments())
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan run not cleaned up")
	}
	if got, want := committedSet(e2), canonicalSet(ts); !reflect.DeepEqual(got, want) {
		t.Fatalf("WAL-backed set wrong after orphan cleanup: %d vs %d", len(got), len(want))
	}
}

// TestBackgroundCompactionFakeClock drives the periodic compactor with
// a manual clock: no compaction before the tick, one full merge after.
func TestBackgroundCompactionFakeClock(t *testing.T) {
	dir := t.TempDir()
	clock := faults.NewClock(time.Unix(0, 0))
	e := mustOpen(t, dir, Options{
		CompactAt:    2,
		CompactEvery: time.Minute,
		After:        clock.After,
	})
	mustAdd(t, e, nTriples(10)...)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, e, tri("second", "run", "here"))
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if e.Segments() != 2 {
		t.Fatalf("segments = %d before tick, want 2 (compaction ran early?)", e.Segments())
	}

	clock.AwaitTimers(1) // the loop armed its first timer
	clock.Advance(time.Minute)
	clock.AwaitTimers(2) // the loop re-armed: the first tick's work is done

	if e.Segments() != 1 {
		t.Fatalf("segments = %d after tick, want 1", e.Segments())
	}
	if e.Stats().Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", e.Stats().Compactions)
	}
	if e.Len() != 11 {
		t.Fatalf("Len = %d after background compaction, want 11", e.Len())
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}
