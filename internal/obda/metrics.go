package obda

// Metric registration helpers for the OBDA layer. The adapter's
// window caches and client report under the opendap_* names; the only
// obda-native series counts physical fetches across all windows (the
// Calls counter the benchmarks already read). One call site per name
// literal, nil-safe throughout.

// notePhysicalFetch counts one fetch that reached the OPeNDAP server
// (i.e. was not absorbed by a window cache).
func (a *OpendapAdapter) notePhysicalFetch() {
	a.Metrics.Counter("obda_physical_fetches_total").Inc()
}
