package obda

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"applab/internal/madis"
	"applab/internal/netcdf"
	"applab/internal/opendap"
	"applab/internal/telemetry"
)

// OpendapAdapter registers the `opendap` virtual table function with a
// MadIS database — the paper's §3.2 extension ("We used MadIS to create a
// new UDF, named Opendap, that is able to create and populate a virtual
// table on-the-fly with data retrieved from an OPeNDAP server").
//
// FROM-clause usage (the paper's Listing 2):
//
//	SELECT id, LAI, ts, loc FROM (ordered opendap url:<dataset>/<var>/, 10) WHERE LAI > 0
//
// The first argument names the dataset and variable (any URL prefix before
// the last two path segments is ignored, so the paper's full THREDDS URLs
// work). The optional second argument is the cache window w in minutes:
// identical OPeNDAP calls within the window reuse cached results.
//
// The produced relation has schema (id, <VAR>, ts, loc):
//
//	id   synthesized from location and time ("the column id was not
//	     originally in the dataset but it is constructed from the location
//	     and the time of observation")
//	VAR  the variable value as float64
//	ts   the observation time converted from the dataset's CF units to
//	     xsd:dateTime format ("the Opendap virtual table operator converts
//	     these values to a standard format")
//	loc  a WKT POINT from the lon/lat coordinate variables
type OpendapAdapter struct {
	client *opendap.Client

	// ServeStale enables stale-while-error on every window cache the
	// adapter creates: when the OPeNDAP upstream is down, an expired
	// cached window is served flagged with opendap.StaleAttr instead of
	// failing the query. Set before the first query; caches created
	// earlier keep their setting.
	ServeStale bool

	// Metrics, when set, counts physical fetches and flows into every
	// window cache the adapter creates (set before the first query, like
	// ServeStale).
	Metrics *telemetry.Registry

	// OnTable, when set, observes every virtual-table materialization
	// with its region key "<dataset>/<var>?w=<window>" — the hot-region
	// feed of the adaptive promoter (rescache.Promoter.Note). Set before
	// the first query; called outside the adapter lock.
	OnTable func(region string)

	mu     sync.Mutex
	caches map[time.Duration]*opendap.WindowCache
	// Now overrides the cache clock in tests.
	Now func() time.Time
	// Calls counts physical fetches through the adapter (per window cache
	// misses are visible via CacheStats; Calls spans all windows).
	calls int64
}

// NewOpendapAdapter returns an adapter that fetches from client.
func NewOpendapAdapter(client *opendap.Client) *OpendapAdapter {
	return &OpendapAdapter{client: client, caches: map[time.Duration]*opendap.WindowCache{}}
}

// Register installs the adapter as the "opendap" virtual table of db.
func (a *OpendapAdapter) Register(db *madis.DB) {
	db.RegisterVirtualTable("opendap", a.Table)
}

// cacheFor returns (creating if needed) the window cache for w.
func (a *OpendapAdapter) cacheFor(w time.Duration) *opendap.WindowCache {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.caches[w]
	if !ok {
		c = opendap.NewWindowCache(countingFetcher{a}, w)
		c.StaleWhileError = a.ServeStale
		c.Metrics = a.Metrics
		if a.Now != nil {
			c.Now = a.Now
		}
		a.caches[w] = c
	}
	return c
}

// countingFetcher counts physical fetches.
type countingFetcher struct{ a *OpendapAdapter }

// Fetch implements opendap.Fetcher.
func (f countingFetcher) Fetch(name string, c opendap.Constraint) (*netcdf.Dataset, error) {
	f.a.mu.Lock()
	f.a.calls++
	f.a.mu.Unlock()
	f.a.notePhysicalFetch()
	return f.a.client.Fetch(name, c)
}

// InvalidateCaches drops every window cache entry (used by benchmarks to
// force cold-cache behaviour).
func (a *OpendapAdapter) InvalidateCaches() {
	a.mu.Lock()
	caches := make([]*opendap.WindowCache, 0, len(a.caches))
	for _, c := range a.caches {
		caches = append(caches, c)
	}
	a.mu.Unlock()
	for _, c := range caches {
		c.Invalidate()
	}
}

// PhysicalCalls reports how many fetches reached the OPeNDAP server.
func (a *OpendapAdapter) PhysicalCalls() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.calls
}

// Generation returns a counter that moves whenever upstream content may
// have entered the serving path: the physical fetch count plus every
// window cache's content generation. Result caches over OBDA sources
// fold it into their data epoch.
func (a *OpendapAdapter) Generation() uint64 {
	a.mu.Lock()
	gen := uint64(a.calls)
	caches := make([]*opendap.WindowCache, 0, len(a.caches))
	for _, c := range a.caches {
		caches = append(caches, c)
	}
	a.mu.Unlock()
	for _, c := range caches {
		gen += c.Generation()
	}
	return gen
}

// Stats returns the cache statistics for window w.
func (a *OpendapAdapter) Stats(w time.Duration) opendap.CacheStats {
	return a.cacheFor(w).Stats()
}

// Table is the virtual table function.
func (a *OpendapAdapter) Table(args []string) (*madis.Table, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("opendap: missing dataset argument")
	}
	dataset, varName, err := parseDatasetArg(args[0])
	if err != nil {
		return nil, err
	}
	window := time.Duration(0)
	if len(args) > 1 {
		mins, err := strconv.ParseFloat(strings.TrimSpace(args[1]), 64)
		if err != nil || mins < 0 {
			return nil, fmt.Errorf("opendap: bad cache window %q", args[1])
		}
		window = time.Duration(mins * float64(time.Minute))
	}
	if hook := a.OnTable; hook != nil {
		hook(dataset + "/" + varName + "?w=" + strconv.FormatFloat(window.Minutes(), 'g', -1, 64))
	}
	fetcher := opendap.Fetcher(countingFetcher{a})
	if window > 0 {
		fetcher = a.cacheFor(window)
	}
	ds, err := fetcher.Fetch(dataset, opendap.Constraint{Var: varName})
	if err != nil {
		return nil, err
	}
	return GridToTable(ds, varName)
}

// parseDatasetArg extracts "<dataset>/<var>" from the argument, tolerating
// full URLs and trailing slashes.
func parseDatasetArg(arg string) (dataset, varName string, err error) {
	s := strings.Trim(strings.TrimSpace(arg), "/")
	parts := strings.Split(s, "/")
	if len(parts) < 2 {
		return "", "", fmt.Errorf("opendap: dataset argument %q needs <dataset>/<variable>", arg)
	}
	return parts[len(parts)-2], parts[len(parts)-1], nil
}

// GridToTable flattens a CF grid (VAR[time][lat][lon], with coordinate
// variables) into the (id, VAR, ts, loc) relation of the paper's Listing 2.
// 2-D grids (lat, lon) produce a single unnamed time of the zero instant.
func GridToTable(ds *netcdf.Dataset, varName string) (*madis.Table, error) {
	v, ok := ds.Var(varName)
	if !ok {
		return nil, fmt.Errorf("opendap: fetched dataset lacks %q", varName)
	}
	shape := v.Shape(ds)
	if len(shape) != 3 && len(shape) != 2 {
		return nil, fmt.Errorf("opendap: variable %s has rank %d, want 2 or 3", varName, len(shape))
	}
	coord := func(name string, n int) []float64 {
		if cv, ok := ds.Var(name); ok && len(cv.Data) == n {
			return cv.Data
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(i)
		}
		return out
	}
	var times []time.Time
	var nt, nlat, nlon int
	if len(shape) == 3 {
		nt, nlat, nlon = shape[0], shape[1], shape[2]
		if tv, err := ds.TimeValues(); err == nil && len(tv) == nt {
			times = tv
		} else {
			times = make([]time.Time, nt)
			base := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
			for i := range times {
				times[i] = base.AddDate(0, 0, i)
			}
		}
	} else {
		nt, nlat, nlon = 1, shape[0], shape[1]
		times = []time.Time{time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)}
	}
	lats := coord("lat", nlat)
	lons := coord("lon", nlon)

	tb := &madis.Table{Name: "opendap", Cols: []string{"id", varName, "ts", "loc"}}
	for ti := 0; ti < nt; ti++ {
		ts := times[ti].UTC().Format("2006-01-02T15:04:05Z")
		for yi := 0; yi < nlat; yi++ {
			for xi := 0; xi < nlon; xi++ {
				off := (ti*nlat+yi)*nlon + xi
				val := v.Data[off]
				id := fmt.Sprintf("obs_%s_%s_%s",
					fnum(lons[xi]), fnum(lats[yi]), times[ti].UTC().Format("20060102T150405"))
				loc := fmt.Sprintf("POINT (%s %s)", fnum(lons[xi]), fnum(lats[yi]))
				tb.Rows = append(tb.Rows, madis.Row{id, val, ts, loc})
			}
		}
	}
	return tb, nil
}

func fnum(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
