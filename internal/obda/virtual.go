package obda

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"applab/internal/admission"
	"applab/internal/geosparql"
	"applab/internal/madis"
	"applab/internal/rdf"
	"applab/internal/rescache"
	"applab/internal/sparql"
)

// VirtualGraph exposes a set of mappings over a MadIS database as a
// sparql.Source. No triples are stored: each query evaluation (or explicit
// Snapshot call) runs the mapping sources against the backend — when a
// source uses the opendap virtual table, that means live calls to the
// OPeNDAP server, moderated only by the adapter's window cache, exactly the
// behaviour the paper measures in §5 ("when the data gets downloaded at
// query-time...").
type VirtualGraph struct {
	db       *madis.DB
	mappings []Mapping

	// EpochFn, when set, supplies the upstream data epoch (typically
	// OpendapAdapter.Generation) folded into DataEpoch. Set before the
	// first query.
	EpochFn func() uint64

	mu          sync.Mutex
	snap        *rdf.Graph // per-query transient view; nil = stale
	lastErr     error      // most recent Snapshot failure; nil after success
	rebuilds    uint64     // snapshot builds (DataEpoch fallback)
	fingerprint string
}

// NewVirtualGraph builds a virtual graph over db with the given mappings.
func NewVirtualGraph(db *madis.DB, mappings []Mapping) *VirtualGraph {
	geosparql.Register()
	return &VirtualGraph{db: db, mappings: mappings, fingerprint: rescache.NextFingerprint("obda")}
}

// Invalidate drops the transient view so the next query re-executes the
// mapping sources.
func (vg *VirtualGraph) Invalidate() {
	vg.mu.Lock()
	defer vg.mu.Unlock()
	vg.snap = nil
}

// Snapshot executes every mapping source and returns the resulting
// (transient) RDF view.
func (vg *VirtualGraph) Snapshot() (*rdf.Graph, error) {
	return vg.SnapshotContext(context.Background())
}

// SnapshotContext is Snapshot with cooperative cancellation: between
// mapping sources (each potentially a live OPeNDAP call through the
// SQL layer) it polls ctx and the attached admission budget, so an
// over-deadline query stops before the next expensive fetch instead of
// materializing the rest of the view. An abort is not recorded in
// LastError — the source is fine, the query ran out of budget.
func (vg *VirtualGraph) SnapshotContext(ctx context.Context) (*rdf.Graph, error) {
	vg.mu.Lock()
	defer vg.mu.Unlock()
	if vg.snap != nil {
		return vg.snap, nil
	}
	g := rdf.NewGraph()
	seq := 0
	for _, m := range vg.mappings {
		if err := admission.Check(ctx); err != nil {
			return nil, err
		}
		table, err := vg.db.Query(m.Source)
		if err != nil {
			vg.lastErr = fmt.Errorf("obda: mapping %s: %v", m.ID, err)
			return nil, vg.lastErr
		}
		cols := make([]string, len(table.Cols))
		for i, c := range table.Cols {
			cols[i] = strings.ToLower(c)
		}
		for _, row := range table.Rows {
			seq++
			vals := make(map[string]string, len(cols))
			skip := false
			for i, c := range cols {
				switch v := row[i].(type) {
				case nil:
					// leave missing; templates referencing it drop
				case string:
					vals[c] = v
				case float64:
					vals[c] = strconv.FormatFloat(v, 'g', -1, 64)
				default:
					vals[c] = fmt.Sprintf("%v", v)
				}
			}
			if skip {
				continue
			}
			for _, tt := range m.Target {
				s, okS := tt.S.Instantiate(vals, seq)
				p, okP := tt.P.Instantiate(vals, seq)
				o, okO := tt.O.Instantiate(vals, seq)
				if okS && okP && okO {
					g.Add(rdf.NewTriple(s, p, o))
				}
			}
		}
	}
	vg.snap = g
	vg.lastErr = nil
	vg.rebuilds++
	return g, nil
}

// Match implements sparql.Source over the current snapshot (building it on
// first use). An upstream failure (e.g. the OPeNDAP server behind the
// opendap virtual table is down) yields empty results here — the Source
// contract has no error channel — but is retained for LastError and
// surfaced by MatchErr, so callers never mistake an outage for an empty
// dataset.
func (vg *VirtualGraph) Match(s, p, o rdf.Term) []rdf.Triple {
	triples, err := vg.MatchErr(s, p, o)
	if err != nil {
		return nil
	}
	return triples
}

// MatchErr implements sparql.ErrorSource: Match with mapping-source
// failures surfaced instead of swallowed. The federation engine uses it
// to report a broken OBDA member rather than treating it as empty.
func (vg *VirtualGraph) MatchErr(s, p, o rdf.Term) ([]rdf.Triple, error) {
	g, err := vg.Snapshot()
	if err != nil {
		return nil, err
	}
	return g.Match(s, p, o), nil
}

// MatchContext implements sparql.ContextSource: pattern scans check the
// context and budget before touching (or building) the snapshot, so the
// compiled engine's budgeted evaluation path cancels OBDA queries
// between mapping executions.
func (vg *VirtualGraph) MatchContext(ctx context.Context, s, p, o rdf.Term) ([]rdf.Triple, error) {
	if err := admission.Check(ctx); err != nil {
		return nil, err
	}
	g, err := vg.SnapshotContext(ctx)
	if err != nil {
		return nil, err
	}
	return g.Match(s, p, o), nil
}

// Cardinality implements sparql.StatsSource over the current snapshot.
// It never triggers mapping execution: with no snapshot materialized it
// reports unknown (-1) and the planner keeps textual pattern order, so
// statistics stay side-effect free for on-the-fly queries.
func (vg *VirtualGraph) Cardinality(s, p, o rdf.Term) int {
	vg.mu.Lock()
	snap := vg.snap
	vg.mu.Unlock()
	if snap == nil {
		return -1
	}
	return snap.Cardinality(s, p, o)
}

// DataEpoch implements rescache.Epocher. With EpochFn wired (usually to
// the OPeNDAP adapter's Generation) the epoch moves exactly when
// upstream content may have changed, so cached answers survive window
// -cache hits; without it every snapshot rebuild counts — safe but
// never validating across the Invalidate each query performs.
func (vg *VirtualGraph) DataEpoch() uint64 {
	vg.mu.Lock()
	rebuilds := vg.rebuilds
	fn := vg.EpochFn
	vg.mu.Unlock()
	if fn != nil {
		return fn()
	}
	return rebuilds
}

// EpochAdvancesOnEval marks the virtual graph as a self-mutating source
// for rescache: evaluating a query itself refreshes the window cache
// and may advance the epoch, so result-cache fills capture the epoch
// after evaluation (sound — snapshot builds are serialized under vg.mu
// and are a pure function of backend state).
func (vg *VirtualGraph) EpochAdvancesOnEval() {}

// Fingerprint implements rescache.Fingerprinter (per-instance identity).
func (vg *VirtualGraph) Fingerprint() string {
	return vg.fingerprint
}

// LastError reports the most recent snapshot failure (nil once a
// snapshot succeeds). Callers of the plain Source interface check it to
// distinguish "no data" from "source down".
func (vg *VirtualGraph) LastError() error {
	vg.mu.Lock()
	defer vg.mu.Unlock()
	return vg.lastErr
}

// Query evaluates a GeoSPARQL query on-the-fly: the mapping sources are
// re-executed (subject to any adapter caches below the SQL layer), then the
// query runs over the transient view.
func (vg *VirtualGraph) Query(q string) (*sparql.Results, error) {
	return vg.QueryContext(context.Background(), q)
}

// QueryContext is Query under a context: with an admission.Budget
// attached (admission.WithBudget) the snapshot build and the query
// evaluation both stop cooperatively on cancellation, deadline expiry
// or budget violation, returning the structured budget error.
func (vg *VirtualGraph) QueryContext(ctx context.Context, q string) (*sparql.Results, error) {
	vg.Invalidate()
	if _, err := vg.SnapshotContext(ctx); err != nil {
		return nil, err
	}
	query, err := sparql.Parse(q)
	if err != nil {
		return nil, err
	}
	return query.EvalContext(ctx, vg)
}

// QueryCached evaluates a query against the existing snapshot without
// re-executing mapping sources (the materialized-comparison mode).
func (vg *VirtualGraph) QueryCached(q string) (*sparql.Results, error) {
	if _, err := vg.Snapshot(); err != nil {
		return nil, err
	}
	return sparql.Eval(vg, q)
}
