package obda

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"applab/internal/madis"
	"applab/internal/netcdf"
	"applab/internal/opendap"
	"applab/internal/rdf"
)

const listing2 = `
mappingId	opendap_mapping
target		lai:{id} rdf:type lai:Observation .
			lai:{id} lai:lai {LAI}^^xsd:float ;
			time:hasTime {ts}^^xsd:dateTime .
			lai:{id} geo:hasGeometry _:g .
			_:g geo:asWKT {loc}^^geo:wktLiteral .
source		SELECT id, LAI , ts, loc
			FROM (ordered opendap
			url:lai/LAI/, 10)
			WHERE LAI > 0
`

func TestParseListing2(t *testing.T) {
	ms, err := ParseMappings(listing2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("mappings = %d", len(ms))
	}
	m := ms[0]
	if m.ID != "opendap_mapping" {
		t.Errorf("id = %q", m.ID)
	}
	if len(m.Target) != 5 {
		t.Fatalf("target templates = %d: %+v", len(m.Target), m.Target)
	}
	// Template 0: lai:{id} rdf:type lai:Observation
	if m.Target[0].S.Kind != TmplIRI || !strings.Contains(m.Target[0].S.Text, "{id}") {
		t.Errorf("subject template = %+v", m.Target[0].S)
	}
	if m.Target[0].P.Text != rdf.RDFType {
		t.Errorf("predicate = %+v", m.Target[0].P)
	}
	// Template 1: lai:lai {LAI}^^xsd:float
	if m.Target[1].O.Kind != TmplLiteral || m.Target[1].O.Datatype != rdf.NSXSD+"float" {
		t.Errorf("LAI literal template = %+v", m.Target[1].O)
	}
	// ";" keeps the subject
	if m.Target[2].S.Text != m.Target[1].S.Text {
		t.Errorf("semicolon must keep subject: %+v vs %+v", m.Target[2].S, m.Target[1].S)
	}
	// blank node templates
	if m.Target[3].O.Kind != TmplBlank || m.Target[4].S.Kind != TmplBlank {
		t.Errorf("blank templates: %+v %+v", m.Target[3].O, m.Target[4].S)
	}
	if !strings.Contains(m.Source, "WHERE LAI > 0") {
		t.Errorf("source = %q", m.Source)
	}
	cols := m.Target[1].O.Columns()
	if len(cols) != 1 || cols[0] != "LAI" {
		t.Errorf("columns = %v", cols)
	}
}

func TestParseMappingErrors(t *testing.T) {
	bad := []string{
		"",
		"target lai:{id} rdf:type lai:Observation .",
		"mappingId m1\ntarget lai:{id} rdf:type lai:Observation .",
		"mappingId m1\nsource SELECT 1",
		"mappingId m1\ntarget nosuchprefix:{id} rdf:type lai:Observation .\nsource SELECT 1",
	}
	for _, doc := range bad {
		if _, err := ParseMappings(doc); err == nil {
			t.Errorf("expected error for %q", doc)
		}
	}
}

// laiServer publishes a small LAI grid and returns a DB with the opendap
// adapter registered.
func laiServer(t testing.TB, latency time.Duration) (*madis.DB, *OpendapAdapter, *opendap.Server, func()) {
	t.Helper()
	d := netcdf.NewDataset("lai")
	d.AddDim("time", 2)
	d.AddDim("lat", 3)
	d.AddDim("lon", 3)
	add := func(v *netcdf.Variable) {
		if err := d.AddVar(v); err != nil {
			t.Fatal(err)
		}
	}
	add(&netcdf.Variable{Name: "time", Dims: []string{"time"}, Data: []float64{0, 10},
		Attrs: map[string]string{"units": "days since 2018-06-01"}})
	add(&netcdf.Variable{Name: "lat", Dims: []string{"lat"}, Data: []float64{48.85, 48.86, 48.87}})
	add(&netcdf.Variable{Name: "lon", Dims: []string{"lon"}, Data: []float64{2.25, 2.26, 2.27}})
	// Values: include negatives (noise the WHERE filter removes).
	vals := []float64{
		1.5, -0.5, 2.0,
		0.0, 3.5, 1.0,
		-1.0, 4.0, 0.5,
		2.5, 1.5, -0.2,
		3.0, 0.0, 1.2,
		0.8, 2.2, 5.0,
	}
	add(&netcdf.Variable{Name: "LAI", Dims: []string{"time", "lat", "lon"}, Data: vals})

	srv := opendap.NewServer()
	srv.Latency = latency
	srv.Publish(d)
	hs := httptest.NewServer(srv)
	client := opendap.NewClient(hs.URL)
	adapter := NewOpendapAdapter(client)
	db := madis.NewDB()
	adapter.Register(db)
	return db, adapter, srv, hs.Close
}

func TestOpendapVirtualTable(t *testing.T) {
	db, _, _, closeFn := laiServer(t, 0)
	defer closeFn()
	res, err := db.Query("SELECT id, LAI, ts, loc FROM (ordered opendap url:lai/LAI/, 0) WHERE LAI > 0")
	if err != nil {
		t.Fatal(err)
	}
	// 18 cells, positives: count manually = 13 values > 0
	want := 13
	if len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	// ts must be ISO dateTime; loc must be WKT POINT
	for _, r := range res.Rows {
		if !strings.HasSuffix(r[2].(string), "Z") || !strings.Contains(r[2].(string), "T") {
			t.Errorf("ts = %v", r[2])
		}
		if !strings.HasPrefix(r[3].(string), "POINT (") {
			t.Errorf("loc = %v", r[3])
		}
		if !strings.HasPrefix(r[0].(string), "obs_") {
			t.Errorf("id = %v", r[0])
		}
	}
}

func TestVirtualGraphListing3(t *testing.T) {
	db, _, _, closeFn := laiServer(t, 0)
	defer closeFn()
	ms, err := ParseMappings(listing2)
	if err != nil {
		t.Fatal(err)
	}
	vg := NewVirtualGraph(db, ms)
	// The paper's Listing 3 query (modulo the lai:hasLai/lai:lai naming
	// which the paper itself uses inconsistently; we follow the mapping).
	res, err := vg.Query(`
SELECT DISTINCT ?s ?wkt ?lai
WHERE { ?s lai:lai ?lai .
        ?s geo:hasGeometry ?g .
        ?g geo:asWKT ?wkt }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 13 {
		t.Fatalf("rows = %d", len(res.Bindings))
	}
	for _, b := range res.Bindings {
		if b["wkt"].Datatype != rdf.WKTLiteral {
			t.Errorf("wkt datatype = %s", b["wkt"].Datatype)
		}
		if f, ok := b["lai"].Float(); !ok || f <= 0 {
			t.Errorf("lai = %v", b["lai"])
		}
	}
	// rdf:type triples exist in the virtual view
	res, err = vg.QueryCached(`SELECT (COUNT(*) AS ?n) WHERE { ?s a lai:Observation }`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Bindings[0]["n"].Int(); n != 13 {
		t.Errorf("observation count = %v", n)
	}
}

func TestVirtualGraphSpatialFilter(t *testing.T) {
	db, _, _, closeFn := laiServer(t, 0)
	defer closeFn()
	ms, _ := ParseMappings(listing2)
	vg := NewVirtualGraph(db, ms)
	res, err := vg.Query(`
SELECT ?lai WHERE {
  ?s lai:lai ?lai ; geo:hasGeometry ?g .
  ?g geo:asWKT ?wkt .
  FILTER(geof:sfWithin(?wkt, "POLYGON ((2.245 48.845, 2.265 48.845, 2.265 48.865, 2.245 48.865, 2.245 48.845))"^^geo:wktLiteral))
}`)
	if err != nil {
		t.Fatal(err)
	}
	// lon in {2.25, 2.26}, lat in {48.85, 48.86}: 4 cells x 2 times = 8,
	// minus non-positive values among them.
	// cells: (48.85,2.25)=1.5/2.5 (48.85,2.26)=-0.5/1.5 (48.86,2.25)=0/3
	// (48.86,2.26)=3.5/0 -> positives: 1.5,2.5,1.5,3,3.5 = 5
	if len(res.Bindings) != 5 {
		t.Fatalf("rows = %d: %v", len(res.Bindings), res.Bindings)
	}
}

func TestCacheWindowReducesCalls(t *testing.T) {
	db, adapter, _, closeFn := laiServer(t, 0)
	defer closeFn()
	clock := time.Date(2018, 6, 1, 12, 0, 0, 0, time.UTC)
	adapter.Now = func() time.Time { return clock }

	q := "SELECT id, LAI, ts, loc FROM (ordered opendap url:lai/LAI/, 10) WHERE LAI > 0"
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	calls1 := adapter.PhysicalCalls()
	// Second identical query within the window: served from cache.
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if adapter.PhysicalCalls() != calls1 {
		t.Errorf("cached query must not hit the server: %d -> %d", calls1, adapter.PhysicalCalls())
	}
	// After the window expires, the server is called again.
	clock = clock.Add(11 * time.Minute)
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if adapter.PhysicalCalls() != calls1+1 {
		t.Errorf("expired window must refetch: %d -> %d", calls1, adapter.PhysicalCalls())
	}
	// Window 0 always fetches.
	q0 := "SELECT id, LAI, ts, loc FROM (ordered opendap url:lai/LAI/, 0) WHERE LAI > 0"
	db.Query(q0)
	db.Query(q0)
	if adapter.PhysicalCalls() != calls1+3 {
		t.Errorf("window 0 must always fetch: calls = %d", adapter.PhysicalCalls())
	}
}

func TestInstantiateNullDropsTriple(t *testing.T) {
	tmpl := TermTemplate{Kind: TmplLiteral, Text: "{missing}"}
	if _, ok := tmpl.Instantiate(map[string]string{"other": "x"}, 1); ok {
		t.Error("missing column must drop the triple")
	}
	// Blank templates are per-row unique.
	b := TermTemplate{Kind: TmplBlank, Text: "g"}
	t1, _ := b.Instantiate(nil, 1)
	t2, _ := b.Instantiate(nil, 2)
	if t1.Equal(t2) {
		t.Error("blank nodes must be unique per row")
	}
}
