// Package obda implements the ontology-based data access layer of the App
// Lab stack, modeled on Ontop-spatial [Bereta & Koubarakis, ISWC 2016]:
// R2RML-style mappings in Ontop's native syntax (the paper's Listing 2)
// turn relational sources — MadIS tables and virtual tables, including the
// OPeNDAP adapter — into virtual RDF graphs that answer GeoSPARQL queries
// without materializing triples.
package obda

import (
	"fmt"
	"strings"

	"applab/internal/rdf"
)

// Mapping is one mapping axiom: a target triple template instantiated once
// per row of the source SQL result.
type Mapping struct {
	ID     string
	Target []TripleTemplate
	Source string // SQL over the MadIS backend
}

// TripleTemplate is a triple whose terms may contain {column} placeholders.
type TripleTemplate struct {
	S, P, O TermTemplate
}

// TermTemplateKind discriminates template term kinds.
type TermTemplateKind uint8

// Template term kinds.
const (
	TmplIRI TermTemplateKind = iota
	TmplLiteral
	TmplBlank
)

// TermTemplate is a term with optional placeholders. For IRIs and literals
// Text holds the pattern with {col} placeholders; Datatype/Lang apply to
// literals. Blank templates mint one blank node per (label, row).
type TermTemplate struct {
	Kind     TermTemplateKind
	Text     string
	Datatype string
	Lang     string
}

// Columns returns the placeholder column names used by the template.
func (t TermTemplate) Columns() []string {
	var out []string
	s := t.Text
	for {
		i := strings.IndexByte(s, '{')
		if i < 0 {
			return out
		}
		j := strings.IndexByte(s[i:], '}')
		if j < 0 {
			return out
		}
		out = append(out, s[i+1:i+j])
		s = s[i+j+1:]
	}
}

// Instantiate substitutes row values into the template. Row keys are
// matched case-insensitively. A placeholder resolving to nil reports
// ok=false, dropping the triple (SQL NULL semantics).
func (t TermTemplate) Instantiate(row map[string]string, seq int) (rdf.Term, bool) {
	switch t.Kind {
	case TmplBlank:
		return rdf.NewBlank(fmt.Sprintf("%s_r%d", t.Text, seq)), true
	default:
		text := t.Text
		for {
			i := strings.IndexByte(text, '{')
			if i < 0 {
				break
			}
			j := strings.IndexByte(text[i:], '}')
			if j < 0 {
				break
			}
			col := text[i+1 : i+j]
			v, ok := row[strings.ToLower(col)]
			if !ok {
				return rdf.Term{}, false
			}
			text = text[:i] + v + text[i+j+1:]
		}
		if t.Kind == TmplIRI {
			return rdf.NewIRI(text), true
		}
		if t.Lang != "" {
			return rdf.NewLangLiteral(text, t.Lang), true
		}
		if t.Datatype != "" {
			return rdf.NewTypedLiteral(text, t.Datatype), true
		}
		return rdf.NewLiteral(text), true
	}
}

// ParseMappings parses a mapping document in Ontop's native syntax:
//
//	mappingId  <id>
//	target     <triple templates in Turtle-like syntax with {col} placeholders>
//	source     <SQL (may span lines until blank line or next mappingId)>
//
// Multiple mappings are separated by their mappingId lines.
func ParseMappings(doc string) ([]Mapping, error) {
	prefixes := rdf.DefaultPrefixes()
	var mappings []Mapping
	var cur *Mapping
	var targetText string
	var mode string // "target" | "source" | ""
	flush := func() error {
		if cur == nil {
			return nil
		}
		if strings.TrimSpace(targetText) != "" {
			tmpl, err := parseTargetTemplates(targetText, prefixes)
			if err != nil {
				return fmt.Errorf("obda: mapping %s: %v", cur.ID, err)
			}
			cur.Target = tmpl
		}
		targetText = ""
		if cur.ID == "" || len(cur.Target) == 0 || strings.TrimSpace(cur.Source) == "" {
			return fmt.Errorf("obda: mapping %q incomplete (needs mappingId, target, source)", cur.ID)
		}
		cur.Source = strings.TrimSpace(cur.Source)
		mappings = append(mappings, *cur)
		cur = nil
		return nil
	}
	lines := strings.Split(doc, "\n")
	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "mappingId"):
			if err := flush(); err != nil {
				return nil, err
			}
			cur = &Mapping{ID: strings.TrimSpace(trimmed[len("mappingId"):])}
			mode = ""
		case strings.HasPrefix(trimmed, "target"):
			if cur == nil {
				return nil, fmt.Errorf("obda: target before mappingId")
			}
			targetText += " " + strings.TrimSpace(trimmed[len("target"):])
			mode = "target"
		case strings.HasPrefix(trimmed, "source"):
			if cur == nil {
				return nil, fmt.Errorf("obda: source before mappingId")
			}
			cur.Source = strings.TrimSpace(trimmed[len("source"):])
			mode = "source"
		case trimmed == "":
			// Blank lines end the current clause but not the mapping.
			if mode == "source" {
				mode = ""
			}
		default:
			switch mode {
			case "target":
				targetText += " " + trimmed
			case "source":
				cur.Source += "\n" + line
			default:
				return nil, fmt.Errorf("obda: unexpected line %q", trimmed)
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(mappings) == 0 {
		return nil, fmt.Errorf("obda: no mappings in document")
	}
	return mappings, nil
}

// parseTargetTemplates parses a fragment of target template text: triples
// separated by "." with ";" predicate lists.
func parseTargetTemplates(body string, prefixes *rdf.Prefixes) ([]TripleTemplate, error) {
	toks := tokenizeTarget(body)
	var out []TripleTemplate
	var subj TermTemplate
	haveSubj := false
	i := 0
	next := func() (string, bool) {
		if i < len(toks) {
			t := toks[i]
			i++
			return t, true
		}
		return "", false
	}
	for {
		if !haveSubj {
			tok, ok := next()
			if !ok {
				return out, nil
			}
			s, err := parseTermTemplate(tok, prefixes, true)
			if err != nil {
				return nil, err
			}
			subj = s
			haveSubj = true
		}
		ptok, ok := next()
		if !ok {
			return nil, fmt.Errorf("truncated target after subject")
		}
		p, err := parseTermTemplate(ptok, prefixes, false)
		if err != nil {
			return nil, err
		}
		otok, ok := next()
		if !ok {
			return nil, fmt.Errorf("truncated target after predicate")
		}
		o, err := parseTermTemplate(otok, prefixes, false)
		if err != nil {
			return nil, err
		}
		out = append(out, TripleTemplate{S: subj, P: p, O: o})
		sep, ok := next()
		if !ok {
			return out, nil
		}
		switch sep {
		case ".":
			haveSubj = false
		case ";":
			// same subject
		default:
			return nil, fmt.Errorf("expected '.' or ';', got %q", sep)
		}
	}
}

// tokenizeTarget splits target text into term tokens, detaching trailing
// "." and ";" separators.
func tokenizeTarget(s string) []string {
	fields := strings.Fields(s)
	var out []string
	for _, f := range fields {
		for f != "" {
			if f == "." || f == ";" {
				out = append(out, f)
				break
			}
			if strings.HasSuffix(f, ".") || strings.HasSuffix(f, ";") {
				sep := f[len(f)-1:]
				body := f[:len(f)-1]
				// Don't detach a dot inside an IRI or decimal: only detach
				// when what remains still parses as a term-ish token.
				if body != "" {
					out = append(out, body, sep)
				} else {
					out = append(out, sep)
				}
				break
			}
			out = append(out, f)
			break
		}
	}
	return out
}

// parseTermTemplate parses one target token into a term template.
func parseTermTemplate(tok string, prefixes *rdf.Prefixes, asSubject bool) (TermTemplate, error) {
	if tok == "a" && !asSubject {
		return TermTemplate{Kind: TmplIRI, Text: rdf.RDFType}, nil
	}
	if strings.HasPrefix(tok, "_:") {
		return TermTemplate{Kind: TmplBlank, Text: tok[2:]}, nil
	}
	// Literal with datatype: {col}^^xsd:float or "{col}"^^geo:wktLiteral
	if idx := strings.Index(tok, "^^"); idx >= 0 {
		lex := strings.Trim(tok[:idx], `"`)
		dt := tok[idx+2:]
		dtIRI, err := expandMaybe(dt, prefixes)
		if err != nil {
			return TermTemplate{}, err
		}
		return TermTemplate{Kind: TmplLiteral, Text: lex, Datatype: dtIRI}, nil
	}
	// Language-tagged literal: "{col}"@en
	if idx := strings.LastIndex(tok, `"@`); idx > 0 && strings.HasPrefix(tok, `"`) {
		return TermTemplate{Kind: TmplLiteral, Text: tok[1:idx], Lang: tok[idx+2:]}, nil
	}
	// Quoted plain literal
	if strings.HasPrefix(tok, `"`) && strings.HasSuffix(tok, `"`) && len(tok) >= 2 {
		return TermTemplate{Kind: TmplLiteral, Text: tok[1 : len(tok)-1]}, nil
	}
	// Full IRI
	if strings.HasPrefix(tok, "<") && strings.HasSuffix(tok, ">") {
		return TermTemplate{Kind: TmplIRI, Text: tok[1 : len(tok)-1]}, nil
	}
	// Bare placeholder -> literal
	if strings.HasPrefix(tok, "{") && strings.HasSuffix(tok, "}") {
		return TermTemplate{Kind: TmplLiteral, Text: tok}, nil
	}
	// Prefixed name, possibly with placeholder in the local part.
	if i := strings.IndexByte(tok, ':'); i >= 0 {
		ns, ok := prefixes.Namespace(tok[:i])
		if !ok {
			return TermTemplate{}, fmt.Errorf("unbound prefix in %q", tok)
		}
		return TermTemplate{Kind: TmplIRI, Text: ns + tok[i+1:]}, nil
	}
	return TermTemplate{}, fmt.Errorf("cannot parse target term %q", tok)
}

func expandMaybe(s string, prefixes *rdf.Prefixes) (string, error) {
	if strings.HasPrefix(s, "<") && strings.HasSuffix(s, ">") {
		return s[1 : len(s)-1], nil
	}
	return prefixes.Expand(s)
}
