package obda

import (
	"testing"

	"applab/internal/madis"
	"applab/internal/netcdf"
	"applab/internal/rdf"
)

// TestRelationalMappings covers OBDA over plain tables (no OPeNDAP): the
// classic Ontop deployment over a spatially-enabled RDBMS.
func TestRelationalMappings(t *testing.T) {
	db := madis.NewDB()
	db.CreateTable(&madis.Table{
		Name: "parks",
		Cols: []string{"gid", "name", "wkt"},
		Rows: []madis.Row{
			{"1", "Bois de Boulogne", "POLYGON ((2.23 48.85, 2.26 48.85, 2.26 48.88, 2.23 48.88, 2.23 48.85))"},
			{"2", "Parc Monceau", "POLYGON ((2.30 48.87, 2.31 48.87, 2.31 48.88, 2.30 48.88, 2.30 48.87))"},
		},
	})
	db.CreateTable(&madis.Table{
		Name: "admin",
		Cols: []string{"gid", "name", "wkt"},
		Rows: []madis.Row{
			{"a1", "West Paris", "POLYGON ((2.2 48.8, 2.28 48.8, 2.28 48.9, 2.2 48.9, 2.2 48.8))"},
		},
	})
	doc := `
mappingId	parks
target		osm:park/{gid} a osm:park ; osm:hasName "{name}" ; geo:hasGeometry _:pg .
			_:pg geo:asWKT {wkt}^^geo:wktLiteral .
source		SELECT gid, name, wkt FROM parks

mappingId	admin
target		gadm:{gid} a gadm:AdministrativeArea ; gadm:hasName "{name}" ; geo:hasGeometry _:ag .
			_:ag geo:asWKT {wkt}^^geo:wktLiteral .
source		SELECT gid, name, wkt FROM admin
`
	ms, err := ParseMappings(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("mappings = %d", len(ms))
	}
	vg := NewVirtualGraph(db, ms)

	// Virtual class instances from both mappings.
	res, err := vg.Query(`SELECT (COUNT(*) AS ?n) WHERE { ?s a osm:park }`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Bindings[0]["n"].Int(); n != 2 {
		t.Fatalf("parks = %d", n)
	}

	// Cross-mapping spatial join: which parks are within West Paris?
	res, err = vg.Query(`
SELECT ?pn WHERE {
  ?park a osm:park ; osm:hasName ?pn ; geo:hasGeometry ?pg .
  ?pg geo:asWKT ?pw .
  ?area a gadm:AdministrativeArea ; geo:hasGeometry ?ag .
  ?ag geo:asWKT ?aw .
  FILTER(geof:sfWithin(?pw, ?aw))
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 1 || res.Bindings[0]["pn"].Value != "Bois de Boulogne" {
		t.Fatalf("rows = %v", res.Bindings)
	}
}

func TestVirtualGraphSourceError(t *testing.T) {
	db := madis.NewDB() // no tables registered
	ms, _ := ParseMappings(`
mappingId	m
target		osm:{id} a osm:Thing .
source		SELECT id FROM missing
`)
	vg := NewVirtualGraph(db, ms)
	if _, err := vg.Query(`SELECT ?s WHERE { ?s ?p ?o }`); err == nil {
		t.Error("missing source table must surface as a query error")
	}
	// Match swallows the error per the Source contract.
	if got := vg.Match(rdf.Term{}, rdf.Term{}, rdf.Term{}); got != nil {
		t.Errorf("Match after error = %v", got)
	}
}

func TestSnapshotReusedUntilInvalidated(t *testing.T) {
	db := madis.NewDB()
	calls := 0
	db.RegisterVirtualTable("counter", func(args []string) (*madis.Table, error) {
		calls++
		return &madis.Table{Name: "counter", Cols: []string{"id"},
			Rows: []madis.Row{{"x"}}}, nil
	})
	ms, _ := ParseMappings(`
mappingId	m
target		osm:{id} a osm:Thing .
source		SELECT id FROM (counter 1)
`)
	vg := NewVirtualGraph(db, ms)
	vg.QueryCached(`ASK { ?s ?p ?o }`)
	vg.QueryCached(`ASK { ?s ?p ?o }`)
	if calls != 1 {
		t.Errorf("QueryCached must reuse the snapshot: %d source executions", calls)
	}
	vg.Query(`ASK { ?s ?p ?o }`) // Query always re-executes
	if calls != 2 {
		t.Errorf("Query must re-execute sources: %d", calls)
	}
}

func TestGridToTable2D(t *testing.T) {
	// 2-D (lat, lon) grids get a synthetic single time instant.
	ds := netcdf.NewDataset("flat")
	ds.AddDim("lat", 2)
	ds.AddDim("lon", 3)
	if err := ds.AddVar(&netcdf.Variable{Name: "lat", Dims: []string{"lat"}, Data: []float64{48.8, 48.9}}); err != nil {
		t.Fatal(err)
	}
	if err := ds.AddVar(&netcdf.Variable{Name: "lon", Dims: []string{"lon"}, Data: []float64{2.1, 2.2, 2.3}}); err != nil {
		t.Fatal(err)
	}
	if err := ds.AddVar(&netcdf.Variable{Name: "NDVI", Dims: []string{"lat", "lon"},
		Data: []float64{1, 2, 3, 4, 5, 6}}); err != nil {
		t.Fatal(err)
	}
	tb, err := GridToTable(ds, "NDVI")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][3] != "POINT (2.1 48.8)" {
		t.Errorf("loc = %v", tb.Rows[0][3])
	}
	// rank-1 variables are rejected
	ds1 := netcdf.NewDataset("r1")
	ds1.AddDim("x", 2)
	ds1.AddVar(&netcdf.Variable{Name: "v", Dims: []string{"x"}, Data: []float64{1, 2}})
	if _, err := GridToTable(ds1, "v"); err == nil {
		t.Error("rank-1 variable must error")
	}
	if _, err := GridToTable(ds, "missing"); err == nil {
		t.Error("missing variable must error")
	}
}
