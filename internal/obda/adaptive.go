package obda

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"sync"
	"time"

	"applab/internal/opendap"
	"applab/internal/rdf"
	"applab/internal/rescache"
	"applab/internal/sparql"
	"applab/internal/strabon"
	"applab/internal/telemetry"
)

// AdaptiveGraph makes the paper's materialized-vs-on-the-fly choice
// (Strabon vs OBDA over OPeNDAP, §3) dynamic. It serves queries from
// the virtual graph while tracking hot `opendap(url, window)` regions
// through the adapter's OnTable hook; once every tracked region has
// been used PromoteAfter times, the whole virtual view is materialized
// into a local segment-backed strabon.Store in the background (the
// virtual path keeps serving meanwhile — nothing blocks on promotion)
// and subsequent queries run against the local copy with zero upstream
// calls. Promoted regions are lazily revalidated against an upstream
// content stamp every RevalidateEvery; drift demotes back to the
// virtual path and the use counters start over.
//
// Region granularity is used for counting and revalidation; the
// materialization itself is whole-graph (all mappings), which keeps the
// local copy consistent with what the virtual path would serve — both
// are built through the same window caches.
type AdaptiveGraph struct {
	vg       *VirtualGraph
	adapter  *OpendapAdapter
	promoter *rescache.Promoter

	// StampFn overrides upstream drift detection (defaults to
	// adapter.UpstreamStamp). Set before the first query.
	StampFn func(region string) (string, error)

	mu          sync.Mutex
	local       *strabon.Store // nil until a promotion completes
	fingerprint string
}

// NewAdaptiveGraph wires an adaptive graph over vg and its adapter:
// promotion after promoteAfter uses per region, revalidation every
// revalidate (0 disables demotion). The adapter's OnTable hook is
// claimed by this graph.
func NewAdaptiveGraph(vg *VirtualGraph, adapter *OpendapAdapter, promoteAfter int, revalidate time.Duration) *AdaptiveGraph {
	ag := &AdaptiveGraph{
		vg:          vg,
		adapter:     adapter,
		fingerprint: rescache.NextFingerprint("adaptive"),
	}
	p := rescache.NewPromoter(promoteAfter, revalidate)
	p.Promote = ag.promote
	p.Check = ag.stamp
	p.OnDemote = func(string) { ag.dropLocal() }
	ag.promoter = p
	adapter.OnTable = p.Note
	return ag
}

// SetClock installs a fake clock on the promoter and adapter (tests).
func (ag *AdaptiveGraph) SetClock(now func() time.Time) {
	ag.promoter.Now = now
	ag.adapter.Now = now
}

// SetMetrics routes promotion_* counters into reg.
func (ag *AdaptiveGraph) SetMetrics(reg *telemetry.Registry) {
	ag.promoter.Metrics = reg
}

// Promoter exposes the underlying state machine (tests, cmds).
func (ag *AdaptiveGraph) Promoter() *rescache.Promoter { return ag.promoter }

// Quiesce waits for in-flight background promotions (deterministic
// tests; no real sleeps anywhere in the machinery).
func (ag *AdaptiveGraph) Quiesce() { ag.promoter.Quiesce() }

// Promoted reports whether queries are currently served from the local
// materialized copy.
func (ag *AdaptiveGraph) Promoted() bool {
	if !ag.promoter.Promoted() {
		return false
	}
	ag.mu.Lock()
	defer ag.mu.Unlock()
	return ag.local != nil
}

func (ag *AdaptiveGraph) stamp(region string) (string, error) {
	if ag.StampFn != nil {
		return ag.StampFn(region)
	}
	return ag.adapter.UpstreamStamp(region)
}

// promote materializes the whole virtual view into a fresh local store.
// It runs on the promoter's background goroutine; the stamp is read
// before the snapshot so content changing mid-promotion is caught by
// the first revalidation.
func (ag *AdaptiveGraph) promote(region string) (string, error) {
	stamp, err := ag.stamp(region)
	if err != nil {
		return "", err
	}
	ag.vg.Invalidate()
	g, err := ag.vg.Snapshot()
	if err != nil {
		return "", err
	}
	st := strabon.New()
	st.AddAll(g.Triples())
	if err := st.Err(); err != nil {
		_ = st.Close()
		return "", err
	}
	ag.mu.Lock()
	ag.local = st
	ag.mu.Unlock()
	return stamp, nil
}

func (ag *AdaptiveGraph) dropLocal() {
	ag.mu.Lock()
	ag.local = nil
	ag.mu.Unlock()
}

// serving returns the local store when fully promoted, else nil.
func (ag *AdaptiveGraph) serving() *strabon.Store {
	if !ag.promoter.Promoted() {
		return nil
	}
	ag.mu.Lock()
	defer ag.mu.Unlock()
	return ag.local
}

// Match implements sparql.Source.
func (ag *AdaptiveGraph) Match(s, p, o rdf.Term) []rdf.Triple {
	if st := ag.serving(); st != nil {
		return st.Match(s, p, o)
	}
	return ag.vg.Match(s, p, o)
}

// MatchErr implements sparql.ErrorSource.
func (ag *AdaptiveGraph) MatchErr(s, p, o rdf.Term) ([]rdf.Triple, error) {
	if st := ag.serving(); st != nil {
		return st.Match(s, p, o), nil
	}
	return ag.vg.MatchErr(s, p, o)
}

// MatchContext implements sparql.ContextSource.
func (ag *AdaptiveGraph) MatchContext(ctx context.Context, s, p, o rdf.Term) ([]rdf.Triple, error) {
	if st := ag.serving(); st != nil {
		return st.Match(s, p, o), nil
	}
	return ag.vg.MatchContext(ctx, s, p, o)
}

// Invalidate lets the endpoint's per-evaluation refresh hook reach the
// wrapped virtual graph: while virtual, the snapshot is dropped so the
// next evaluation re-executes mapping sources (the adapter's window
// caches decide what is actually refetched, and each execution feeds
// the promoter's use counters). Once promoted the local copy is
// canonical until revalidation demotes it — nothing to refresh.
func (ag *AdaptiveGraph) Invalidate() {
	if ag.serving() == nil {
		ag.vg.Invalidate()
	}
}

// Cardinality implements sparql.StatsSource.
func (ag *AdaptiveGraph) Cardinality(s, p, o rdf.Term) int {
	if st := ag.serving(); st != nil {
		return st.Cardinality(s, p, o)
	}
	return ag.vg.Cardinality(s, p, o)
}

// DataEpoch implements rescache.Epocher: the promoter's flip counter
// plus the adapter's content generation. Both components are monotonic,
// so the sum moves on every serving-mode flip and on every upstream
// content change while virtual. The local copy is immutable once built,
// so it contributes nothing.
func (ag *AdaptiveGraph) DataEpoch() uint64 {
	return ag.promoter.Epoch() + ag.adapter.Generation()
}

// EpochAdvancesOnEval marks the adaptive graph for fill-time epoch
// capture, like the virtual graph it wraps.
func (ag *AdaptiveGraph) EpochAdvancesOnEval() {}

// Fingerprint implements rescache.Fingerprinter.
func (ag *AdaptiveGraph) Fingerprint() string { return ag.fingerprint }

// LastError surfaces the virtual path's last snapshot failure.
func (ag *AdaptiveGraph) LastError() error { return ag.vg.LastError() }

// Query evaluates a query, virtual or local depending on promotion
// state. The virtual path re-executes mapping sources (QueryContext
// semantics); the local path evaluates directly.
func (ag *AdaptiveGraph) Query(q string) (*sparql.Results, error) {
	return ag.QueryContext(context.Background(), q)
}

// QueryContext is Query under a context.
func (ag *AdaptiveGraph) QueryContext(ctx context.Context, q string) (*sparql.Results, error) {
	if st := ag.serving(); st != nil {
		query, err := sparql.Parse(q)
		if err != nil {
			return nil, err
		}
		return query.EvalContext(ctx, st)
	}
	return ag.vg.QueryContext(ctx, q)
}

// UpstreamStamp fetches the region's dataset directly from the OPeNDAP
// client — bypassing the window caches and the physical-call counter,
// so revalidation does not perturb Generation — and returns a content
// hash. This is the default drift-detection stamp of the promoter.
func (a *OpendapAdapter) UpstreamStamp(region string) (string, error) {
	spec := region
	if i := strings.LastIndex(spec, "?w="); i >= 0 {
		spec = spec[:i]
	}
	dataset, varName, err := parseDatasetArg(spec)
	if err != nil {
		return "", err
	}
	ds, err := a.client.Fetch(dataset, opendap.Constraint{Var: varName})
	if err != nil {
		return "", err
	}
	v, ok := ds.Var(varName)
	if !ok {
		return "", fmt.Errorf("opendap: stamp fetch lacks %q", varName)
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, f := range v.Data {
		bits := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}
