package obda

import (
	"net/http"
	"strings"
	"testing"

	"applab/internal/faults"
	"applab/internal/rdf"
	"applab/internal/sparql"
)

// The virtual graph must satisfy the error-surfacing interface the
// federation engine prefers, so a broken OBDA member is reported rather
// than mistaken for an empty dataset.
var _ sparql.ErrorSource = (*VirtualGraph)(nil)

var laiPred = rdf.NewIRI("http://www.app-lab.eu/lai/lai")

func TestVirtualGraphSurfacesUpstreamOutage(t *testing.T) {
	db, adapter, _, closeFn := laiServer(t, 0)
	defer closeFn()
	// The OPeNDAP upstream fails twice (one failure per snapshot
	// attempt below), then recovers.
	script := faults.FailN(2, faults.Step{Kind: faults.ConnError})
	adapter.client.HTTP = &http.Client{Transport: faults.NewRoundTripper(script, nil)}

	ms, err := ParseMappings(listing2)
	if err != nil {
		t.Fatal(err)
	}
	vg := NewVirtualGraph(db, ms)

	// First snapshot hits the injected outage: the error must surface
	// through MatchErr, stick in LastError, and show as empty (not
	// panic, not partial garbage) through the legacy Match path.
	if _, err := vg.MatchErr(rdf.Term{}, laiPred, rdf.Term{}); err == nil {
		t.Fatal("outage must surface through MatchErr")
	} else if !strings.Contains(err.Error(), "obda: mapping opendap_mapping") {
		t.Fatalf("err = %v", err)
	}
	if vg.LastError() == nil {
		t.Fatal("LastError must retain the snapshot failure")
	}
	if got := vg.Match(rdf.Term{}, laiPred, rdf.Term{}); got != nil {
		t.Fatalf("Match during outage = %d triples, want nil", len(got))
	}

	// Upstream recovered: the same virtual graph works again and the
	// sticky error clears.
	triples, err := vg.MatchErr(rdf.Term{}, laiPred, rdf.Term{})
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 13 { // positives in the fixture grid
		t.Fatalf("recovered MatchErr = %d triples, want 13", len(triples))
	}
	if vg.LastError() != nil {
		t.Fatalf("LastError after recovery = %v", vg.LastError())
	}
}

func TestVirtualGraphQueryFailsLoudOnOutage(t *testing.T) {
	db, adapter, _, closeFn := laiServer(t, 0)
	defer closeFn()
	script := faults.FailN(1, faults.Step{Kind: faults.ConnError})
	adapter.client.HTTP = &http.Client{Transport: faults.NewRoundTripper(script, nil)}

	ms, err := ParseMappings(listing2)
	if err != nil {
		t.Fatal(err)
	}
	vg := NewVirtualGraph(db, ms)
	if _, err := vg.Query(`SELECT ?s WHERE { ?s lai:lai ?v }`); err == nil {
		t.Fatal("on-the-fly query over a dead upstream must error, not answer empty")
	}
	// Retry after recovery succeeds.
	res, err := vg.Query(`SELECT ?s WHERE { ?s lai:lai ?v }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 13 {
		t.Fatalf("recovered query = %d rows, want 13", len(res.Bindings))
	}
}
