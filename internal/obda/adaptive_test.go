package obda

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"applab/internal/netcdf"
	"applab/internal/opendap"
	"applab/internal/sparql"
)

const adaptiveQuery = `
SELECT ?s ?lai WHERE { ?s lai:lai ?lai }`

func canonRows(res *sparql.Results) []string {
	var rows []string
	for _, b := range res.Bindings {
		keys := make([]string, 0, len(b))
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		row := ""
		for _, k := range keys {
			row += k + "=" + b[k].Key() + ";"
		}
		rows = append(rows, row)
	}
	sort.Strings(rows)
	return rows
}

func newAdaptive(t *testing.T, promoteAfter int, revalidate time.Duration) (*AdaptiveGraph, *OpendapAdapter, *opendap.Server, func()) {
	t.Helper()
	db, adapter, srv, closeFn := laiServer(t, 0)
	ms, err := ParseMappings(listing2)
	if err != nil {
		t.Fatal(err)
	}
	vg := NewVirtualGraph(db, ms)
	vg.EpochFn = adapter.Generation
	ag := NewAdaptiveGraph(vg, adapter, promoteAfter, revalidate)
	return ag, adapter, srv, closeFn
}

func TestAdaptivePromotionCollapsesUpstreamCalls(t *testing.T) {
	ag, adapter, srv, closeFn := newAdaptive(t, 2, time.Hour)
	defer closeFn()
	clock := time.Date(2018, 6, 1, 12, 0, 0, 0, time.UTC)
	ag.SetClock(func() time.Time { return clock })

	res1, err := ag.Query(adaptiveQuery)
	if err != nil {
		t.Fatal(err)
	}
	if ag.Promoted() {
		t.Fatalf("promoted after one use")
	}
	if _, err := ag.Query(adaptiveQuery); err != nil { // 2nd use: triggers promotion
		t.Fatal(err)
	}
	ag.Quiesce()
	if !ag.Promoted() {
		t.Fatalf("not promoted after threshold")
	}

	// Steady state: queries run locally with zero upstream calls, even
	// after the window cache would have expired.
	calls := adapter.PhysicalCalls()
	clock = clock.Add(30 * time.Minute) // well past the 10-minute window
	for i := 0; i < 5; i++ {
		res, err := ag.Query(adaptiveQuery)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(canonRows(res)) != fmt.Sprint(canonRows(res1)) {
			t.Fatalf("local answer differs from virtual answer")
		}
	}
	if got := adapter.PhysicalCalls(); got != calls {
		t.Fatalf("promoted serving hit upstream: %d -> %d", calls, got)
	}
	_ = srv
}

func TestAdaptiveDemotionOnUpstreamChange(t *testing.T) {
	ag, adapter, srv, closeFn := newAdaptive(t, 1, time.Minute)
	defer closeFn()
	clock := time.Date(2018, 6, 1, 12, 0, 0, 0, time.UTC)
	ag.SetClock(func() time.Time { return clock })

	if _, err := ag.Query(adaptiveQuery); err != nil {
		t.Fatal(err)
	}
	ag.Quiesce()
	if !ag.Promoted() {
		t.Fatalf("not promoted")
	}
	epochPromoted := ag.DataEpoch()

	// Upstream content changes; within the revalidation window nothing
	// notices.
	publishLai(t, srv, 9.0)
	if !ag.Promoted() {
		t.Fatalf("demoted before revalidation was due")
	}

	// Past the revalidation window (and past the mapping's 10-minute
	// window cache, so the virtual path really refetches): the stamp
	// differs, the region is demoted, and the next query goes back to
	// the virtual path.
	clock = clock.Add(12 * time.Minute)
	if ag.Promoted() {
		t.Fatalf("still promoted after upstream drift")
	}
	if ag.DataEpoch() == epochPromoted {
		t.Fatalf("demotion did not move the epoch")
	}
	calls := adapter.PhysicalCalls()
	res, err := ag.Query(adaptiveQuery) // virtual again: refetches
	if err != nil {
		t.Fatal(err)
	}
	if adapter.PhysicalCalls() == calls {
		t.Fatalf("demoted query did not refetch upstream")
	}
	// The fresh answer reflects the new upstream content (all cells 9.0).
	for _, b := range res.Bindings {
		if f, ok := b["lai"].Float(); !ok || f != 9.0 {
			t.Fatalf("post-demotion answer is stale: %v", b["lai"])
		}
	}

	// Usage re-accumulates and the region re-promotes with fresh data.
	ag.Quiesce() // the query above was use #1 with PromoteAfter=1
	if !ag.Promoted() {
		t.Fatalf("re-promotion failed")
	}
	local, err := ag.Query(adaptiveQuery)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range local.Bindings {
		if f, _ := b["lai"].Float(); f != 9.0 {
			t.Fatalf("re-promoted copy is stale: %v", b["lai"])
		}
	}
}

func TestAdaptiveStampErrorKeepsServingLocal(t *testing.T) {
	ag, adapter, _, closeFn := newAdaptive(t, 1, time.Minute)
	defer closeFn()
	clock := time.Date(2018, 6, 1, 12, 0, 0, 0, time.UTC)
	ag.SetClock(func() time.Time { return clock })
	stampErr := error(nil)
	ag.StampFn = func(region string) (string, error) {
		if stampErr != nil {
			return "", stampErr
		}
		return "v1", nil
	}

	if _, err := ag.Query(adaptiveQuery); err != nil {
		t.Fatal(err)
	}
	ag.Quiesce()
	if !ag.Promoted() {
		t.Fatalf("not promoted")
	}

	// Upstream unreachable at revalidation time: keep serving the local
	// copy (stale-while-error), zero upstream calls.
	stampErr = errors.New("upstream down")
	clock = clock.Add(2 * time.Minute)
	calls := adapter.PhysicalCalls()
	if !ag.Promoted() {
		t.Fatalf("demoted on stamp error")
	}
	if _, err := ag.Query(adaptiveQuery); err != nil {
		t.Fatal(err)
	}
	if adapter.PhysicalCalls() != calls {
		t.Fatalf("stamp-error serving hit upstream")
	}
}

func TestAdaptiveEpochMovesOnPromotion(t *testing.T) {
	ag, _, _, closeFn := newAdaptive(t, 1, 0)
	defer closeFn()
	clock := time.Date(2018, 6, 1, 12, 0, 0, 0, time.UTC)
	ag.SetClock(func() time.Time { return clock })

	before := ag.DataEpoch()
	if _, err := ag.Query(adaptiveQuery); err != nil {
		t.Fatal(err)
	}
	ag.Quiesce()
	after := ag.DataEpoch()
	if after == before {
		t.Fatalf("promotion did not move the epoch")
	}
	if ag.Fingerprint() == "" {
		t.Fatalf("empty fingerprint")
	}
}

func TestUpstreamStampDetectsChange(t *testing.T) {
	_, adapter, srv, closeFn := newAdaptive(t, 2, 0)
	defer closeFn()
	s1, err := adapter.UpstreamStamp("lai/LAI?w=10")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := adapter.UpstreamStamp("lai/LAI?w=10")
	if err != nil || s1 != s2 {
		t.Fatalf("stamp not stable: %s %s %v", s1, s2, err)
	}
	publishLai(t, srv, 7.5)
	s3, err := adapter.UpstreamStamp("lai/LAI?w=10")
	if err != nil || s3 == s1 {
		t.Fatalf("stamp missed upstream change")
	}
	if _, err := adapter.UpstreamStamp("nonsense"); err == nil {
		t.Fatalf("bad region accepted")
	}
}

// publishLai republishes the lai dataset with every cell set to v.
func publishLai(t *testing.T, srv *opendap.Server, v float64) {
	t.Helper()
	d := netcdf.NewDataset("lai")
	d.AddDim("time", 2)
	d.AddDim("lat", 3)
	d.AddDim("lon", 3)
	add := func(vr *netcdf.Variable) {
		if err := d.AddVar(vr); err != nil {
			t.Fatal(err)
		}
	}
	add(&netcdf.Variable{Name: "time", Dims: []string{"time"}, Data: []float64{0, 10},
		Attrs: map[string]string{"units": "days since 2018-06-01"}})
	add(&netcdf.Variable{Name: "lat", Dims: []string{"lat"}, Data: []float64{48.85, 48.86, 48.87}})
	add(&netcdf.Variable{Name: "lon", Dims: []string{"lon"}, Data: []float64{2.25, 2.26, 2.27}})
	vals := make([]float64, 18)
	for i := range vals {
		vals[i] = v
	}
	add(&netcdf.Variable{Name: "LAI", Dims: []string{"time", "lat", "lon"}, Data: vals})
	srv.Publish(d)
}
