package geotriples

import (
	"fmt"
	"strings"
	"testing"

	"applab/internal/rdf"
	"applab/internal/workload"
)

const parkMapping = `
@prefix rr: <http://www.w3.org/ns/r2rml#> .
@prefix osm: <http://www.app-lab.eu/osm/> .
@prefix geo: <http://www.opengis.net/ont/geosparql#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

<#ParkMap> rr:subjectMap _:sm .
_:sm rr:template "http://www.app-lab.eu/osm/{id}" ;
     rr:class osm:Park .
<#ParkMap> rr:predicateObjectMap _:pom1, _:pom2, _:pom3 .
_:pom1 rr:predicate osm:hasName ; rr:objectMap _:om1 .
_:om1 rr:column "name" ; rr:datatype xsd:string .
_:pom2 rr:predicate geo:hasGeometry ; rr:objectMap _:om2 .
_:om2 rr:template "http://www.app-lab.eu/osm/{id}/geom" .
<#GeomMap> rr:subjectMap _:sm2 .
_:sm2 rr:template "http://www.app-lab.eu/osm/{id}/geom" .
<#GeomMap> rr:predicateObjectMap _:pom4 .
_:pom4 rr:predicate geo:asWKT ; rr:objectMap _:om4 .
_:om4 rr:column "geometry" ; rr:datatype geo:wktLiteral .
_:pom3 rr:predicate osm:visitors ; rr:objectMap _:om3 .
_:om3 rr:column "visitors" ; rr:datatype xsd:integer .
`

func TestParseR2RML(t *testing.T) {
	maps, err := ParseR2RML(parkMapping)
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) != 2 {
		t.Fatalf("maps = %d", len(maps))
	}
	var park *TriplesMap
	for i := range maps {
		if strings.Contains(maps[i].Name, "ParkMap") {
			park = &maps[i]
		}
	}
	if park == nil {
		t.Fatal("no ParkMap")
	}
	if park.SubjectTemplate != "http://www.app-lab.eu/osm/{id}" {
		t.Errorf("subject template = %q", park.SubjectTemplate)
	}
	if len(park.Classes) != 1 || park.Classes[0] != rdf.NSOSM+"Park" {
		t.Errorf("classes = %v", park.Classes)
	}
	if len(park.POMs) != 3 {
		t.Fatalf("POMs = %+v", park.POMs)
	}
}

func TestParseR2RMLErrors(t *testing.T) {
	bad := []string{
		``,
		`@prefix rr: <http://www.w3.org/ns/r2rml#> . <#M> rr:predicateObjectMap _:p .`,
		`@prefix rr: <http://www.w3.org/ns/r2rml#> . <#M> rr:subjectMap _:sm .`, // no template
		`@prefix rr: <http://www.w3.org/ns/r2rml#> .
<#M> rr:subjectMap _:sm . _:sm rr:template "http://x/{id}" .
<#M> rr:predicateObjectMap _:pom . _:pom rr:objectMap _:om . _:om rr:column "c" .`, // no predicate
		`@prefix rr: <http://www.w3.org/ns/r2rml#> .
<#M> rr:subjectMap _:sm . _:sm rr:template "http://x/{id}" .
<#M> rr:predicateObjectMap _:pom . _:pom rr:predicate <http://p> ; rr:objectMap _:om .`, // empty object map
	}
	for i, doc := range bad {
		if _, err := ParseR2RML(doc); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func parkTable() *Table {
	return &Table{
		Cols: []string{"id", "name", "geometry", "visitors"},
		Rows: [][]string{
			{"way1", "Bois de Boulogne", "POLYGON ((2.24 48.85, 2.26 48.85, 2.26 48.87, 2.24 48.87, 2.24 48.85))", "1200000"},
			{"way2", "Parc Monceau", "POLYGON ((2.30 48.87, 2.31 48.87, 2.31 48.88, 2.30 48.88, 2.30 48.87))", ""},
		},
	}
}

func TestProcess(t *testing.T) {
	maps, err := ParseR2RML(parkMapping)
	if err != nil {
		t.Fatal(err)
	}
	triples, err := Process(maps, parkTable())
	if err != nil {
		t.Fatal(err)
	}
	g := rdf.NewGraph()
	g.AddAll(triples)
	// way1: type + name + hasGeometry + visitors + asWKT = 5
	// way2: type + name + hasGeometry + asWKT = 4 (empty visitors skipped)
	if g.Len() != 9 {
		t.Fatalf("triples = %d:\n%v", g.Len(), triples)
	}
	name, ok := g.FirstObject(rdf.NewIRI(rdf.NSOSM+"way1"), rdf.NewIRI(rdf.NSOSM+"hasName"))
	if !ok || name.Value != "Bois de Boulogne" {
		t.Errorf("name = %+v", name)
	}
	wkt, ok := g.FirstObject(rdf.NewIRI(rdf.NSOSM+"way1/geom"), rdf.NewIRI(rdf.NSGeo+"asWKT"))
	if !ok || wkt.Datatype != rdf.WKTLiteral {
		t.Errorf("wkt = %+v", wkt)
	}
	visitors, ok := g.FirstObject(rdf.NewIRI(rdf.NSOSM+"way1"), rdf.NewIRI(rdf.NSOSM+"visitors"))
	if !ok {
		t.Fatal("no visitors triple")
	}
	if v, ok := visitors.Int(); !ok || v != 1200000 {
		t.Errorf("visitors = %+v", visitors)
	}
	if _, ok := g.FirstObject(rdf.NewIRI(rdf.NSOSM+"way2"), rdf.NewIRI(rdf.NSOSM+"visitors")); ok {
		t.Error("empty column must not produce a triple")
	}
}

func TestProcessParallelMatchesSequential(t *testing.T) {
	maps, _ := ParseR2RML(parkMapping)
	// Build a larger table.
	tbl := &Table{Cols: []string{"id", "name", "geometry", "visitors"}}
	for i := 0; i < 500; i++ {
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("way%d", i),
			fmt.Sprintf("Park %d", i),
			fmt.Sprintf("POINT (%d %d)", i%100, i/100),
			fmt.Sprintf("%d", i*10),
		})
	}
	seq, err := Process(maps, tbl)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		par, err := ProcessParallel(maps, tbl, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d vs %d triples", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i].String() != seq[i].String() {
				t.Fatalf("workers=%d: triple %d differs:\n%v\n%v", workers, i, par[i], seq[i])
			}
		}
	}
}

func TestProcessUnknownColumn(t *testing.T) {
	doc := `@prefix rr: <http://www.w3.org/ns/r2rml#> .
<#M> rr:subjectMap _:sm . _:sm rr:template "http://x/{id}" .
<#M> rr:predicateObjectMap _:pom . _:pom rr:predicate <http://p> ; rr:objectMap _:om .
_:om rr:column "nope" .`
	maps, err := ParseR2RML(doc)
	if err != nil {
		t.Fatal(err)
	}
	tbl := &Table{Cols: []string{"id"}, Rows: [][]string{{"1"}}}
	if _, err := Process(maps, tbl); err == nil {
		t.Error("unknown column must error")
	}
}

func TestIRISafeSubjects(t *testing.T) {
	doc := `@prefix rr: <http://www.w3.org/ns/r2rml#> .
<#M> rr:subjectMap _:sm . _:sm rr:template "http://x/{name}" .
<#M> rr:predicateObjectMap _:pom . _:pom rr:predicate <http://p> ; rr:objectMap _:om .
_:om rr:column "name" .`
	maps, _ := ParseR2RML(doc)
	tbl := &Table{Cols: []string{"name"}, Rows: [][]string{{"Bois de Boulogne"}}}
	triples, err := Process(maps, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if triples[0].S.Value != "http://x/Bois%20de%20Boulogne" {
		t.Errorf("subject = %q", triples[0].S.Value)
	}
	// literal object keeps the raw value
	if triples[0].O.Value != "Bois de Boulogne" {
		t.Errorf("object = %q", triples[0].O.Value)
	}
}

func TestReadCSV(t *testing.T) {
	csvDoc := "id,name,geometry\nway1,Park A,POINT (1 2)\nway2,Park B,POINT (3 4)\n"
	tbl, err := ReadCSV(strings.NewReader(csvDoc))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Cols) != 3 || len(tbl.Rows) != 2 {
		t.Fatalf("table = %+v", tbl)
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV must error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged CSV must error")
	}
}

func TestReadGeoJSON(t *testing.T) {
	doc := `{
	  "type": "FeatureCollection",
	  "features": [
	    {"type": "Feature",
	     "properties": {"id": "way1", "name": "Park A", "visitors": 1200},
	     "geometry": {"type": "Point", "coordinates": [2.25, 48.86]}},
	    {"type": "Feature",
	     "properties": {"id": "way2", "name": "Park B"},
	     "geometry": {"type": "Polygon", "coordinates": [[[0,0],[1,0],[1,1],[0,1],[0,0]]]}}
	  ]
	}`
	tbl, err := ReadGeoJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	gi, _ := tbl.ColIndex("geometry")
	if tbl.Rows[0][gi] != "POINT (2.25 48.86)" {
		t.Errorf("point wkt = %q", tbl.Rows[0][gi])
	}
	if !strings.HasPrefix(tbl.Rows[1][gi], "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))") {
		t.Errorf("polygon wkt = %q", tbl.Rows[1][gi])
	}
	ni, _ := tbl.ColIndex("visitors")
	if tbl.Rows[0][ni] != "1200" {
		t.Errorf("numeric property = %q", tbl.Rows[0][ni])
	}
	if tbl.Rows[1][ni] != "" {
		t.Errorf("missing property = %q", tbl.Rows[1][ni])
	}
	// errors
	if _, err := ReadGeoJSON(strings.NewReader(`{"type": "Feature"}`)); err == nil {
		t.Error("non-collection must error")
	}
	if _, err := ReadGeoJSON(strings.NewReader(`{"type": "FeatureCollection",
	  "features": [{"type":"Feature","properties":{},"geometry":{"type":"Circle","coordinates":[1,2]}}]}`)); err == nil {
		t.Error("unsupported geometry must error")
	}
}

func TestFromNetCDF(t *testing.T) {
	opts := workload.DefaultLAIOptions()
	opts.NLat, opts.NLon, opts.Times = 3, 4, 2
	ds := workload.LAIGrid(opts)
	tbl, err := FromNetCDF(ds, "LAI")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 24 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	li, _ := tbl.ColIndex("loc")
	if !strings.HasPrefix(tbl.Rows[0][li], "POINT (") {
		t.Errorf("loc = %q", tbl.Rows[0][li])
	}
	if _, err := FromNetCDF(ds, "nope"); err == nil {
		t.Error("unknown variable must error")
	}
}

// End-to-end: GeoJSON -> R2RML -> RDF graph queried with GeoSPARQL shape.
func TestGeoJSONToRDFEndToEnd(t *testing.T) {
	doc := `{
	  "type": "FeatureCollection",
	  "features": [
	    {"type": "Feature", "properties": {"id": "p1", "name": "A"},
	     "geometry": {"type": "Point", "coordinates": [1, 1]}}
	  ]
	}`
	tbl, err := ReadGeoJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	maps, err := ParseR2RML(parkMapping)
	if err != nil {
		t.Fatal(err)
	}
	// parkMapping expects a "visitors" column; absent columns are an error
	// only when referenced rows exist — add the column empty.
	tbl.Cols = append(tbl.Cols, "visitors")
	for i := range tbl.Rows {
		tbl.Rows[i] = append(tbl.Rows[i], "")
	}
	triples, err := Process(maps, tbl)
	if err != nil {
		t.Fatal(err)
	}
	g := rdf.NewGraph()
	g.AddAll(triples)
	if g.Len() != 4 {
		t.Fatalf("graph = %d triples", g.Len())
	}
}
