// Package geotriples implements the GeoTriples tool of the App Lab stack
// [Kyzirakos et al., JWS 2018]: an R2RML mapping processor that transforms
// tabular geospatial data — CSV files, GeoJSON feature collections and
// NetCDF grids — into RDF graphs using the GeoSPARQL vocabulary. Mappings
// are written in (a subset of) the W3C R2RML vocabulary serialized as
// Turtle. The processor runs sequentially or with a worker pool (the
// laptop-scale analogue of the paper's Hadoop mapping processor).
package geotriples

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"applab/internal/netcdf"
)

// Table is the tabular intermediate representation every source is read
// into: a header plus string-valued records.
type Table struct {
	Cols []string
	Rows [][]string
}

// ColIndex returns the index of a column (case-insensitive).
func (t *Table) ColIndex(name string) (int, bool) {
	for i, c := range t.Cols {
		if strings.EqualFold(c, name) {
			return i, true
		}
	}
	return 0, false
}

// ReadCSV reads a CSV document with a header row.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("geotriples: csv: %v", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("geotriples: csv: empty document")
	}
	return &Table{Cols: records[0], Rows: records[1:]}, nil
}

// geoJSON mirrors the GeoJSON FeatureCollection structure.
type geoJSON struct {
	Type     string `json:"type"`
	Features []struct {
		Type       string          `json:"type"`
		Properties map[string]any  `json:"properties"`
		Geometry   json.RawMessage `json:"geometry"`
	} `json:"features"`
}

type geoJSONGeom struct {
	Type        string          `json:"type"`
	Coordinates json.RawMessage `json:"coordinates"`
}

// ReadGeoJSON reads a GeoJSON FeatureCollection. Feature properties become
// columns; the geometry becomes a "geometry" column holding WKT.
func ReadGeoJSON(r io.Reader) (*Table, error) {
	var doc geoJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("geotriples: geojson: %v", err)
	}
	if doc.Type != "FeatureCollection" {
		return nil, fmt.Errorf("geotriples: geojson: type %q is not FeatureCollection", doc.Type)
	}
	// Collect the union of property keys for the header.
	keySet := map[string]bool{}
	for _, f := range doc.Features {
		for k := range f.Properties {
			keySet[k] = true
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	t := &Table{Cols: append(keys, "geometry")}
	for i, f := range doc.Features {
		row := make([]string, 0, len(keys)+1)
		for _, k := range keys {
			row = append(row, propString(f.Properties[k]))
		}
		wkt, err := geoJSONToWKT(f.Geometry)
		if err != nil {
			return nil, fmt.Errorf("geotriples: geojson feature %d: %v", i, err)
		}
		row = append(row, wkt)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func propString(v any) string {
	switch t := v.(type) {
	case nil:
		return ""
	case string:
		return t
	case float64:
		return strconv.FormatFloat(t, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(t)
	}
	b, _ := json.Marshal(v)
	return string(b)
}

// geoJSONToWKT converts a GeoJSON geometry object into WKT.
func geoJSONToWKT(raw json.RawMessage) (string, error) {
	if len(raw) == 0 {
		return "", fmt.Errorf("missing geometry")
	}
	var g geoJSONGeom
	if err := json.Unmarshal(raw, &g); err != nil {
		return "", err
	}
	switch g.Type {
	case "Point":
		var c []float64
		if err := json.Unmarshal(g.Coordinates, &c); err != nil || len(c) < 2 {
			return "", fmt.Errorf("bad Point coordinates")
		}
		return fmt.Sprintf("POINT (%g %g)", c[0], c[1]), nil
	case "LineString":
		var c [][]float64
		if err := json.Unmarshal(g.Coordinates, &c); err != nil {
			return "", fmt.Errorf("bad LineString coordinates")
		}
		return "LINESTRING " + coordList(c), nil
	case "Polygon":
		var c [][][]float64
		if err := json.Unmarshal(g.Coordinates, &c); err != nil {
			return "", fmt.Errorf("bad Polygon coordinates")
		}
		return "POLYGON " + ringList(c), nil
	case "MultiPolygon":
		var c [][][][]float64
		if err := json.Unmarshal(g.Coordinates, &c); err != nil {
			return "", fmt.Errorf("bad MultiPolygon coordinates")
		}
		parts := make([]string, len(c))
		for i, poly := range c {
			parts[i] = ringList(poly)
		}
		return "MULTIPOLYGON (" + strings.Join(parts, ", ") + ")", nil
	}
	return "", fmt.Errorf("unsupported geometry type %q", g.Type)
}

func coordList(c [][]float64) string {
	parts := make([]string, len(c))
	for i, p := range c {
		parts[i] = fmt.Sprintf("%g %g", p[0], p[1])
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func ringList(rings [][][]float64) string {
	parts := make([]string, len(rings))
	for i, r := range rings {
		parts[i] = coordList(r)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// FromNetCDF flattens a CF grid variable into a table with columns
// (id, <var>, ts, loc) — the same relation shape the paper's custom Python
// script produced for the LAI product ("Since GeoTriples does not support
// NetCDF files as input, the translation was done by writing a custom
// Python script"; this method removes that gap, one of the paper's §5
// open problems).
func FromNetCDF(ds *netcdf.Dataset, varName string) (*Table, error) {
	v, ok := ds.Var(varName)
	if !ok {
		return nil, fmt.Errorf("geotriples: dataset lacks variable %q", varName)
	}
	shape := v.Shape(ds)
	if len(shape) != 3 {
		return nil, fmt.Errorf("geotriples: %s must be time x lat x lon", varName)
	}
	times, err := ds.TimeValues()
	if err != nil {
		return nil, err
	}
	latV, okLat := ds.Var("lat")
	lonV, okLon := ds.Var("lon")
	if !okLat || !okLon {
		return nil, fmt.Errorf("geotriples: dataset lacks lat/lon coordinate variables")
	}
	t := &Table{Cols: []string{"id", varName, "ts", "loc"}}
	for ti := 0; ti < shape[0]; ti++ {
		ts := times[ti].UTC().Format("2006-01-02T15:04:05Z")
		for yi := 0; yi < shape[1]; yi++ {
			for xi := 0; xi < shape[2]; xi++ {
				val := v.Data[(ti*shape[1]+yi)*shape[2]+xi]
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("obs_%d_%d_%d", ti, yi, xi),
					strconv.FormatFloat(val, 'g', -1, 64),
					ts,
					fmt.Sprintf("POINT (%g %g)", lonV.Data[xi], latV.Data[yi]),
				})
			}
		}
	}
	return t, nil
}
