package geotriples

import (
	"fmt"
	"sort"
	"strings"

	"applab/internal/rdf"
)

// NSRR is the W3C R2RML namespace.
const NSRR = "http://www.w3.org/ns/r2rml#"

// TriplesMap is one parsed R2RML triples map.
type TriplesMap struct {
	// Name is the triples map node (for diagnostics).
	Name string
	// SubjectTemplate is an IRI template with {column} placeholders.
	SubjectTemplate string
	// Classes are rr:class IRIs asserted for every subject.
	Classes []string
	// POMs are the predicate-object maps.
	POMs []PredicateObjectMap
}

// PredicateObjectMap maps one predicate to an object produced from a
// column, template or constant.
type PredicateObjectMap struct {
	Predicate string
	// Column produces a literal from a source column (rr:column).
	Column string
	// Template produces an IRI from a template (rr:template on object).
	Template string
	// Constant produces a fixed term (rr:constant).
	Constant *rdf.Term
	// Datatype is the literal datatype IRI (rr:datatype).
	Datatype string
	// TermIRI forces the object to be an IRI even for column values.
	TermIRI bool
}

// ParseR2RML parses an R2RML mapping document written in Turtle. The
// supported subset uses labeled blank nodes (our Turtle reader does not
// support anonymous property lists):
//
//	@prefix rr: <http://www.w3.org/ns/r2rml#> .
//	<#ParkMap> rr:subjectMap _:sm .
//	_:sm rr:template "http://www.app-lab.eu/osm/{id}" ; rr:class osm:Park .
//	<#ParkMap> rr:predicateObjectMap _:pom1 .
//	_:pom1 rr:predicate osm:hasName ; rr:objectMap _:om1 .
//	_:om1 rr:column "name" .
func ParseR2RML(doc string) ([]TriplesMap, error) {
	triples, _, err := rdf.ParseTurtleString(doc)
	if err != nil {
		return nil, fmt.Errorf("geotriples: r2rml: %v", err)
	}
	g := rdf.NewGraph()
	g.AddAll(triples)

	rr := func(local string) rdf.Term { return rdf.NewIRI(NSRR + local) }

	// Triples maps are subjects with rr:subjectMap.
	tmNodes := g.Subjects(rr("subjectMap"), rdf.Term{})
	if len(tmNodes) == 0 {
		return nil, fmt.Errorf("geotriples: r2rml: no triples maps (rr:subjectMap) found")
	}
	var out []TriplesMap
	for _, tmNode := range tmNodes {
		tm := TriplesMap{Name: tmNode.Value}
		smNode, _ := g.FirstObject(tmNode, rr("subjectMap"))
		tmpl, ok := g.FirstObject(smNode, rr("template"))
		if !ok {
			return nil, fmt.Errorf("geotriples: r2rml: %s subject map lacks rr:template", tm.Name)
		}
		tm.SubjectTemplate = tmpl.Value
		for _, cls := range g.Objects(smNode, rr("class")) {
			tm.Classes = append(tm.Classes, cls.Value)
		}
		for _, pomNode := range g.Objects(tmNode, rr("predicateObjectMap")) {
			var pom PredicateObjectMap
			pred, ok := g.FirstObject(pomNode, rr("predicate"))
			if !ok {
				return nil, fmt.Errorf("geotriples: r2rml: %s pom lacks rr:predicate", tm.Name)
			}
			pom.Predicate = pred.Value
			omNode, ok := g.FirstObject(pomNode, rr("objectMap"))
			if !ok {
				return nil, fmt.Errorf("geotriples: r2rml: %s pom lacks rr:objectMap", tm.Name)
			}
			if col, ok := g.FirstObject(omNode, rr("column")); ok {
				pom.Column = col.Value
			}
			if t, ok := g.FirstObject(omNode, rr("template")); ok {
				pom.Template = t.Value
			}
			if c, ok := g.FirstObject(omNode, rr("constant")); ok {
				cc := c
				pom.Constant = &cc
			}
			if dt, ok := g.FirstObject(omNode, rr("datatype")); ok {
				pom.Datatype = dt.Value
			}
			if tt, ok := g.FirstObject(omNode, rr("termType")); ok && tt.Value == NSRR+"IRI" {
				pom.TermIRI = true
			}
			if pom.Column == "" && pom.Template == "" && pom.Constant == nil {
				return nil, fmt.Errorf("geotriples: r2rml: %s object map needs rr:column, rr:template or rr:constant", tm.Name)
			}
			tm.POMs = append(tm.POMs, pom)
		}
		sort.Slice(tm.POMs, func(i, j int) bool { return tm.POMs[i].Predicate < tm.POMs[j].Predicate })
		out = append(out, tm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// expandTemplate substitutes {col} placeholders with row values.
// IRI-unsafe characters in substituted values are percent-encoded when
// asIRI is set.
func expandTemplate(tmpl string, cols map[string]int, row []string, asIRI bool) (string, bool) {
	var b strings.Builder
	s := tmpl
	for {
		i := strings.IndexByte(s, '{')
		if i < 0 {
			b.WriteString(s)
			return b.String(), true
		}
		j := strings.IndexByte(s[i:], '}')
		if j < 0 {
			b.WriteString(s)
			return b.String(), true
		}
		b.WriteString(s[:i])
		col := s[i+1 : i+j]
		ci, ok := cols[strings.ToLower(col)]
		if !ok || row[ci] == "" {
			return "", false
		}
		v := row[ci]
		if asIRI {
			v = iriSafe(v)
		}
		b.WriteString(v)
		s = s[i+j+1:]
	}
}

func iriSafe(s string) string {
	if !strings.ContainsAny(s, " <>\"{}|\\^`") {
		return s
	}
	var b strings.Builder
	for _, c := range []byte(s) {
		switch c {
		case ' ', '<', '>', '"', '{', '}', '|', '\\', '^', '`':
			fmt.Fprintf(&b, "%%%02X", c)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}
