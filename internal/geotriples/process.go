package geotriples

import (
	"fmt"
	"strings"
	"sync"

	"applab/internal/rdf"
)

// Process applies the triples maps to every row of the table, returning
// the generated triples in row order.
func Process(maps []TriplesMap, t *Table) ([]rdf.Triple, error) {
	cols := colIndex(t)
	var out []rdf.Triple
	for ri, row := range t.Rows {
		ts, err := processRow(maps, cols, row)
		if err != nil {
			return nil, fmt.Errorf("geotriples: row %d: %v", ri, err)
		}
		out = append(out, ts...)
	}
	return out, nil
}

// ProcessParallel applies the triples maps with a pool of workers over row
// chunks — the laptop-scale analogue of GeoTriples' Hadoop mapping
// processor. Output order matches Process.
func ProcessParallel(maps []TriplesMap, t *Table, workers int) ([]rdf.Triple, error) {
	if workers < 1 {
		workers = 1
	}
	if workers == 1 || len(t.Rows) < 2*workers {
		return Process(maps, t)
	}
	cols := colIndex(t)
	chunk := (len(t.Rows) + workers - 1) / workers
	results := make([][]rdf.Triple, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start := w * chunk
		end := start + chunk
		if end > len(t.Rows) {
			end = len(t.Rows)
		}
		if start >= end {
			continue
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			var acc []rdf.Triple
			for ri := start; ri < end; ri++ {
				ts, err := processRow(maps, cols, t.Rows[ri])
				if err != nil {
					errs[w] = fmt.Errorf("geotriples: row %d: %v", ri, err)
					return
				}
				acc = append(acc, ts...)
			}
			results[w] = acc
		}(w, start, end)
	}
	wg.Wait()
	var out []rdf.Triple
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return nil, errs[w]
		}
		out = append(out, results[w]...)
	}
	return out, nil
}

func colIndex(t *Table) map[string]int {
	cols := make(map[string]int, len(t.Cols))
	for i, c := range t.Cols {
		cols[strings.ToLower(c)] = i
	}
	return cols
}

// processRow instantiates every triples map for one row. Rows with empty
// placeholder values skip the affected triples (R2RML NULL semantics).
func processRow(maps []TriplesMap, cols map[string]int, row []string) ([]rdf.Triple, error) {
	var out []rdf.Triple
	for _, m := range maps {
		subjIRI, ok := expandTemplate(m.SubjectTemplate, cols, row, true)
		if !ok {
			continue
		}
		subj := rdf.NewIRI(subjIRI)
		for _, cls := range m.Classes {
			out = append(out, rdf.NewTriple(subj, rdf.NewIRI(rdf.RDFType), rdf.NewIRI(cls)))
		}
		for _, pom := range m.POMs {
			pred := rdf.NewIRI(pom.Predicate)
			var obj rdf.Term
			switch {
			case pom.Constant != nil:
				obj = *pom.Constant
			case pom.Template != "":
				v, ok := expandTemplate(pom.Template, cols, row, true)
				if !ok {
					continue
				}
				obj = rdf.NewIRI(v)
			default:
				ci, ok := cols[strings.ToLower(pom.Column)]
				if !ok {
					return nil, fmt.Errorf("mapping %s references unknown column %q", m.Name, pom.Column)
				}
				v := row[ci]
				if v == "" {
					continue
				}
				switch {
				case pom.TermIRI:
					obj = rdf.NewIRI(iriSafe(v))
				case pom.Datatype != "":
					obj = rdf.NewTypedLiteral(v, pom.Datatype)
				default:
					obj = rdf.NewLiteral(v)
				}
			}
			out = append(out, rdf.NewTriple(subj, pred, obj))
		}
	}
	return out, nil
}
