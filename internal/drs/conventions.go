package drs

import (
	"fmt"
	"sort"
)

// Convention names a metadata attribute convention. The paper's §3.1:
// "Given the proliferation of various metadata standards, a tool was
// developed that can translate between metadata conventions."
type Convention string

// Supported conventions.
const (
	// ConventionACDD is the Attribute Convention for Data Discovery (the
	// profile Validate checks).
	ConventionACDD Convention = "ACDD"
	// ConventionISO19115 is a flat rendering of the ISO 19115 core
	// metadata elements.
	ConventionISO19115 Convention = "ISO19115"
	// ConventionDRS is the project's Data Reference Syntax vocabulary.
	ConventionDRS Convention = "DRS"
)

// crosswalk maps canonical (ACDD) attribute names to their names in the
// other conventions. Attributes without an entry pass through unchanged.
var crosswalk = map[string]map[Convention]string{
	"title":               {ConventionISO19115: "MD_DataIdentification.citation.title", ConventionDRS: "drs_title"},
	"summary":             {ConventionISO19115: "MD_DataIdentification.abstract", ConventionDRS: "drs_description"},
	"institution":         {ConventionISO19115: "CI_ResponsibleParty.organisationName", ConventionDRS: "drs_institute"},
	"creator_name":        {ConventionISO19115: "CI_ResponsibleParty.individualName", ConventionDRS: "drs_contact"},
	"license":             {ConventionISO19115: "MD_Constraints.useLimitation", ConventionDRS: "drs_license"},
	"keywords":            {ConventionISO19115: "MD_Keywords.keyword", ConventionDRS: "drs_keywords"},
	"source":              {ConventionISO19115: "LI_Lineage.source", ConventionDRS: "drs_source_id"},
	"time_coverage_start": {ConventionISO19115: "EX_TemporalExtent.begin", ConventionDRS: "drs_start_time"},
	"time_coverage_end":   {ConventionISO19115: "EX_TemporalExtent.end", ConventionDRS: "drs_end_time"},
	"geospatial_lat_min":  {ConventionISO19115: "EX_GeographicBoundingBox.southBoundLatitude", ConventionDRS: "drs_lat_min"},
	"geospatial_lat_max":  {ConventionISO19115: "EX_GeographicBoundingBox.northBoundLatitude", ConventionDRS: "drs_lat_max"},
	"geospatial_lon_min":  {ConventionISO19115: "EX_GeographicBoundingBox.westBoundLongitude", ConventionDRS: "drs_lon_min"},
	"geospatial_lon_max":  {ConventionISO19115: "EX_GeographicBoundingBox.eastBoundLongitude", ConventionDRS: "drs_lon_max"},
	"Conventions":         {ConventionISO19115: "metadataStandardName", ConventionDRS: "drs_conventions"},
}

// reverse[conv][foreignName] = canonical ACDD name.
var reverse = func() map[Convention]map[string]string {
	out := map[Convention]map[string]string{}
	for canonical, per := range crosswalk {
		for conv, name := range per {
			if out[conv] == nil {
				out[conv] = map[string]string{}
			}
			out[conv][name] = canonical
		}
	}
	return out
}()

// Conventions lists the supported convention names.
func Conventions() []Convention {
	return []Convention{ConventionACDD, ConventionISO19115, ConventionDRS}
}

// TranslateAttrs renames attribute keys from one convention to another.
// Unknown keys pass through unchanged; values are never altered. The
// translation is lossless: translating back restores the original keys
// for every mapped attribute.
func TranslateAttrs(attrs map[string]string, from, to Convention) (map[string]string, error) {
	if !known(from) || !known(to) {
		return nil, fmt.Errorf("drs: unknown convention %q or %q", from, to)
	}
	out := make(map[string]string, len(attrs))
	for k, v := range attrs {
		out[translateKey(k, from, to)] = v
	}
	return out, nil
}

func known(c Convention) bool {
	for _, k := range Conventions() {
		if k == c {
			return true
		}
	}
	return false
}

func translateKey(key string, from, to Convention) string {
	// Normalize to the canonical (ACDD) name first.
	canonical := key
	if from != ConventionACDD {
		if c, ok := reverse[from][key]; ok {
			canonical = c
		} else {
			return key // unknown foreign key: pass through
		}
	} else if _, ok := crosswalk[key]; !ok {
		return key
	}
	if to == ConventionACDD {
		return canonical
	}
	if name, ok := crosswalk[canonical][to]; ok {
		return name
	}
	return canonical
}

// MappedAttrs returns the canonical attribute names the crosswalk covers,
// sorted (for documentation and tests).
func MappedAttrs() []string {
	out := make([]string, 0, len(crosswalk))
	for k := range crosswalk {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
