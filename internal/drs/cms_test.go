package drs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"applab/internal/netcdf"
	"applab/internal/opendap"
	"applab/internal/workload"
)

func newCMSServer(t *testing.T) (*opendap.Server, *httptest.Server) {
	t.Helper()
	srv := opendap.NewServer()
	ds := workload.LAIGrid(workload.DefaultLAIOptions())
	srv.Publish(ds)

	bare := netcdf.NewDataset("bare")
	bare.AddDim("x", 1)
	bare.AddVar(&netcdf.Variable{Name: "v", Dims: []string{"x"}, Data: []float64{1}})
	srv.Publish(bare)

	cms := NewCMS(srv)
	ts := httptest.NewServer(cms)
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestCMSGetMetadata(t *testing.T) {
	_, ts := newCMSServer(t)
	var attrs map[string]string
	if code := getJSON(t, ts.URL+"/metadata/lai", &attrs); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if attrs["title"] == "" {
		t.Errorf("attrs = %v", attrs)
	}
	if code := getJSON(t, ts.URL+"/metadata/nosuch", &attrs); code != http.StatusNotFound {
		t.Errorf("missing dataset status = %d", code)
	}
}

func TestCMSOverlayLifecycle(t *testing.T) {
	_, ts := newCMSServer(t)

	// The bare dataset fails validation.
	var report struct {
		Compliant    bool     `json:"compliant"`
		Completeness float64  `json:"completeness"`
		Recommend    []string `json:"recommend"`
	}
	if code := getJSON(t, ts.URL+"/validate/bare", &report); code != http.StatusOK {
		t.Fatalf("validate status = %d", code)
	}
	if report.Compliant {
		t.Fatal("bare dataset must not be compliant")
	}
	if len(report.Recommend) == 0 {
		t.Fatal("recommendations missing")
	}

	// PUT an overlay supplying the required attributes.
	overlay := map[string]string{
		"title": "Bare grid", "institution": "applab", "source": "synthetic",
		"Conventions": "CF-1.6",
	}
	body, _ := json.Marshal(overlay)
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/metadata/bare", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT status = %v", resp.Status)
	}

	// The variable attribute errors remain (units/long_name on v), but
	// global completeness improved and the effective metadata shows the
	// overlay.
	var attrs map[string]string
	getJSON(t, ts.URL+"/metadata/bare", &attrs)
	if attrs["title"] != "Bare grid" {
		t.Errorf("overlay not applied: %v", attrs)
	}
	var after struct {
		Completeness float64 `json:"completeness"`
	}
	getJSON(t, ts.URL+"/validate/bare", &after)
	if after.Completeness <= report.Completeness {
		t.Errorf("completeness %v -> %v", report.Completeness, after.Completeness)
	}

	// DELETE the overlay: back to the bare attributes.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/metadata/bare", nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	attrs = nil // decoding into a reused map would merge keys
	getJSON(t, ts.URL+"/metadata/bare", &attrs)
	if attrs["title"] != "" {
		t.Errorf("overlay not removed: %v", attrs)
	}
}

func TestCMSOverlayNeverOverwritesSource(t *testing.T) {
	srv, ts := newCMSServer(t)
	ds, _ := srv.Dataset("lai")
	orig := ds.Attrs["title"]
	body, _ := json.Marshal(map[string]string{"title": "HIJACKED"})
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/metadata/lai", bytes.NewReader(body))
	resp, _ := http.DefaultClient.Do(req)
	resp.Body.Close()
	var attrs map[string]string
	getJSON(t, ts.URL+"/metadata/lai", &attrs)
	if attrs["title"] != orig {
		t.Errorf("source attribute overwritten: %q", attrs["title"])
	}
}

func TestCMSBadRequests(t *testing.T) {
	_, ts := newCMSServer(t)
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/metadata/lai",
		bytes.NewReader([]byte("not json")))
	resp, _ := http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status = %v", resp.Status)
	}
	resp, _ = http.Get(ts.URL + "/unknown/route")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown route status = %v", resp.Status)
	}
}
