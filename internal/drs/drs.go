// Package drs implements the metadata tooling of the paper's §3.1: the
// "DRS-validator" command-line tool that checks datasets exposed through
// an OPeNDAP interface for compliance with a Data Reference Syntax (DRS)
// metadata profile and ACDD-style completeness, a recommendation engine
// that suggests attributes improving discoverability, and post-hoc NcML
// augmentation for sources whose metadata cannot be fixed upstream.
package drs

import (
	"fmt"
	"sort"
	"strings"

	"applab/internal/netcdf"
)

// RequiredGlobalAttrs is the DRS minimum metadata standard for global
// attributes ("we set a minimum metadata standard which should be followed
// by interested parties").
var RequiredGlobalAttrs = []string{
	"title",
	"institution",
	"source",
	"Conventions",
}

// RecommendedGlobalAttrs are the ACDD attributes the recommendation tool
// suggests ("a tool was implemented that provides recommendations for
// metadata attributes that can be added to datasets exposed through the
// DAP to facilitate discovery").
var RecommendedGlobalAttrs = []string{
	"summary",
	"keywords",
	"license",
	"creator_name",
	"time_coverage_start",
	"time_coverage_end",
	"geospatial_lat_min",
	"geospatial_lat_max",
	"geospatial_lon_min",
	"geospatial_lon_max",
}

// RequiredVarAttrs must be present on every data (non-coordinate)
// variable.
var RequiredVarAttrs = []string{"units", "long_name"}

// Severity grades a finding.
type Severity string

// Severities.
const (
	SeverityError   Severity = "ERROR"
	SeverityWarning Severity = "WARNING"
	SeverityInfo    Severity = "INFO"
)

// Finding is one validation result.
type Finding struct {
	Severity Severity
	// Subject is "global" or the variable name.
	Subject string
	// Attribute is the attribute concerned.
	Attribute string
	Message   string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s.%s: %s", f.Severity, f.Subject, f.Attribute, f.Message)
}

// Report is the outcome of a validation run.
type Report struct {
	Dataset  string
	Findings []Finding
}

// Compliant reports whether the dataset passed without errors.
func (r *Report) Compliant() bool {
	for _, f := range r.Findings {
		if f.Severity == SeverityError {
			return false
		}
	}
	return true
}

// Completeness returns the fraction of required+recommended attributes
// present (the paper's "completeness of metadata can be checked globally
// ... or at an individual dataset level").
func (r *Report) Completeness() float64 {
	total := len(RequiredGlobalAttrs) + len(RecommendedGlobalAttrs)
	missing := 0
	for _, f := range r.Findings {
		if f.Subject == "global" && (f.Severity == SeverityError || f.Severity == SeverityWarning) {
			missing++
		}
	}
	if missing > total {
		missing = total
	}
	return float64(total-missing) / float64(total)
}

// Validate checks a dataset against the DRS profile.
func Validate(d *netcdf.Dataset) *Report {
	r := &Report{Dataset: d.Name}
	for _, a := range RequiredGlobalAttrs {
		if strings.TrimSpace(d.Attrs[a]) == "" {
			r.Findings = append(r.Findings, Finding{
				Severity: SeverityError, Subject: "global", Attribute: a,
				Message: "required global attribute missing",
			})
		}
	}
	for _, a := range RecommendedGlobalAttrs {
		if strings.TrimSpace(d.Attrs[a]) == "" {
			r.Findings = append(r.Findings, Finding{
				Severity: SeverityWarning, Subject: "global", Attribute: a,
				Message: "recommended (ACDD) attribute missing",
			})
		}
	}
	coord := map[string]bool{}
	for _, dim := range d.Dims {
		coord[dim.Name] = true
	}
	for _, v := range d.Vars {
		if coord[v.Name] {
			// Coordinate variables need units only.
			if strings.TrimSpace(v.Attrs["units"]) == "" {
				r.Findings = append(r.Findings, Finding{
					Severity: SeverityWarning, Subject: v.Name, Attribute: "units",
					Message: "coordinate variable lacks units",
				})
			}
			continue
		}
		for _, a := range RequiredVarAttrs {
			if strings.TrimSpace(v.Attrs[a]) == "" {
				r.Findings = append(r.Findings, Finding{
					Severity: SeverityError, Subject: v.Name, Attribute: a,
					Message: "required variable attribute missing",
				})
			}
		}
	}
	// Structural checks: a time dimension should come with a decodable
	// time coordinate.
	if _, ok := d.Dim("time"); ok {
		if _, err := d.TimeValues(); err != nil {
			r.Findings = append(r.Findings, Finding{
				Severity: SeverityError, Subject: "time", Attribute: "units",
				Message: fmt.Sprintf("time coordinate undecodable: %v", err),
			})
		}
	}
	sort.Slice(r.Findings, func(i, j int) bool {
		if r.Findings[i].Subject != r.Findings[j].Subject {
			return r.Findings[i].Subject < r.Findings[j].Subject
		}
		return r.Findings[i].Attribute < r.Findings[j].Attribute
	})
	return r
}

// Recommend returns the attribute names that, if added, would raise the
// dataset's completeness.
func Recommend(d *netcdf.Dataset) []string {
	var out []string
	for _, a := range append(append([]string{}, RequiredGlobalAttrs...), RecommendedGlobalAttrs...) {
		if strings.TrimSpace(d.Attrs[a]) == "" {
			out = append(out, a)
		}
	}
	return out
}

// Augment applies post-hoc metadata ("in case metadata at the source
// cannot be made compliant with ACDD, the CMS will allow for post-hoc
// augmentation using NcML blending metadata provided by the source and
// those required as-per the DRS validator"): attrs are merged into the
// dataset without overwriting source-provided values, and the augmented
// NcML-ready dataset is returned as a copy.
func Augment(d *netcdf.Dataset, attrs map[string]string) *netcdf.Dataset {
	out := netcdf.NewDataset(d.Name)
	out.Dims = append(out.Dims, d.Dims...)
	out.Vars = d.Vars
	for k, v := range d.Attrs {
		out.Attrs[k] = v
	}
	for k, v := range attrs {
		if strings.TrimSpace(out.Attrs[k]) == "" {
			out.Attrs[k] = v
		}
	}
	return out
}

// AutoAugment derives geospatial/temporal ACDD attributes from the data
// itself (extent from lat/lon coordinates, coverage from the time axis).
func AutoAugment(d *netcdf.Dataset) *netcdf.Dataset {
	attrs := map[string]string{}
	if lat, ok := d.Var("lat"); ok && len(lat.Data) > 0 {
		mn, mx := minMax(lat.Data)
		attrs["geospatial_lat_min"] = fmt.Sprintf("%g", mn)
		attrs["geospatial_lat_max"] = fmt.Sprintf("%g", mx)
	}
	if lon, ok := d.Var("lon"); ok && len(lon.Data) > 0 {
		mn, mx := minMax(lon.Data)
		attrs["geospatial_lon_min"] = fmt.Sprintf("%g", mn)
		attrs["geospatial_lon_max"] = fmt.Sprintf("%g", mx)
	}
	if times, err := d.TimeValues(); err == nil && len(times) > 0 {
		attrs["time_coverage_start"] = times[0].Format("2006-01-02T15:04:05Z")
		attrs["time_coverage_end"] = times[len(times)-1].Format("2006-01-02T15:04:05Z")
	}
	return Augment(d, attrs)
}

func minMax(vals []float64) (mn, mx float64) {
	mn, mx = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}
