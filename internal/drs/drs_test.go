package drs

import (
	"strings"
	"testing"

	"applab/internal/netcdf"
	"applab/internal/workload"
)

func TestValidateCompliantDataset(t *testing.T) {
	ds := workload.LAIGrid(workload.DefaultLAIOptions())
	// The generator sets title/Conventions/institution/source and variable
	// units/long_name, so only recommended ACDD attrs are missing.
	r := Validate(ds)
	if !r.Compliant() {
		t.Fatalf("generator dataset must be DRS-compliant:\n%v", r.Findings)
	}
	if r.Completeness() == 1 {
		t.Error("completeness should be < 1 while ACDD attrs are missing")
	}
	for _, f := range r.Findings {
		if f.Severity == SeverityError {
			t.Errorf("unexpected error: %v", f)
		}
	}
}

func TestValidateFindsMissing(t *testing.T) {
	ds := netcdf.NewDataset("bare")
	ds.AddDim("lat", 2)
	if err := ds.AddVar(&netcdf.Variable{Name: "NDVI", Dims: []string{"lat"}, Data: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	r := Validate(ds)
	if r.Compliant() {
		t.Fatal("bare dataset must fail validation")
	}
	subjects := map[string]int{}
	for _, f := range r.Findings {
		subjects[f.Subject]++
	}
	if subjects["global"] < len(RequiredGlobalAttrs) {
		t.Errorf("global findings = %d", subjects["global"])
	}
	if subjects["NDVI"] != 2 { // units + long_name
		t.Errorf("NDVI findings = %d", subjects["NDVI"])
	}
}

func TestValidateBadTimeAxis(t *testing.T) {
	ds := netcdf.NewDataset("badtime")
	for _, a := range RequiredGlobalAttrs {
		ds.Attrs[a] = "x"
	}
	ds.AddDim("time", 2)
	ds.AddVar(&netcdf.Variable{Name: "time", Dims: []string{"time"}, Data: []float64{0, 1},
		Attrs: map[string]string{"units": "fortnights since whenever"}})
	r := Validate(ds)
	found := false
	for _, f := range r.Findings {
		if f.Subject == "time" && f.Severity == SeverityError {
			found = true
		}
	}
	if !found {
		t.Errorf("undecodable time axis must be an error:\n%v", r.Findings)
	}
}

func TestRecommend(t *testing.T) {
	ds := netcdf.NewDataset("x")
	recs := Recommend(ds)
	if len(recs) != len(RequiredGlobalAttrs)+len(RecommendedGlobalAttrs) {
		t.Fatalf("recommendations = %v", recs)
	}
	ds.Attrs["title"] = "T"
	recs = Recommend(ds)
	for _, a := range recs {
		if a == "title" {
			t.Error("present attribute must not be recommended")
		}
	}
}

func TestAugmentDoesNotOverwrite(t *testing.T) {
	ds := netcdf.NewDataset("x")
	ds.Attrs["title"] = "original"
	out := Augment(ds, map[string]string{"title": "replacement", "summary": "added"})
	if out.Attrs["title"] != "original" {
		t.Error("augment must not overwrite source metadata")
	}
	if out.Attrs["summary"] != "added" {
		t.Error("augment must add missing metadata")
	}
	if _, ok := ds.Attrs["summary"]; ok {
		t.Error("augment must not mutate the source dataset")
	}
}

func TestAutoAugment(t *testing.T) {
	ds := workload.LAIGrid(workload.DefaultLAIOptions())
	out := AutoAugment(ds)
	for _, a := range []string{"geospatial_lat_min", "geospatial_lat_max",
		"geospatial_lon_min", "geospatial_lon_max", "time_coverage_start", "time_coverage_end"} {
		if strings.TrimSpace(out.Attrs[a]) == "" {
			t.Errorf("AutoAugment missing %s", a)
		}
	}
	if out.Attrs["geospatial_lat_min"] != "48.81" {
		t.Errorf("lat_min = %q", out.Attrs["geospatial_lat_min"])
	}
	// Completeness improves.
	before := Validate(ds).Completeness()
	after := Validate(out).Completeness()
	if after <= before {
		t.Errorf("completeness %v -> %v", before, after)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Severity: SeverityError, Subject: "global", Attribute: "title", Message: "missing"}
	if !strings.Contains(f.String(), "ERROR") || !strings.Contains(f.String(), "global.title") {
		t.Errorf("String = %q", f.String())
	}
}
