package drs

import (
	"testing"
	"testing/quick"
)

func TestTranslateAttrsACDDToISO(t *testing.T) {
	attrs := map[string]string{
		"title":              "LAI",
		"institution":        "VITO",
		"geospatial_lat_min": "48.81",
		"custom_attr":        "kept",
	}
	iso, err := TranslateAttrs(attrs, ConventionACDD, ConventionISO19115)
	if err != nil {
		t.Fatal(err)
	}
	if iso["MD_DataIdentification.citation.title"] != "LAI" {
		t.Errorf("title translation: %v", iso)
	}
	if iso["CI_ResponsibleParty.organisationName"] != "VITO" {
		t.Errorf("institution translation: %v", iso)
	}
	if iso["EX_GeographicBoundingBox.southBoundLatitude"] != "48.81" {
		t.Errorf("lat_min translation: %v", iso)
	}
	if iso["custom_attr"] != "kept" {
		t.Errorf("unknown attrs must pass through: %v", iso)
	}
	if _, ok := iso["title"]; ok {
		t.Error("source key must be renamed")
	}
}

func TestTranslateAttrsRoundTrip(t *testing.T) {
	attrs := map[string]string{}
	for _, k := range MappedAttrs() {
		attrs[k] = "v-" + k
	}
	for _, via := range []Convention{ConventionISO19115, ConventionDRS} {
		fwd, err := TranslateAttrs(attrs, ConventionACDD, via)
		if err != nil {
			t.Fatal(err)
		}
		back, err := TranslateAttrs(fwd, via, ConventionACDD)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != len(attrs) {
			t.Fatalf("via %s: %d attrs -> %d", via, len(attrs), len(back))
		}
		for k, v := range attrs {
			if back[k] != v {
				t.Errorf("via %s: %s = %q, want %q", via, k, back[k], v)
			}
		}
	}
}

func TestTranslateAttrsISOToDRS(t *testing.T) {
	iso := map[string]string{"MD_DataIdentification.abstract": "10-daily LAI composites"}
	drsAttrs, err := TranslateAttrs(iso, ConventionISO19115, ConventionDRS)
	if err != nil {
		t.Fatal(err)
	}
	if drsAttrs["drs_description"] != "10-daily LAI composites" {
		t.Errorf("cross translation: %v", drsAttrs)
	}
}

func TestTranslateAttrsErrors(t *testing.T) {
	if _, err := TranslateAttrs(nil, "NOPE", ConventionACDD); err == nil {
		t.Error("unknown source convention must error")
	}
	if _, err := TranslateAttrs(nil, ConventionACDD, "NOPE"); err == nil {
		t.Error("unknown target convention must error")
	}
}

func TestIdentityTranslation(t *testing.T) {
	attrs := map[string]string{"title": "x", "weird": "y"}
	same, err := TranslateAttrs(attrs, ConventionACDD, ConventionACDD)
	if err != nil {
		t.Fatal(err)
	}
	if len(same) != 2 || same["title"] != "x" || same["weird"] != "y" {
		t.Errorf("identity translation = %v", same)
	}
}

// Property: translation never loses or invents attributes, and mapped
// keys always round-trip.
func TestTranslationProperty(t *testing.T) {
	convs := Conventions()
	f := func(keys []string, fromIdx, toIdx uint8) bool {
		from := convs[int(fromIdx)%len(convs)]
		to := convs[int(toIdx)%len(convs)]
		attrs := map[string]string{}
		for i, k := range keys {
			if k == "" {
				continue
			}
			attrs[k] = "v"
			if i%2 == 0 && i/2 < len(MappedAttrs()) {
				attrs[MappedAttrs()[i/2]] = "m"
			}
		}
		out, err := TranslateAttrs(attrs, from, to)
		if err != nil {
			return false
		}
		return len(out) == len(attrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
