package drs

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"

	"applab/internal/netcdf"
)

// CMS is the metadata content-management service of the paper's §3.1: "a
// Content Management System (CMS) was developed and published as a service
// allowing the CSPs to manage the metadata of their datasets, which allows
// them to mutate as and when they choose to expose them through the DAP".
//
// It holds post-hoc metadata overlays per dataset (never overwriting
// source attributes — the Augment semantics) and serves:
//
//	GET    /metadata/<name>   effective attributes (source + overlay) JSON
//	PUT    /metadata/<name>   merge a JSON object into the overlay
//	DELETE /metadata/<name>   drop the overlay
//	GET    /validate/<name>   DRS validation report (after overlay) JSON
//
// DatasetProvider decouples the CMS from the OPeNDAP server type;
// opendap.Server satisfies it.
type CMS struct {
	provider DatasetProvider

	mu       sync.RWMutex
	overlays map[string]map[string]string
}

// DatasetProvider resolves dataset names to datasets.
type DatasetProvider interface {
	Dataset(name string) (*netcdf.Dataset, bool)
}

// NewCMS returns a CMS over the provider.
func NewCMS(provider DatasetProvider) *CMS {
	return &CMS{provider: provider, overlays: map[string]map[string]string{}}
}

// SetOverlay merges attributes into a dataset's overlay.
func (c *CMS) SetOverlay(name string, attrs map[string]string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ov := c.overlays[name]
	if ov == nil {
		ov = map[string]string{}
		c.overlays[name] = ov
	}
	for k, v := range attrs {
		ov[k] = v
	}
}

// Effective returns the dataset with the overlay applied (source
// attributes win, per the post-hoc augmentation rule).
func (c *CMS) Effective(name string) (*netcdf.Dataset, bool) {
	ds, ok := c.provider.Dataset(name)
	if !ok {
		return nil, false
	}
	c.mu.RLock()
	ov := c.overlays[name]
	c.mu.RUnlock()
	if len(ov) == 0 {
		return ds, true
	}
	return Augment(ds, ov), true
}

// ServeHTTP implements http.Handler.
func (c *CMS) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case strings.HasPrefix(r.URL.Path, "/metadata/"):
		name := strings.TrimPrefix(r.URL.Path, "/metadata/")
		switch r.Method {
		case http.MethodGet:
			ds, ok := c.Effective(name)
			if !ok {
				http.Error(w, "cms: no dataset "+name, http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			writeJSON(w, ds.Attrs)
		case http.MethodPut, http.MethodPost:
			if _, ok := c.provider.Dataset(name); !ok {
				http.Error(w, "cms: no dataset "+name, http.StatusNotFound)
				return
			}
			var attrs map[string]string
			if err := json.NewDecoder(r.Body).Decode(&attrs); err != nil {
				http.Error(w, "cms: bad JSON body: "+err.Error(), http.StatusBadRequest)
				return
			}
			c.SetOverlay(name, attrs)
			w.WriteHeader(http.StatusNoContent)
		case http.MethodDelete:
			c.mu.Lock()
			delete(c.overlays, name)
			c.mu.Unlock()
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "cms: method not allowed", http.StatusMethodNotAllowed)
		}
	case strings.HasPrefix(r.URL.Path, "/validate/"):
		name := strings.TrimPrefix(r.URL.Path, "/validate/")
		ds, ok := c.Effective(name)
		if !ok {
			http.Error(w, "cms: no dataset "+name, http.StatusNotFound)
			return
		}
		report := Validate(ds)
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, map[string]any{
			"dataset":      report.Dataset,
			"compliant":    report.Compliant(),
			"completeness": report.Completeness(),
			"findings":     findingStrings(report.Findings),
			"recommend":    Recommend(ds),
		})
	default:
		http.Error(w, "cms: unknown route", http.StatusNotFound)
	}
}

// writeJSON writes a JSON response body best-effort: a vanished
// client is not a server error, so the Encode result is deliberately
// discarded.
func writeJSON(w http.ResponseWriter, v any) {
	_ = json.NewEncoder(w).Encode(v)
}

func findingStrings(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	return out
}
