package admission

import "applab/internal/telemetry"

// ctrlMetrics is the Controller's instrument family. Outcome counters
// partition terminal verdicts — every Acquire ends admitted, shed or
// evicted exactly once (requests admitted from the queue count in both
// queued and admitted), so admitted+shed+evicted equals the requests
// seen.
type ctrlMetrics struct {
	admitted, queued, shed, evicted *telemetry.Counter
	depth, inflight                 *telemetry.Gauge
	waitSeconds                     *telemetry.Histogram
}

func newCtrlMetrics(reg *telemetry.Registry) *ctrlMetrics {
	return &ctrlMetrics{
		admitted:    reg.Counter("admission_admitted_total"),
		queued:      reg.Counter("admission_queued_total"),
		shed:        reg.Counter("admission_shed_total"),
		evicted:     reg.Counter("admission_evicted_total"),
		depth:       reg.Gauge("admission_queue_depth"),
		inflight:    reg.Gauge("admission_inflight"),
		waitSeconds: reg.Histogram("admission_queue_wait_seconds", nil),
	}
}

// noteBudgetExceeded counts first-violation budget failures by kind.
func noteBudgetExceeded(reg *telemetry.Registry, kind Kind) {
	reg.Counter("admission_budget_exceeded_total", "kind", string(kind)).Inc()
}
