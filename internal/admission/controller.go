package admission

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"applab/internal/telemetry"
)

// Overload is returned by Acquire when a request is shed at the door
// (queue full) or evicted after waiting past the queue deadline.
// RetryAfter is the hint clients should wait before retrying; the
// endpoint turns it into a Retry-After header.
type Overload struct {
	Evicted    bool
	RetryAfter time.Duration
}

func (e *Overload) Error() string {
	if e.Evicted {
		return fmt.Sprintf("admission: overloaded: evicted from queue (retry after %s)", e.RetryAfter)
	}
	return fmt.Sprintf("admission: overloaded: queue full (retry after %s)", e.RetryAfter)
}

// RetryAfterSeconds renders the hint for the Retry-After header: whole
// seconds, rounded up, at least 1.
func (e *Overload) RetryAfterSeconds() int {
	s := int(math.Ceil(e.RetryAfter.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// AsOverload unwraps err to an *Overload when it is one.
func AsOverload(err error) (*Overload, bool) {
	ov, ok := err.(*Overload)
	return ov, ok
}

// Controller bounds concurrent request evaluation. Up to MaxInflight
// requests run at once; the next MaxQueue wait in FIFO order; everyone
// else is shed immediately. A queued request that waits longer than
// QueueTimeout is evicted (CoDel-style: by its own timer while waiting,
// and again at hand-off time, so a stale head-of-line request is never
// served past its useful deadline). Configure before first use; the
// zero hooks use real time.
type Controller struct {
	// MaxInflight is the concurrent-evaluation cap (required, > 0).
	MaxInflight int
	// MaxQueue is the FIFO wait-queue capacity; 0 means shed immediately
	// when all slots are busy.
	MaxQueue int
	// QueueTimeout evicts requests that waited this long; 0 waits forever.
	QueueTimeout time.Duration
	// Now/After are the clock hooks (time.Now/time.After when nil).
	Now   func() time.Time
	After func(time.Duration) <-chan time.Time
	// Metrics receives the admission counter family; nil disables.
	Metrics *telemetry.Registry

	initOnce sync.Once
	met      *ctrlMetrics

	mu       sync.Mutex
	inflight int
	queue    []*waiter
}

// waiter is one queued Acquire call. admit is buffered so release and
// eviction never block handing over the verdict.
type waiter struct {
	admit    chan error
	enqueued time.Time
}

func (c *Controller) init() {
	c.initOnce.Do(func() {
		c.met = newCtrlMetrics(c.Metrics)
	})
}

func (c *Controller) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

func (c *Controller) afterFn(d time.Duration) <-chan time.Time {
	if c.After != nil {
		return c.After(d)
	}
	return time.After(d)
}

// retryAfter is the deterministic client back-off hint: one queue
// deadline (the earliest a freshly-shed client could plausibly be
// admitted), or one second when queueing is unbounded.
func (c *Controller) retryAfter() time.Duration {
	if c.QueueTimeout > 0 {
		return c.QueueTimeout
	}
	return time.Second
}

// Stats reports the instantaneous controller state.
func (c *Controller) Stats() (inflight, queued int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflight, len(c.queue)
}

// Acquire admits the caller, queues it, or rejects it with *Overload.
// On success the returned release function must be called exactly when
// the request finishes; it hands the slot to the queue head. A
// cancelled ctx abandons the wait (counted as an eviction, since the
// request left the queue unserved).
func (c *Controller) Acquire(ctx context.Context) (func(), error) {
	c.init()
	c.mu.Lock()
	if c.inflight < c.MaxInflight {
		c.inflight++
		c.met.admitted.Inc()
		c.met.inflight.Set(float64(c.inflight))
		c.mu.Unlock()
		return c.releaseFunc(), nil
	}
	if len(c.queue) >= c.MaxQueue {
		c.met.shed.Inc()
		c.mu.Unlock()
		return nil, &Overload{RetryAfter: c.retryAfter()}
	}
	w := &waiter{admit: make(chan error, 1), enqueued: c.now()}
	c.queue = append(c.queue, w)
	c.met.queued.Inc()
	c.met.depth.Set(float64(len(c.queue)))
	c.mu.Unlock()

	var expire <-chan time.Time
	if c.QueueTimeout > 0 {
		expire = c.afterFn(c.QueueTimeout)
	}
	select {
	case err := <-w.admit:
		if err != nil {
			return nil, err
		}
		return c.releaseFunc(), nil
	case <-expire:
		if c.evict(w) {
			return nil, &Overload{Evicted: true, RetryAfter: c.retryAfter()}
		}
		// Lost the race against release: the slot is already ours.
		if err := <-w.admit; err != nil {
			return nil, err
		}
		return c.releaseFunc(), nil
	case <-ctx.Done():
		if c.evict(w) {
			return nil, ctx.Err()
		}
		if err := <-w.admit; err != nil {
			return nil, err
		}
		return c.releaseFunc(), nil
	}
}

// evict removes w from the queue; false means release already dequeued
// it (its verdict is in w.admit).
func (c *Controller) evict(w *waiter) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, q := range c.queue {
		if q == w {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			c.met.evicted.Inc()
			c.met.depth.Set(float64(len(c.queue)))
			return true
		}
	}
	return false
}

// releaseFunc wraps release so double-calls are harmless.
func (c *Controller) releaseFunc() func() {
	var once sync.Once
	return func() { once.Do(c.release) }
}

// release hands the slot to the queue head, skipping (and evicting)
// heads that already waited past the queue deadline.
func (c *Controller) release() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.queue) > 0 {
		w := c.queue[0]
		c.queue = c.queue[1:]
		c.met.depth.Set(float64(len(c.queue)))
		wait := c.now().Sub(w.enqueued)
		if c.QueueTimeout > 0 && wait > c.QueueTimeout {
			c.met.evicted.Inc()
			//lint:ignore lockio reason: admit is buffered (cap 1) and each waiter gets exactly one verdict, so the send never blocks
			w.admit <- &Overload{Evicted: true, RetryAfter: c.retryAfter()}
			continue
		}
		c.met.waitSeconds.Observe(wait.Seconds())
		c.met.admitted.Inc()
		//lint:ignore lockio reason: admit is buffered (cap 1) and each waiter gets exactly one verdict, so the send never blocks
		w.admit <- nil
		return
	}
	c.inflight--
	c.met.inflight.Set(float64(c.inflight))
}

// Middleware wraps next with admission control: rejected requests get
// 503 + Retry-After without reaching next. Used by cmd/opendapd to put
// the DAP server behind the same controller as the SPARQL endpoint.
func (c *Controller) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		release, err := c.Acquire(r.Context())
		if err != nil {
			RejectHTTP(w, err)
			return
		}
		defer release()
		next.ServeHTTP(w, r)
	})
}

// RejectHTTP writes the plain-text 503 for an Acquire error, with the
// Retry-After header when the error carries a hint.
func RejectHTTP(w http.ResponseWriter, err error) {
	if ov, ok := AsOverload(err); ok {
		w.Header().Set("Retry-After", strconv.Itoa(ov.RetryAfterSeconds()))
	}
	http.Error(w, err.Error(), http.StatusServiceUnavailable)
}
