package admission_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"applab/internal/admission"
	"applab/internal/faults"
	"applab/internal/telemetry"
)

// newTestController wires a controller to a fake clock and a registry
// so every timeout and counter is exact with zero real sleeps.
func newTestController(clk *faults.Clock, maxInflight, maxQueue int, queueTimeout time.Duration) (*admission.Controller, *telemetry.Registry) {
	reg := telemetry.NewRegistry()
	c := &admission.Controller{
		MaxInflight:  maxInflight,
		MaxQueue:     maxQueue,
		QueueTimeout: queueTimeout,
		Now:          clk.Now,
		After:        clk.After,
		Metrics:      reg,
	}
	return c, reg
}

func counterValue(t *testing.T, reg *telemetry.Registry, name string) int64 {
	t.Helper()
	return reg.Counter(name).Value()
}

// TestControllerMatrix drives the admit/queue/shed/evict transitions
// through a table of deterministic scenarios.
func TestControllerMatrix(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, clk *faults.Clock, c *admission.Controller, reg *telemetry.Registry)
	}{
		{
			name: "admit_below_cap",
			run: func(t *testing.T, clk *faults.Clock, c *admission.Controller, reg *telemetry.Registry) {
				var releases []func()
				for i := 0; i < 2; i++ {
					rel, err := c.Acquire(context.Background())
					if err != nil {
						t.Fatalf("Acquire %d: %v", i, err)
					}
					releases = append(releases, rel)
				}
				if in, q := c.Stats(); in != 2 || q != 0 {
					t.Fatalf("Stats = (%d, %d), want (2, 0)", in, q)
				}
				for _, rel := range releases {
					rel()
				}
				if in, _ := c.Stats(); in != 0 {
					t.Fatalf("inflight after release = %d, want 0", in)
				}
				if got := counterValue(t, reg, "admission_admitted_total"); got != 2 {
					t.Fatalf("admitted = %d, want 2", got)
				}
			},
		},
		{
			name: "shed_when_queue_full",
			run: func(t *testing.T, clk *faults.Clock, c *admission.Controller, reg *telemetry.Registry) {
				// Fill both inflight slots.
				rel1, err := c.Acquire(context.Background())
				if err != nil {
					t.Fatalf("Acquire slot 1: %v", err)
				}
				defer rel1()
				rel2, err := c.Acquire(context.Background())
				if err != nil {
					t.Fatalf("Acquire slot 2: %v", err)
				}
				defer rel2()
				// Fill the single queue slot with a background waiter.
				queued := make(chan error, 1)
				go func() {
					rel, err := c.Acquire(context.Background())
					if err == nil {
						defer rel()
					}
					queued <- err
				}()
				waitForQueued(t, c, 1)
				// Queue full: next Acquire sheds immediately.
				_, err = c.Acquire(context.Background())
				ov, ok := admission.AsOverload(err)
				if !ok {
					t.Fatalf("Acquire = %v, want *admission.Overload", err)
				}
				if ov.Evicted {
					t.Fatal("door shed reported Evicted = true")
				}
				if ov.RetryAfter != c.QueueTimeout {
					t.Fatalf("RetryAfter = %s, want %s", ov.RetryAfter, c.QueueTimeout)
				}
				if got := counterValue(t, reg, "admission_shed_total"); got != 1 {
					t.Fatalf("shed = %d, want 1", got)
				}
				// Release a slot so the queued waiter is admitted.
				rel1()
				if err := <-queued; err != nil {
					t.Fatalf("queued waiter: %v", err)
				}
			},
		},
		{
			name: "evict_after_queue_timeout",
			run: func(t *testing.T, clk *faults.Clock, c *admission.Controller, reg *telemetry.Registry) {
				rel1, err := c.Acquire(context.Background())
				if err != nil {
					t.Fatalf("Acquire slot 1: %v", err)
				}
				defer rel1()
				rel2, err := c.Acquire(context.Background())
				if err != nil {
					t.Fatalf("Acquire slot 2: %v", err)
				}
				defer rel2()
				verdict := make(chan error, 1)
				go func() {
					_, err := c.Acquire(context.Background())
					verdict <- err
				}()
				waitForQueued(t, c, 1)
				clk.AwaitTimers(1) // the waiter's eviction timer is armed
				clk.Advance(c.QueueTimeout + time.Millisecond)
				err = <-verdict
				ov, ok := admission.AsOverload(err)
				if !ok {
					t.Fatalf("queued Acquire = %v, want *admission.Overload", err)
				}
				if !ov.Evicted {
					t.Fatal("timed-out waiter not marked Evicted")
				}
				if ov.RetryAfterSeconds() != int(c.QueueTimeout/time.Second) {
					t.Fatalf("RetryAfterSeconds = %d, want %d", ov.RetryAfterSeconds(), int(c.QueueTimeout/time.Second))
				}
				if got := counterValue(t, reg, "admission_evicted_total"); got != 1 {
					t.Fatalf("evicted = %d, want 1", got)
				}
				if _, q := c.Stats(); q != 0 {
					t.Fatalf("queued after eviction = %d, want 0", q)
				}
			},
		},
		{
			name: "stale_head_evicted_at_release",
			run: func(t *testing.T, clk *faults.Clock, c *admission.Controller, reg *telemetry.Registry) {
				// Controller with no per-waiter timers: QueueTimeout is
				// checked only at hand-off, exercising the CoDel-style
				// release-time eviction in isolation.
				c.After = func(time.Duration) <-chan time.Time { return nil }
				rel1, err := c.Acquire(context.Background())
				if err != nil {
					t.Fatalf("Acquire slot 1: %v", err)
				}
				rel2, err := c.Acquire(context.Background())
				if err != nil {
					t.Fatalf("Acquire slot 2: %v", err)
				}
				defer rel2()
				verdict := make(chan error, 1)
				go func() {
					_, err := c.Acquire(context.Background())
					verdict <- err
				}()
				waitForQueued(t, c, 1)
				// Let the head go stale, then release: the head must be
				// evicted rather than served past its deadline.
				clk.Advance(c.QueueTimeout + time.Millisecond)
				rel1()
				err = <-verdict
				ov, ok := admission.AsOverload(err)
				if !ok || !ov.Evicted {
					t.Fatalf("stale head got %v, want evicted *admission.Overload", err)
				}
				// The freed slot went back to the pool.
				if in, _ := c.Stats(); in != 1 {
					t.Fatalf("inflight = %d, want 1", in)
				}
			},
		},
		{
			name: "context_cancel_abandons_wait",
			run: func(t *testing.T, clk *faults.Clock, c *admission.Controller, reg *telemetry.Registry) {
				rel1, err := c.Acquire(context.Background())
				if err != nil {
					t.Fatalf("Acquire slot 1: %v", err)
				}
				defer rel1()
				rel2, err := c.Acquire(context.Background())
				if err != nil {
					t.Fatalf("Acquire slot 2: %v", err)
				}
				defer rel2()
				ctx, cancel := context.WithCancel(context.Background())
				verdict := make(chan error, 1)
				go func() {
					_, err := c.Acquire(ctx)
					verdict <- err
				}()
				waitForQueued(t, c, 1)
				cancel()
				if err := <-verdict; err != context.Canceled {
					t.Fatalf("cancelled Acquire = %v, want context.Canceled", err)
				}
				if got := counterValue(t, reg, "admission_evicted_total"); got != 1 {
					t.Fatalf("evicted = %d, want 1", got)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := faults.NewClock(time.Unix(0, 0))
			c, reg := newTestController(clk, 2, 1, 2*time.Second)
			tc.run(t, clk, c, reg)
		})
	}
}

// waitForQueued spins until the controller reports n queued waiters.
// The wait is for goroutine scheduling only — no fake-clock time passes.
func waitForQueued(t *testing.T, c *admission.Controller, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, q := c.Stats(); q >= n {
			return
		}
		if time.Now().After(deadline) {
			_, q := c.Stats()
			t.Fatalf("queued = %d, want >= %d", q, n)
		}
	}
}

// TestControllerFIFODrain checks that queued waiters are admitted in
// arrival order as slots free up.
func TestControllerFIFODrain(t *testing.T) {
	clk := faults.NewClock(time.Unix(0, 0))
	c, _ := newTestController(clk, 1, 4, 0) // no queue deadline
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}

	const waiters = 4
	order := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		// Enqueue strictly one at a time so queue order equals index order.
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rel, err := c.Acquire(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			rel()
		}(i)
		waitForQueued(t, c, i+1)
	}

	rel() // hand the slot to the head; each waiter chains to the next
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("admission order: got waiter %d, want %d", got, want)
		}
		want++
	}
}

// TestControllerBurstProperty is the ISSUE acceptance property: with
// MaxInflight=4, MaxQueue=8, a 100-request burst admits exactly 4
// concurrently, queues at most 8, sheds the rest with Retry-After, and
// the admitted+queued+shed counters sum to 100.
func TestControllerBurstProperty(t *testing.T) {
	clk := faults.NewClock(time.Unix(0, 0))
	c, reg := newTestController(clk, 4, 8, 30*time.Second)

	const burst = 100
	var (
		mu        sync.Mutex
		maxActive int
		active    int
		admitted  int
		shed      int
	)
	gate := make(chan struct{}) // holds admitted requests "evaluating"
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := c.Acquire(context.Background())
			if err != nil {
				ov, ok := admission.AsOverload(err)
				if !ok {
					t.Errorf("Acquire: %v, want *admission.Overload", err)
					return
				}
				if ov.RetryAfterSeconds() != 30 {
					t.Errorf("RetryAfterSeconds = %d, want 30", ov.RetryAfterSeconds())
				}
				mu.Lock()
				shed++
				mu.Unlock()
				return
			}
			mu.Lock()
			active++
			if active > maxActive {
				maxActive = active
			}
			admitted++
			mu.Unlock()
			<-gate
			mu.Lock()
			active--
			mu.Unlock()
			rel()
		}()
	}

	// Wait until the burst has fully sorted itself: 4 running, 8 queued,
	// 88 shed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		s := shed
		mu.Unlock()
		in, q := c.Stats()
		if in == 4 && q == 8 && s == burst-4-8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("burst never settled: inflight=%d queued=%d shed=%d", in, q, s)
		}
	}
	close(gate) // finish evaluations; queued requests drain through
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if maxActive != 4 {
		t.Errorf("max concurrent evaluations = %d, want exactly 4", maxActive)
	}
	if admitted != 12 { // 4 immediate + 8 drained from the queue
		t.Errorf("admitted requests = %d, want 12", admitted)
	}
	if shed != 88 {
		t.Errorf("shed requests = %d, want 88", shed)
	}
	adm := counterValue(t, reg, "admission_admitted_total")
	qd := counterValue(t, reg, "admission_queued_total")
	sh := counterValue(t, reg, "admission_shed_total")
	ev := counterValue(t, reg, "admission_evicted_total")
	// Every request is admitted directly, or queued; queued ones are
	// later admitted or evicted. Direct admissions = total admitted -
	// queued-then-admitted, so direct + queued + shed must cover all 100.
	direct := adm - (qd - ev)
	if direct+qd+sh != burst {
		t.Errorf("counters: admitted=%d queued=%d shed=%d evicted=%d; direct(%d)+queued(%d)+shed(%d) = %d, want %d",
			adm, qd, sh, ev, direct, qd, sh, direct+qd+sh, burst)
	}
	if ev != 0 {
		t.Errorf("evicted = %d, want 0 (queue drained before any deadline)", ev)
	}
}

// TestRetryAfterSeconds pins the header math.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{300 * time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2},
		{30 * time.Second, 30},
	}
	for _, tc := range cases {
		ov := &admission.Overload{RetryAfter: tc.d}
		if got := ov.RetryAfterSeconds(); got != tc.want {
			t.Errorf("RetryAfterSeconds(%s) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestMiddleware checks the HTTP wrapper: pass-through under the cap,
// 503 + Retry-After beyond it.
func TestMiddleware(t *testing.T) {
	clk := faults.NewClock(time.Unix(0, 0))
	c, _ := newTestController(clk, 1, 0, 5*time.Second)
	block := make(chan struct{})
	h := c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
		w.WriteHeader(http.StatusOK)
	}))

	first := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
		first <- rec
	}()
	// Wait for the first request to hold the slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if in, _ := c.Stats(); in == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first request never acquired the slot")
		}
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("second request status = %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "5" {
		t.Fatalf("Retry-After = %q, want \"5\"", got)
	}

	close(block)
	if rec := <-first; rec.Code != http.StatusOK {
		t.Fatalf("first request status = %d, want 200", rec.Code)
	}
}

// TestOverloadError pins the two message forms.
func TestOverloadError(t *testing.T) {
	shed := &admission.Overload{RetryAfter: 2 * time.Second}
	if want := "admission: overloaded: queue full (retry after 2s)"; shed.Error() != want {
		t.Errorf("shed message = %q, want %q", shed.Error(), want)
	}
	ev := &admission.Overload{Evicted: true, RetryAfter: 2 * time.Second}
	if want := "admission: overloaded: evicted from queue (retry after 2s)"; ev.Error() != want {
		t.Errorf("evicted message = %q, want %q", ev.Error(), want)
	}
	if fmt.Sprintf("%v", error(ev)) != ev.Error() {
		t.Error("admission.Overload does not format as error")
	}
}

// TestControllerRealClockDefaults exercises the zero-hook paths (Now,
// After, and the unbounded-queue Retry-After fallback) without any real
// waiting: the hour-long queue timeout only arms a timer that is never
// allowed to fire.
func TestControllerRealClockDefaults(t *testing.T) {
	c := &admission.Controller{MaxInflight: 1, MaxQueue: 1, QueueTimeout: time.Hour}
	release, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan error, 1)
	go func() {
		r2, err := c.Acquire(context.Background())
		if err == nil {
			defer r2()
		}
		admitted <- err
	}()
	waitForQueued(t, c, 1)
	release()
	if err := <-admitted; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}

	// With no queue timeout at all, the shed hint falls back to 1s.
	c2 := &admission.Controller{MaxInflight: 1, MaxQueue: 0}
	release, err = c2.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if _, err := c2.Acquire(context.Background()); err == nil {
		t.Fatal("want shed")
	} else if ov, ok := admission.AsOverload(err); !ok || ov.RetryAfter != time.Second {
		t.Fatalf("shed error = %v, want 1s Retry-After fallback", err)
	}
}
