// Package admission protects the serving path from upstream overload:
// a bounded-concurrency Controller with a FIFO wait queue and load
// shedding (503 + Retry-After), and per-query Budgets — wall-clock
// deadline, result-row, intermediate-row and federation fan-out caps —
// threaded through plan execution via context.Context. Both halves take
// Now/After hooks so every timeout and Retry-After value is exact under
// faults.Clock.
package admission

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"applab/internal/telemetry"
)

// Limits configures one query's resource budget. Zero fields are
// unlimited; a zero Limits disables budget enforcement entirely.
type Limits struct {
	// Deadline bounds the query's wall-clock evaluation time.
	Deadline time.Duration
	// MaxRows bounds the final result set (bindings or constructed
	// triples), checked after projection.
	MaxRows int
	// MaxIntermediate bounds the intermediate solution rows examined by
	// plan operators, charged at bounded intervals (the engine's check
	// interval), so enforcement is approximate to within one interval.
	MaxIntermediate int
	// MaxFanout bounds how many federation member requests one query may
	// issue in total.
	MaxFanout int
}

// Enabled reports whether any limit is set.
func (l Limits) Enabled() bool {
	return l.Deadline > 0 || l.MaxRows > 0 || l.MaxIntermediate > 0 || l.MaxFanout > 0
}

// Kind names the budget dimension a query exhausted.
type Kind string

const (
	KindDeadline     Kind = "deadline"
	KindRows         Kind = "rows"
	KindIntermediate Kind = "intermediate"
	KindFanout       Kind = "fanout"
)

// BudgetError reports a budget violation. Its message carries only the
// dimension and the configured limit — never the racy observed count —
// so a query aborted mid-join yields an identical error for any worker
// count.
type BudgetError struct {
	Kind  Kind
	Limit int64
}

func (e *BudgetError) Error() string {
	if e.Kind == KindDeadline {
		return fmt.Sprintf("admission: query budget exceeded: %s %s elapsed", e.Kind, time.Duration(e.Limit))
	}
	return fmt.Sprintf("admission: query budget exceeded: %s limit %d", e.Kind, e.Limit)
}

// AsBudgetError unwraps err to a *BudgetError when it is one.
func AsBudgetError(err error) (*BudgetError, bool) {
	var be *BudgetError
	if errors.As(err, &be) {
		return be, true
	}
	return nil, false
}

// Aborted reports whether err should abort a query outright: a budget
// violation or a context cancellation/deadline. Ordinary upstream
// failures (a flaky member, a 500) are not aborts — sources keep the
// seed "errors read as empty" semantics for those.
func Aborted(err error) bool {
	if err == nil {
		return false
	}
	if _, ok := AsBudgetError(err); ok {
		return true
	}
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Budget is one query's resource meter. All methods are safe for
// concurrent use by parallel plan workers and nil-safe, so engine code
// can call them unconditionally. The first violation wins: every later
// check returns the same *BudgetError, which keeps partial-error
// results identical for any worker count.
type Budget struct {
	limits    Limits
	metrics   *telemetry.Registry
	inter     atomic.Int64
	fanout    atomic.Int64
	violation atomic.Pointer[BudgetError]
}

// NewBudget returns a budget enforcing l. reg (optional) receives the
// admission_budget_exceeded_total counter on first violation.
func NewBudget(l Limits, reg *telemetry.Registry) *Budget {
	return &Budget{limits: l, metrics: reg}
}

// Limits returns the configured limits.
func (b *Budget) Limits() Limits {
	if b == nil {
		return Limits{}
	}
	return b.limits
}

// Err returns the recorded violation, if any.
func (b *Budget) Err() error {
	if b == nil {
		return nil
	}
	if be := b.violation.Load(); be != nil {
		return be
	}
	return nil
}

// fail records a violation; the first one sticks.
func (b *Budget) fail(k Kind, limit int64) *BudgetError {
	be := &BudgetError{Kind: k, Limit: limit}
	if b.violation.CompareAndSwap(nil, be) {
		noteBudgetExceeded(b.metrics, k)
		return be
	}
	return b.violation.Load()
}

// AddIntermediate charges n intermediate solution rows and returns the
// violation once the cap is crossed (or an earlier one).
func (b *Budget) AddIntermediate(n int) error {
	if b == nil {
		return nil
	}
	if be := b.violation.Load(); be != nil {
		return be
	}
	if b.limits.MaxIntermediate <= 0 {
		return nil
	}
	if b.inter.Add(int64(n)) > int64(b.limits.MaxIntermediate) {
		return b.fail(KindIntermediate, int64(b.limits.MaxIntermediate))
	}
	return nil
}

// AddFanout charges n federation member requests.
func (b *Budget) AddFanout(n int) error {
	if b == nil {
		return nil
	}
	if be := b.violation.Load(); be != nil {
		return be
	}
	if b.limits.MaxFanout <= 0 {
		return nil
	}
	if b.fanout.Add(int64(n)) > int64(b.limits.MaxFanout) {
		return b.fail(KindFanout, int64(b.limits.MaxFanout))
	}
	return nil
}

// CheckRows validates the final result-row count against MaxRows.
func (b *Budget) CheckRows(n int) error {
	if b == nil {
		return nil
	}
	if be := b.violation.Load(); be != nil {
		return be
	}
	if b.limits.MaxRows <= 0 {
		return nil
	}
	if n > b.limits.MaxRows {
		return b.fail(KindRows, int64(b.limits.MaxRows))
	}
	return nil
}

// ExpireDeadline records the deadline violation directly. The deadline
// watcher started by StartDeadline uses it; tests can too.
func (b *Budget) ExpireDeadline() {
	if b == nil || b.limits.Deadline <= 0 {
		return
	}
	b.fail(KindDeadline, int64(b.limits.Deadline))
}

// StartDeadline arms the wall-clock deadline: when it fires the budget
// records a deadline violation and the returned context is cancelled,
// so both tick checks and blocking I/O observe it. after defaults to
// time.After; pass a faults.Clock's After for deterministic tests. The
// returned stop function releases the watcher and must be called.
func (b *Budget) StartDeadline(ctx context.Context, after func(time.Duration) <-chan time.Time) (context.Context, context.CancelFunc) {
	if b == nil || b.limits.Deadline <= 0 {
		return ctx, func() {}
	}
	if after == nil {
		after = time.After
	}
	ctx, cancel := context.WithCancel(ctx)
	timer := after(b.limits.Deadline)
	stopped := make(chan struct{})
	go func() {
		select {
		case <-timer:
			b.ExpireDeadline()
			cancel()
		case <-stopped:
		}
	}()
	var once sync.Once
	return ctx, func() {
		once.Do(func() { close(stopped) })
		cancel()
	}
}

// budgetKey carries a *Budget on a context.
type budgetKey struct{}

// WithBudget attaches b to ctx for the evaluation path to find.
func WithBudget(ctx context.Context, b *Budget) context.Context {
	return context.WithValue(ctx, budgetKey{}, b)
}

// FromContext returns the budget attached to ctx, or nil.
func FromContext(ctx context.Context) *Budget {
	b, _ := ctx.Value(budgetKey{}).(*Budget)
	return b
}

// Check is the one-call cancellation checkpoint: the recorded budget
// violation first (so a deadline expiry reads as a structured budget
// error, not a bare context.Canceled), then the context error.
func Check(ctx context.Context) error {
	b := FromContext(ctx)
	if err := b.Err(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}
