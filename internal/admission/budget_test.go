package admission_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"applab/internal/admission"
	"applab/internal/faults"
	"applab/internal/telemetry"
)

func TestLimitsEnabled(t *testing.T) {
	if (admission.Limits{}).Enabled() {
		t.Error("zero Limits reported enabled")
	}
	for _, l := range []admission.Limits{
		{Deadline: time.Second},
		{MaxRows: 1},
		{MaxIntermediate: 1},
		{MaxFanout: 1},
	} {
		if !l.Enabled() {
			t.Errorf("%+v reported disabled", l)
		}
	}
}

func TestBudgetErrorMessages(t *testing.T) {
	cases := []struct {
		be   *admission.BudgetError
		want string
	}{
		{&admission.BudgetError{Kind: admission.KindRows, Limit: 10}, "admission: query budget exceeded: rows limit 10"},
		{&admission.BudgetError{Kind: admission.KindIntermediate, Limit: 500}, "admission: query budget exceeded: intermediate limit 500"},
		{&admission.BudgetError{Kind: admission.KindFanout, Limit: 3}, "admission: query budget exceeded: fanout limit 3"},
		{&admission.BudgetError{Kind: admission.KindDeadline, Limit: int64(2 * time.Second)}, "admission: query budget exceeded: deadline 2s elapsed"},
	}
	for _, tc := range cases {
		if got := tc.be.Error(); got != tc.want {
			t.Errorf("message = %q, want %q", got, tc.want)
		}
	}
}

func TestBudgetFirstViolationWins(t *testing.T) {
	b := admission.NewBudget(admission.Limits{MaxIntermediate: 10, MaxRows: 1}, nil)
	first := b.AddIntermediate(100)
	if first == nil {
		t.Fatal("AddIntermediate(100) over a 10 cap returned nil")
	}
	// A later violation of a different dimension returns the first error.
	if err := b.CheckRows(5); err != first {
		t.Fatalf("CheckRows after violation = %v, want the first error %v", err, first)
	}
	if err := b.Err(); err != first {
		t.Fatalf("Err = %v, want %v", err, first)
	}
}

func TestBudgetConcurrentIdenticalError(t *testing.T) {
	// Many workers hammer the same budget: all of them must surface the
	// exact same *BudgetError value, never a count-dependent variant.
	b := admission.NewBudget(admission.Limits{MaxIntermediate: 1000}, nil)
	const workers = 8
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := b.AddIntermediate(64); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	want := b.Err()
	if want == nil {
		t.Fatal("budget never violated")
	}
	for w, err := range errs {
		if err == nil {
			t.Fatalf("worker %d finished without seeing the violation", w)
		}
		if err != want { // pointer identity: the CAS winner is shared
			t.Fatalf("worker %d error %v is not the shared violation %v", w, err, want)
		}
	}
}

func TestBudgetNilSafe(t *testing.T) {
	var b *admission.Budget
	if err := b.Err(); err != nil {
		t.Errorf("nil Err = %v", err)
	}
	if err := b.AddIntermediate(1 << 30); err != nil {
		t.Errorf("nil AddIntermediate = %v", err)
	}
	if err := b.AddFanout(1 << 30); err != nil {
		t.Errorf("nil AddFanout = %v", err)
	}
	if err := b.CheckRows(1 << 30); err != nil {
		t.Errorf("nil CheckRows = %v", err)
	}
	b.ExpireDeadline() // must not panic
	ctx, stop := b.StartDeadline(context.Background(), nil)
	stop()
	if ctx.Err() != nil {
		t.Errorf("nil StartDeadline cancelled ctx: %v", ctx.Err())
	}
	if l := b.Limits(); l.Enabled() {
		t.Errorf("nil Limits = %+v, want zero", l)
	}
}

func TestBudgetFanout(t *testing.T) {
	b := admission.NewBudget(admission.Limits{MaxFanout: 3}, nil)
	if err := b.AddFanout(3); err != nil {
		t.Fatalf("AddFanout(3) within cap: %v", err)
	}
	err := b.AddFanout(1)
	be, ok := admission.AsBudgetError(err)
	if !ok || be.Kind != admission.KindFanout || be.Limit != 3 {
		t.Fatalf("AddFanout over cap = %v, want fanout limit 3", err)
	}
}

func TestBudgetRows(t *testing.T) {
	b := admission.NewBudget(admission.Limits{MaxRows: 10}, nil)
	if err := b.CheckRows(10); err != nil {
		t.Fatalf("CheckRows(10) at cap: %v", err)
	}
	err := b.CheckRows(11)
	be, ok := admission.AsBudgetError(err)
	if !ok || be.Kind != admission.KindRows || be.Limit != 10 {
		t.Fatalf("CheckRows(11) = %v, want rows limit 10", err)
	}
}

func TestStartDeadlineFakeClock(t *testing.T) {
	clk := faults.NewClock(time.Unix(0, 0))
	reg := telemetry.NewRegistry()
	b := admission.NewBudget(admission.Limits{Deadline: 5 * time.Second}, reg)
	ctx, stop := b.StartDeadline(context.Background(), clk.After)
	defer stop()

	if err := admission.Check(admission.WithBudget(ctx, b)); err != nil {
		t.Fatalf("Check before deadline: %v", err)
	}
	clk.AwaitTimers(1)
	clk.Advance(5 * time.Second)
	// The watcher fires asynchronously; wait for the ctx cancellation it
	// performs (no fake-clock time passes while we spin).
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("deadline never cancelled the context")
	}
	err := admission.Check(admission.WithBudget(ctx, b))
	be, ok := admission.AsBudgetError(err)
	if !ok || be.Kind != admission.KindDeadline {
		t.Fatalf("Check after deadline = %v, want deadline budget error", err)
	}
	if got := reg.Counter("admission_budget_exceeded_total", "kind", "deadline").Value(); got != 1 {
		t.Fatalf("budget_exceeded{kind=deadline} = %d, want 1", got)
	}
}

func TestStartDeadlineStopReleasesWatcher(t *testing.T) {
	clk := faults.NewClock(time.Unix(0, 0))
	b := admission.NewBudget(admission.Limits{Deadline: time.Second}, nil)
	ctx, stop := b.StartDeadline(context.Background(), clk.After)
	clk.AwaitTimers(1)
	stop()
	stop() // double-stop is harmless
	if ctx.Err() == nil {
		t.Error("stop did not cancel the derived context")
	}
	if b.Err() != nil {
		t.Errorf("stopped deadline recorded a violation: %v", b.Err())
	}
}

func TestAborted(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("upstream 500"), false},
		{&admission.BudgetError{Kind: admission.KindRows, Limit: 1}, true},
		{context.Canceled, true},
		{context.DeadlineExceeded, true},
	}
	for _, tc := range cases {
		if got := admission.Aborted(tc.err); got != tc.want {
			t.Errorf("admission.Aborted(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestCheckPrefersBudgetOverContext(t *testing.T) {
	b := admission.NewBudget(admission.Limits{MaxRows: 1}, nil)
	ctx, cancel := context.WithCancel(admission.WithBudget(context.Background(), b))
	cancel()
	if err := admission.Check(ctx); err != context.Canceled {
		t.Fatalf("Check with clean budget = %v, want context.Canceled", err)
	}
	//lint:ignore errcheck reason: the violation is read back via Check below
	b.CheckRows(2)
	err := admission.Check(ctx)
	if _, ok := admission.AsBudgetError(err); !ok {
		t.Fatalf("Check = %v, want the budget error to win over ctx.Err", err)
	}
}

func TestFromContextMissing(t *testing.T) {
	if b := admission.FromContext(context.Background()); b != nil {
		t.Fatalf("admission.FromContext(empty) = %v, want nil", b)
	}
	if err := admission.Check(context.Background()); err != nil {
		t.Fatalf("admission.Check(empty) = %v, want nil", err)
	}
}

func TestBudgetAfterViolationEveryChargeFails(t *testing.T) {
	b := admission.NewBudget(admission.Limits{MaxIntermediate: 1, MaxRows: 1, MaxFanout: 1}, nil)
	first := b.AddIntermediate(2)
	if first == nil {
		t.Fatal("want violation")
	}
	// Once tripped, every subsequent charge reports the same violation,
	// whatever dimension it charges.
	if err := b.AddIntermediate(1); err != first {
		t.Errorf("AddIntermediate after violation = %v, want the first violation", err)
	}
	if err := b.AddFanout(1); err != first {
		t.Errorf("AddFanout after violation = %v, want the first violation", err)
	}
	if err := b.CheckRows(1); err != first {
		t.Errorf("CheckRows after violation = %v, want the first violation", err)
	}
}

func TestBudgetDisabledDimensionsNeverTrip(t *testing.T) {
	b := admission.NewBudget(admission.Limits{}, nil)
	if err := b.AddIntermediate(1 << 30); err != nil {
		t.Errorf("AddIntermediate with no cap: %v", err)
	}
	if err := b.AddFanout(1 << 30); err != nil {
		t.Errorf("AddFanout with no cap: %v", err)
	}
	if err := b.CheckRows(1 << 30); err != nil {
		t.Errorf("CheckRows with no cap: %v", err)
	}
	b.ExpireDeadline() // no deadline configured: must not record anything
	if err := b.Err(); err != nil {
		t.Errorf("Err after disabled charges = %v, want nil", err)
	}
}

func TestBudgetLimitsAccessor(t *testing.T) {
	var nilBudget *admission.Budget
	if got := nilBudget.Limits(); got != (admission.Limits{}) {
		t.Errorf("nil budget Limits() = %+v, want zero", got)
	}
	l := admission.Limits{MaxRows: 7}
	if got := admission.NewBudget(l, nil).Limits(); got != l {
		t.Errorf("Limits() = %+v, want %+v", got, l)
	}
}
