// Package madis implements the relational backend the OBDA layer plugs
// into, modeled on MadIS [Chronis et al., EDBT 2016]: an extensible
// in-memory relational engine whose FROM clause accepts user-defined
// virtual table functions — the mechanism the paper uses to expose OPeNDAP
// streams as SQL tables ("the MadIS operator Opendap retrieves this data
// and populates a virtual table on-the-fly", §4).
//
// The SQL subset covers what R2RML-style mapping sources need:
//
//	SELECT col, ... FROM <table> [WHERE cond [AND cond]...] [ORDER BY col [DESC]] [LIMIT n]
//	SELECT ... FROM (ordered <vtable> arg, arg, ...) WHERE ...
//
// with comparison predicates over numbers and strings.
package madis

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Value is a cell value: string, float64 or nil (SQL NULL).
type Value any

// Row is one table row.
type Row []Value

// Table is a named relation.
type Table struct {
	Name string
	Cols []string
	Rows []Row
}

// ColIndex returns the index of a column by (case-insensitive) name.
func (t *Table) ColIndex(name string) (int, bool) {
	for i, c := range t.Cols {
		if strings.EqualFold(c, name) {
			return i, true
		}
	}
	return 0, false
}

// VirtualTable is a user-defined table function: it receives the raw
// argument strings from the FROM clause and produces a relation.
type VirtualTable func(args []string) (*Table, error)

// DB is a collection of named tables and registered virtual table
// functions. It is safe for concurrent reads; registration and table
// creation must happen before querying from multiple goroutines.
type DB struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	vtables map[string]VirtualTable
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: map[string]*Table{}, vtables: map[string]VirtualTable{}}
}

// CreateTable registers a table (replacing an existing one of the same
// name).
func (db *DB) CreateTable(t *Table) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tables[strings.ToLower(t.Name)] = t
}

// Table returns a registered table.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// RegisterVirtualTable installs a virtual table function under a name
// usable in FROM clauses.
func (db *DB) RegisterVirtualTable(name string, fn VirtualTable) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.vtables[strings.ToLower(name)] = fn
}

// virtualTable returns the named virtual table function.
func (db *DB) virtualTable(name string) (VirtualTable, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	fn, ok := db.vtables[strings.ToLower(name)]
	return fn, ok
}

// Query parses and evaluates a SQL statement.
func (db *DB) Query(sql string) (*Table, error) {
	stmt, err := parseSQL(sql)
	if err != nil {
		return nil, err
	}
	return db.eval(stmt)
}

func (db *DB) eval(stmt *selectStmt) (*Table, error) {
	var base *Table
	switch {
	case stmt.fromVTable != "":
		fn, ok := db.virtualTable(stmt.fromVTable)
		if !ok {
			return nil, fmt.Errorf("madis: unknown virtual table %q", stmt.fromVTable)
		}
		t, err := fn(stmt.vtableArgs)
		if err != nil {
			return nil, fmt.Errorf("madis: virtual table %s: %v", stmt.fromVTable, err)
		}
		base = t
	default:
		t, ok := db.Table(stmt.fromTable)
		if !ok {
			return nil, fmt.Errorf("madis: no table %q", stmt.fromTable)
		}
		base = t
	}

	// Resolve filter columns.
	type boundCond struct {
		col int
		op  string
		// rhs is a constant or another column (rhsCol >= 0).
		rhs    Value
		rhsCol int
	}
	conds := make([]boundCond, 0, len(stmt.where))
	for _, c := range stmt.where {
		ci, ok := base.ColIndex(c.col)
		if !ok {
			return nil, fmt.Errorf("madis: unknown column %q", c.col)
		}
		bc := boundCond{col: ci, op: c.op, rhs: c.value, rhsCol: -1}
		if c.rhsCol != "" {
			ri, ok := base.ColIndex(c.rhsCol)
			if !ok {
				return nil, fmt.Errorf("madis: unknown column %q", c.rhsCol)
			}
			bc.rhsCol = ri
		}
		conds = append(conds, bc)
	}

	// Resolve projection.
	var outCols []string
	var proj []int
	if len(stmt.cols) == 1 && stmt.cols[0] == "*" {
		outCols = base.Cols
		proj = make([]int, len(base.Cols))
		for i := range proj {
			proj[i] = i
		}
	} else {
		for _, c := range stmt.cols {
			ci, ok := base.ColIndex(c)
			if !ok {
				return nil, fmt.Errorf("madis: unknown column %q", c)
			}
			outCols = append(outCols, base.Cols[ci])
			proj = append(proj, ci)
		}
	}

	// Filter on the base relation (ORDER BY may reference non-projected
	// columns, so ordering also happens before projection).
	var kept []Row
	for _, row := range base.Rows {
		keep := true
		for _, c := range conds {
			rhs := c.rhs
			if c.rhsCol >= 0 {
				rhs = row[c.rhsCol]
			}
			if !compareValues(row[c.col], c.op, rhs) {
				keep = false
				break
			}
		}
		if keep {
			kept = append(kept, row)
		}
	}

	if stmt.orderBy != "" {
		oi, ok := base.ColIndex(stmt.orderBy)
		if !ok {
			return nil, fmt.Errorf("madis: ORDER BY unknown column %q", stmt.orderBy)
		}
		sort.SliceStable(kept, func(i, j int) bool {
			if stmt.orderDesc {
				return valueLess(kept[j][oi], kept[i][oi])
			}
			return valueLess(kept[i][oi], kept[j][oi])
		})
	}
	if stmt.limit >= 0 && stmt.limit < len(kept) {
		kept = kept[:stmt.limit]
	}

	out := &Table{Name: "result", Cols: outCols}
	for _, row := range kept {
		nr := make(Row, len(proj))
		for i, ci := range proj {
			nr[i] = row[ci]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// compareValues applies op between two cell values. NULL never compares
// true.
func compareValues(l Value, op string, r Value) bool {
	if l == nil || r == nil {
		return false
	}
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if lok && rok {
		switch op {
		case "=":
			return lf == rf
		case "!=", "<>":
			return lf != rf
		case "<":
			return lf < rf
		case "<=":
			return lf <= rf
		case ">":
			return lf > rf
		case ">=":
			return lf >= rf
		}
		return false
	}
	ls, rs := toString(l), toString(r)
	switch op {
	case "=":
		return ls == rs
	case "!=", "<>":
		return ls != rs
	case "<":
		return ls < rs
	case "<=":
		return ls <= rs
	case ">":
		return ls > rs
	case ">=":
		return ls >= rs
	}
	return false
}

func valueLess(l, r Value) bool {
	if l == nil {
		return r != nil
	}
	if r == nil {
		return false
	}
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if lok && rok {
		return lf < rf
	}
	return toString(l) < toString(r)
}

func toFloat(v Value) (float64, bool) {
	f, ok := v.(float64)
	return f, ok
}

func toString(v Value) string {
	switch t := v.(type) {
	case string:
		return t
	case float64:
		return fmt.Sprintf("%g", t)
	case nil:
		return ""
	}
	return fmt.Sprintf("%v", v)
}
