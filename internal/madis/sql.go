package madis

import (
	"fmt"
	"strconv"
	"strings"
)

// selectStmt is a parsed SELECT statement.
type selectStmt struct {
	cols       []string
	fromTable  string
	fromVTable string
	vtableArgs []string
	where      []cond
	orderBy    string
	orderDesc  bool
	limit      int
}

// cond is "col op (value | rhsCol)".
type cond struct {
	col    string
	op     string
	value  Value
	rhsCol string
}

// parseSQL parses the supported SELECT form. The grammar is intentionally
// whitespace-tolerant because mapping sources in the paper's Listing 2 are
// wrapped over multiple lines.
func parseSQL(sql string) (*selectStmt, error) {
	s := strings.TrimSpace(sql)
	up := strings.ToUpper(s)
	if !strings.HasPrefix(up, "SELECT") {
		return nil, fmt.Errorf("madis: only SELECT is supported")
	}
	rest := strings.TrimSpace(s[len("SELECT"):])
	fromIdx := indexKeywordTopLevel(rest, "FROM")
	if fromIdx < 0 {
		return nil, fmt.Errorf("madis: missing FROM")
	}
	colPart := strings.TrimSpace(rest[:fromIdx])
	rest = strings.TrimSpace(rest[fromIdx+len("FROM"):])

	stmt := &selectStmt{limit: -1}
	for _, c := range strings.Split(colPart, ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			return nil, fmt.Errorf("madis: empty column in projection")
		}
		stmt.cols = append(stmt.cols, c)
	}

	// FROM: either identifier or "(ordered? name arg, arg, ...)".
	if strings.HasPrefix(rest, "(") {
		close := matchParen(rest)
		if close < 0 {
			return nil, fmt.Errorf("madis: unbalanced ( in FROM")
		}
		inner := strings.TrimSpace(rest[1:close])
		rest = strings.TrimSpace(rest[close+1:])
		fields := strings.Fields(inner)
		if len(fields) == 0 {
			return nil, fmt.Errorf("madis: empty virtual table call")
		}
		i := 0
		if strings.EqualFold(fields[i], "ordered") {
			i++
		}
		if i >= len(fields) {
			return nil, fmt.Errorf("madis: virtual table name missing")
		}
		stmt.fromVTable = fields[i]
		argStr := strings.TrimSpace(strings.Join(fields[i+1:], " "))
		if argStr != "" {
			for _, a := range strings.Split(argStr, ",") {
				a = strings.TrimSpace(a)
				// strip "url:" style prefixes used in Listing 2
				if idx := strings.Index(a, "url:"); idx == 0 {
					a = strings.TrimSpace(a[4:])
				}
				if a != "" {
					stmt.vtableArgs = append(stmt.vtableArgs, a)
				}
			}
		}
	} else {
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return nil, fmt.Errorf("madis: missing table name after FROM")
		}
		stmt.fromTable = fields[0]
		rest = strings.TrimSpace(rest[len(fields[0]):])
	}

	// WHERE
	if idx := indexKeywordTopLevel(rest, "WHERE"); idx >= 0 {
		after := rest[idx+len("WHERE"):]
		end := len(after)
		if oi := indexKeywordTopLevel(after, "ORDER"); oi >= 0 && oi < end {
			end = oi
		}
		if li := indexKeywordTopLevel(after, "LIMIT"); li >= 0 && li < end {
			end = li
		}
		wherePart := strings.TrimSpace(after[:end])
		conds, err := parseConds(wherePart)
		if err != nil {
			return nil, err
		}
		stmt.where = conds
		rest = strings.TrimSpace(rest[:idx]) + " " + strings.TrimSpace(after[end:])
		rest = strings.TrimSpace(rest)
	}

	// ORDER BY
	if idx := indexKeywordTopLevel(rest, "ORDER"); idx >= 0 {
		after := strings.TrimSpace(rest[idx+len("ORDER"):])
		if !strings.HasPrefix(strings.ToUpper(after), "BY") {
			return nil, fmt.Errorf("madis: ORDER without BY")
		}
		after = strings.TrimSpace(after[2:])
		fields := strings.Fields(after)
		if len(fields) == 0 {
			return nil, fmt.Errorf("madis: ORDER BY missing column")
		}
		stmt.orderBy = fields[0]
		consumed := len(fields[0])
		if len(fields) > 1 && strings.EqualFold(fields[1], "DESC") {
			stmt.orderDesc = true
			consumed = strings.Index(after, fields[1]) + len(fields[1])
		} else if len(fields) > 1 && strings.EqualFold(fields[1], "ASC") {
			consumed = strings.Index(after, fields[1]) + len(fields[1])
		}
		rest = strings.TrimSpace(rest[:idx]) + " " + strings.TrimSpace(after[consumed:])
		rest = strings.TrimSpace(rest)
	}

	// LIMIT
	if idx := indexKeywordTopLevel(rest, "LIMIT"); idx >= 0 {
		after := strings.TrimSpace(rest[idx+len("LIMIT"):])
		fields := strings.Fields(after)
		if len(fields) == 0 {
			return nil, fmt.Errorf("madis: LIMIT missing count")
		}
		n, err := strconv.Atoi(fields[0])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("madis: bad LIMIT %q", fields[0])
		}
		stmt.limit = n
		rest = strings.TrimSpace(rest[:idx]) + " " + strings.TrimSpace(after[len(fields[0]):])
		rest = strings.TrimSpace(rest)
	}

	if rest != "" {
		return nil, fmt.Errorf("madis: trailing SQL %q", rest)
	}
	return stmt, nil
}

func parseConds(s string) ([]cond, error) {
	if s == "" {
		return nil, fmt.Errorf("madis: empty WHERE")
	}
	var out []cond
	parts := splitKeywordTopLevel(s, "AND")
	for _, p := range parts {
		p = strings.TrimSpace(p)
		c, err := parseCond(p)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

func parseCond(s string) (cond, error) {
	for _, op := range []string{"<=", ">=", "!=", "<>", "=", "<", ">"} {
		if idx := strings.Index(s, op); idx > 0 {
			lhs := strings.TrimSpace(s[:idx])
			rhs := strings.TrimSpace(s[idx+len(op):])
			if lhs == "" || rhs == "" {
				return cond{}, fmt.Errorf("madis: bad condition %q", s)
			}
			c := cond{col: lhs, op: op}
			switch {
			case strings.HasPrefix(rhs, "'") && strings.HasSuffix(rhs, "'") && len(rhs) >= 2:
				c.value = rhs[1 : len(rhs)-1]
			default:
				if f, err := strconv.ParseFloat(rhs, 64); err == nil {
					c.value = f
				} else {
					c.rhsCol = rhs
				}
			}
			return c, nil
		}
	}
	return cond{}, fmt.Errorf("madis: no operator in condition %q", s)
}

// indexKeywordTopLevel finds a keyword outside parentheses and quotes,
// matched case-insensitively on word boundaries.
func indexKeywordTopLevel(s, kw string) int {
	depth := 0
	inQuote := false
	up := strings.ToUpper(s)
	ukw := strings.ToUpper(kw)
	for i := 0; i+len(kw) <= len(s); i++ {
		switch s[i] {
		case '(':
			if !inQuote {
				depth++
			}
		case ')':
			if !inQuote {
				depth--
			}
		case '\'':
			inQuote = !inQuote
		}
		if depth != 0 || inQuote {
			continue
		}
		if up[i:i+len(kw)] == ukw {
			beforeOK := i == 0 || isSpaceByte(s[i-1])
			afterOK := i+len(kw) == len(s) || isSpaceByte(s[i+len(kw)])
			if beforeOK && afterOK {
				return i
			}
		}
	}
	return -1
}

func splitKeywordTopLevel(s, kw string) []string {
	var out []string
	for {
		idx := indexKeywordTopLevel(s, kw)
		if idx < 0 {
			out = append(out, s)
			return out
		}
		out = append(out, s[:idx])
		s = s[idx+len(kw):]
	}
}

// matchParen returns the index of the ')' matching the '(' at s[0].
func matchParen(s string) int {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

func isSpaceByte(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
