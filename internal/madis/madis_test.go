package madis

import (
	"fmt"
	"testing"
)

func peopleTable() *Table {
	return &Table{
		Name: "people",
		Cols: []string{"id", "name", "age", "city"},
		Rows: []Row{
			{"p1", "Alice", 30.0, "Paris"},
			{"p2", "Bob", 25.0, "Athens"},
			{"p3", "Carol", 35.0, "Paris"},
			{"p4", "Dave", nil, "Oslo"},
		},
	}
}

func TestSelectAll(t *testing.T) {
	db := NewDB()
	db.CreateTable(peopleTable())
	res, err := db.Query("SELECT * FROM people")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || len(res.Cols) != 4 {
		t.Fatalf("rows=%d cols=%d", len(res.Rows), len(res.Cols))
	}
}

func TestProjection(t *testing.T) {
	db := NewDB()
	db.CreateTable(peopleTable())
	res, err := db.Query("SELECT name, city FROM people")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 2 || res.Cols[0] != "name" {
		t.Fatalf("cols = %v", res.Cols)
	}
	if res.Rows[0][0] != "Alice" || res.Rows[0][1] != "Paris" {
		t.Fatalf("row0 = %v", res.Rows[0])
	}
	if _, err := db.Query("SELECT nope FROM people"); err == nil {
		t.Error("unknown column must error")
	}
}

func TestWhere(t *testing.T) {
	db := NewDB()
	db.CreateTable(peopleTable())
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT name FROM people WHERE age > 26", 2},
		{"SELECT name FROM people WHERE age >= 25 AND age <= 30", 2},
		{"SELECT name FROM people WHERE city = 'Paris'", 2},
		{"SELECT name FROM people WHERE city != 'Paris'", 2}, // NULL age row has city Oslo
		{"SELECT name FROM people WHERE age > 100", 0},
		{"SELECT name FROM people WHERE name < 'C'", 2},
	}
	for _, c := range cases {
		res, err := db.Query(c.sql)
		if err != nil {
			t.Errorf("%q: %v", c.sql, err)
			continue
		}
		if len(res.Rows) != c.want {
			t.Errorf("%q: %d rows, want %d", c.sql, len(res.Rows), c.want)
		}
	}
	// NULL never matches
	res, _ := db.Query("SELECT name FROM people WHERE age < 100")
	if len(res.Rows) != 3 {
		t.Errorf("NULL age must not match: %v", res.Rows)
	}
}

func TestWhereColumnToColumn(t *testing.T) {
	db := NewDB()
	db.CreateTable(&Table{Name: "t", Cols: []string{"a", "b"},
		Rows: []Row{{1.0, 2.0}, {3.0, 3.0}, {5.0, 4.0}}})
	res, err := db.Query("SELECT a FROM t WHERE a < b")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != 1.0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestOrderByLimit(t *testing.T) {
	db := NewDB()
	db.CreateTable(peopleTable())
	res, err := db.Query("SELECT name FROM people WHERE age > 0 ORDER BY age DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != "Carol" || res.Rows[1][0] != "Alice" {
		t.Fatalf("rows = %v", res.Rows)
	}
	res, err = db.Query("SELECT name FROM people ORDER BY name LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "Alice" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestVirtualTable(t *testing.T) {
	db := NewDB()
	db.RegisterVirtualTable("range", func(args []string) (*Table, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("range takes 1 argument")
		}
		n := 0
		fmt.Sscanf(args[0], "%d", &n)
		tb := &Table{Name: "range", Cols: []string{"i", "sq"}}
		for i := 0; i < n; i++ {
			tb.Rows = append(tb.Rows, Row{float64(i), float64(i * i)})
		}
		return tb, nil
	})
	res, err := db.Query("SELECT i, sq FROM (range 5) WHERE sq > 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 { // 4, 9, 16
		t.Fatalf("rows = %v", res.Rows)
	}
	// with "ordered" keyword and url: prefix like the paper's Listing 2
	res, err = db.Query("SELECT i FROM (ordered range url:5) WHERE i >= 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("ordered rows = %v", res.Rows)
	}
	if _, err := db.Query("SELECT x FROM (nosuch 1)"); err == nil {
		t.Error("unknown vtable must error")
	}
	if _, err := db.Query("SELECT i FROM (range)"); err == nil {
		t.Error("vtable arg error must propagate")
	}
}

func TestListing2SourceShape(t *testing.T) {
	// The exact FROM/WHERE shape of the paper's Listing 2 mapping source.
	db := NewDB()
	db.RegisterVirtualTable("opendap", func(args []string) (*Table, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("opendap takes url and window, got %v", args)
		}
		return &Table{
			Name: "opendap",
			Cols: []string{"id", "LAI", "ts", "loc"},
			Rows: []Row{
				{"o1", 3.5, "2018-06-01T00:00:00Z", "POINT (2.25 48.86)"},
				{"o2", -0.5, "2018-06-01T00:00:00Z", "POINT (2.26 48.87)"},
				{"o3", 0.0, "2018-06-01T00:00:00Z", "POINT (2.27 48.88)"},
			},
		}, nil
	})
	sql := `SELECT id, LAI , ts, loc
FROM (ordered opendap
url:https://analytics.ramani.ujuizi.com/thredds/dodsC/Copernicus-Land-timeseries-global-LAI%29/readdods/LAI/, 10)
WHERE LAI > 0`
	res, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "o1" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if len(res.Cols) != 4 {
		t.Fatalf("cols = %v", res.Cols)
	}
}

func TestParseErrors(t *testing.T) {
	db := NewDB()
	db.CreateTable(peopleTable())
	bad := []string{
		"DELETE FROM people",
		"SELECT name",
		"SELECT FROM people",
		"SELECT name FROM",
		"SELECT name FROM people WHERE",
		"SELECT name FROM people WHERE age",
		"SELECT name FROM people LIMIT x",
		"SELECT name FROM people ORDER age",
		"SELECT name FROM nosuch",
		"SELECT name FROM (unclosed",
		"SELECT name FROM people trailing garbage",
	}
	for _, q := range bad {
		if _, err := db.Query(q); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
}

func TestCaseInsensitivity(t *testing.T) {
	db := NewDB()
	db.CreateTable(peopleTable())
	res, err := db.Query("select NAME from PEOPLE where AGE > 26 order by NAME limit 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != "Alice" {
		t.Fatalf("rows = %v", res.Rows)
	}
}
