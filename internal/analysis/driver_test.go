package analysis_test

import (
	"bytes"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"applab/internal/analysis"
)

func mkFinding(file string, line, col int, check, msg string) analysis.Finding {
	return analysis.Finding{
		Pos:     token.Position{Filename: file, Line: line, Column: col},
		Check:   check,
		Message: msg,
	}
}

func TestApplyFixes(t *testing.T) {
	src := []byte(`package p

import "sync"

type s struct{ mu sync.Mutex }

func (x *s) a() {
	x.mu.Lock()
}

func (x *s) b() {
	x.mu.Lock()
}
`)
	fixes := []analysis.SuggestedFix{
		{InsertAfter: token.Position{Line: 8}, Text: "defer x.mu.Unlock()"},
		{InsertAfter: token.Position{Line: 12}, Text: "defer x.mu.Unlock()"},
	}
	got, err := analysis.ApplyFixes(src, fixes)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(got), "defer x.mu.Unlock()"); n != 2 {
		t.Errorf("want 2 inserted defers, got %d in:\n%s", n, got)
	}
	// Each defer must land directly after its Lock, with the same
	// indentation (gofmt would keep a tab).
	if !strings.Contains(string(got), "\tx.mu.Lock()\n\tdefer x.mu.Unlock()\n") {
		t.Errorf("defer not adjacent to its lock:\n%s", got)
	}
}

func TestApplyFixesRejectsBadAnchor(t *testing.T) {
	if _, err := analysis.ApplyFixes([]byte("package p\n"), []analysis.SuggestedFix{
		{InsertAfter: token.Position{Line: 99}, Text: "x"},
	}); err == nil {
		t.Error("out-of-range anchor must error")
	}
}

func TestApplyFixesRejectsBrokenResult(t *testing.T) {
	if _, err := analysis.ApplyFixes([]byte("package p\n\nfunc f() {}\n"), []analysis.SuggestedFix{
		{InsertAfter: token.Position{Line: 1}, Text: "not a go statement ]["},
	}); err == nil {
		t.Error("unparseable fixed source must error")
	}
}

func TestApplyFixesNoop(t *testing.T) {
	src := []byte("package p\n")
	got, err := analysis.ApplyFixes(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Error("no fixes must leave the source untouched")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	findings := []analysis.Finding{
		mkFinding("b.go", 3, 1, "lockflow", "leak"),
		mkFinding("a.go", 9, 2, "closeflow", "leak"),
		mkFinding("a.go", 4, 1, "errflow", "dropped"),
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := analysis.WriteBaseline(path, findings); err != nil {
		t.Fatal(err)
	}
	b, err := analysis.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 3 {
		t.Fatalf("want 3 entries, got %d", len(b.Entries))
	}
	// Entries come back sorted by (file, check, message).
	if b.Entries[0].File != "a.go" || b.Entries[0].Check != "closeflow" {
		t.Errorf("entries not sorted: %+v", b.Entries)
	}
	// Every recorded finding is filtered out; a new one survives.
	newFinding := mkFinding("c.go", 1, 1, "lockflow", "fresh")
	out := b.Filter(append(findings, newFinding))
	if len(out) != 1 || out[0].Pos.Filename != "c.go" {
		t.Errorf("filter should keep only the fresh finding, got %v", out)
	}
}

func TestBaselineMultiset(t *testing.T) {
	// One baseline entry covers one occurrence: a second identical
	// finding must still be reported.
	b := &analysis.Baseline{Entries: []analysis.BaselineEntry{
		{File: "a.go", Check: "errflow", Message: "dropped"},
	}}
	two := []analysis.Finding{
		mkFinding("a.go", 1, 1, "errflow", "dropped"),
		mkFinding("a.go", 9, 1, "errflow", "dropped"),
	}
	out := b.Filter(two)
	if len(out) != 1 {
		t.Errorf("multiset filter: want 1 surviving finding, got %d", len(out))
	}
}

func TestBaselineNilPassesThrough(t *testing.T) {
	var b *analysis.Baseline
	fs := []analysis.Finding{mkFinding("a.go", 1, 1, "x", "y")}
	if got := b.Filter(fs); len(got) != 1 {
		t.Errorf("nil baseline must pass findings through, got %v", got)
	}
}

func TestLoadBaselineMissingFileErrors(t *testing.T) {
	if _, err := analysis.LoadBaseline(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing baseline file must be an error, not an empty baseline")
	}
}

func TestEncodeJSON(t *testing.T) {
	f := mkFinding("internal/x/y.go", 7, 3, "lockflow", "leaked lock")
	f.Fix = &analysis.SuggestedFix{InsertAfter: token.Position{Line: 7}, Text: "defer mu.Unlock()"}
	var buf bytes.Buffer
	if err := analysis.EncodeJSON(&buf, []analysis.Finding{f}); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		`"file": "internal/x/y.go"`,
		`"line": 7`,
		`"col": 3`,
		`"check": "lockflow"`,
		`"message": "leaked lock"`,
		`"fix": "defer mu.Unlock()"`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("JSON output lacks %s:\n%s", want, got)
		}
	}
}

func TestEncodeJSONEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := analysis.EncodeJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty findings must encode as [], got %q", got)
	}
}

func TestFindingString(t *testing.T) {
	f := mkFinding("a.go", 3, 9, "errflow", "dropped")
	if got, want := f.String(), "a.go:3:9: [errflow] dropped"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSortFindings(t *testing.T) {
	fs := []analysis.Finding{
		mkFinding("b.go", 1, 1, "z", ""),
		mkFinding("a.go", 2, 2, "b", ""),
		mkFinding("a.go", 2, 2, "a", ""),
		mkFinding("a.go", 2, 1, "z", ""),
		mkFinding("a.go", 1, 9, "z", ""),
	}
	analysis.SortFindings(fs)
	var order []string
	for _, f := range fs {
		order = append(order, f.String())
	}
	want := []string{
		"a.go:1:9: [z] ",
		"a.go:2:1: [z] ",
		"a.go:2:2: [a] ",
		"a.go:2:2: [b] ",
		"b.go:1:1: [z] ",
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("sort order mismatch at %d: got %v", i, order)
		}
	}
}

func TestUnusedIgnoreDirectiveReported(t *testing.T) {
	got := runChecker(t, "", checkerCase{ // "" = all checkers: unused detection needs the full set
		name: "unused",
		src: `package fixture

func fine() {
	//lint:ignore lockflow reason: nothing here ever locked anything
	_ = 1
}
`,
	})
	if len(got) != 1 {
		t.Fatalf("want 1 unused-directive finding, got %v", got)
	}
	if got[0].Check != "directive" || !strings.Contains(got[0].Message, "unused") {
		t.Errorf("unexpected finding: %v", got[0])
	}
}

func TestUnknownCheckInIgnoreStillCounts(t *testing.T) {
	// A directive for a check that did not run must not be flagged as
	// unused (partial -checks invocations would otherwise churn).
	got := runChecker(t, "errcheck", checkerCase{
		name: "partial",
		src: `package fixture

func fine() {
	//lint:ignore lockflow reason: verified manually, lock handed off
	_ = 1
}
`,
	})
	if len(got) != 0 {
		t.Fatalf("directive for a non-running check must not be reported, got %v", got)
	}
}

func TestByName(t *testing.T) {
	cs, err := analysis.ByName("lockflow, closeflow")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || cs[0].Name != "lockflow" || cs[1].Name != "closeflow" {
		t.Errorf("ByName parse: %v", cs)
	}
	if _, err := analysis.ByName("nope"); err == nil {
		t.Error("unknown check must error")
	}
	all, err := analysis.ByName("all")
	if err != nil || len(all) != len(analysis.All()) {
		t.Errorf("ByName(all) = %d checkers, err %v", len(all), err)
	}
}
