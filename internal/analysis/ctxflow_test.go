package analysis_test

import "testing"

// ctxflowPrelude mimics the engine's shapes: an execution context with
// checkpoint helpers, flat binding rows, and a triple type.
const ctxflowPrelude = `package fixture

import "context"

type row []int

type Triple struct{ S, P, O int }

type execCtx struct {
	ctx context.Context
}

func (ec *execCtx) tick(n *int) error { return nil }

func (ec *execCtx) tickN(n *int, k int) error { return nil }

func (ec *execCtx) checkpoint(rows int) error { return nil }

type Budget struct{}

func (b *Budget) AddIntermediate(n int) error { return nil }
`

func TestCtxflow(t *testing.T) {
	runCases(t, "ctxflow", []checkerCase{
		{
			name: "unchecked row loop in operator is flagged",
			path: "applab/internal/sparql",
			src: ctxflowPrelude + `
func run(ec *execCtx, in []row) []row {
	var out []row
	for _, r := range in {
		out = append(out, r)
	}
	return out
}
`,
			want:       1,
			wantSubstr: "cancellation checkpoint",
		},
		{
			name: "tick in loop body satisfies the rule",
			path: "applab/internal/sparql",
			src: ctxflowPrelude + `
func run(ec *execCtx, in []row) ([]row, error) {
	var out []row
	n := 0
	for _, r := range in {
		if err := ec.tick(&n); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
`,
			want: 0,
		},
		{
			name: "tick reached only on one branch is flagged",
			path: "applab/internal/sparql",
			src: ctxflowPrelude + `
func run(ec *execCtx, in []row, heavy bool) ([]row, error) {
	var out []row
	n := 0
	for _, r := range in {
		if heavy {
			if err := ec.tick(&n); err != nil {
				return nil, err
			}
		}
		out = append(out, r)
	}
	return out, nil
}
`,
			want:       1,
			wantSubstr: "iteration path",
		},
		{
			name: "continue path that skips the tick is flagged",
			path: "applab/internal/sparql",
			src: ctxflowPrelude + `
func run(ec *execCtx, in []row) ([]row, error) {
	var out []row
	n := 0
	for _, r := range in {
		if len(r) == 0 {
			continue
		}
		if err := ec.tick(&n); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
`,
			want: 1,
		},
		{
			name: "break path without a tick is fine: the loop ends there",
			path: "applab/internal/sparql",
			src: ctxflowPrelude + `
func run(ec *execCtx, in []row) ([]row, error) {
	var out []row
	n := 0
	for _, r := range in {
		if len(r) == 0 {
			break
		}
		if err := ec.tick(&n); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
`,
			want: 0,
		},
		{
			name: "tick on both branches satisfies the rule",
			path: "applab/internal/sparql",
			src: ctxflowPrelude + `
func run(ec *execCtx, in []row, heavy bool) error {
	n := 0
	for range in {
		if heavy {
			if err := ec.tick(&n); err != nil {
				return err
			}
		} else {
			if err := ec.checkpoint(1); err != nil {
				return err
			}
		}
	}
	return nil
}
`,
			want: 0,
		},
		{
			name: "tickN pre-charge separated from the loop does not exempt",
			path: "applab/internal/sparql",
			src: ctxflowPrelude + `
func run(ec *execCtx, matches []Triple) (int, error) {
	n := 0
	if err := ec.tickN(&n, len(matches)); err != nil {
		return 0, err
	}
	total := 0
	for _, t := range matches {
		total += t.S
	}
	return total, nil
}
`,
			want: 1, // the pre-charge is NOT the previous statement here
		},
		{
			name: "tickN pre-charge as the previous statement is exempt",
			path: "applab/internal/sparql",
			src: ctxflowPrelude + `
func run(ec *execCtx, matches []Triple) (int, error) {
	n := 0
	total := 0
	if err := ec.tickN(&n, len(matches)); err != nil {
		return 0, err
	}
	for _, t := range matches {
		total += t.S
	}
	return total, nil
}
`,
			want: 0,
		},
		{
			name: "pre-charge of a different slice does not exempt",
			path: "applab/internal/sparql",
			src: ctxflowPrelude + `
func run(ec *execCtx, matches, others []Triple) (int, error) {
	n := 0
	total := 0
	if err := ec.tickN(&n, len(others)); err != nil {
		return 0, err
	}
	for _, t := range matches {
		total += t.S
	}
	return total, nil
}
`,
			want: 1,
		},
		{
			name: "row loop inside a literal within an operator is flagged",
			path: "applab/internal/sparql",
			src: ctxflowPrelude + `
func run(ec *execCtx, chunks [][]row) int {
	total := 0
	drain := func(c []row) {
		for _, r := range c {
			total += len(r)
		}
	}
	for _, c := range chunks {
		drain(c)
	}
	return total
}
`,
			want: 2, // the literal's loop and the chunk loop
		},
		{
			name: "ctx.Err in loop body satisfies the rule",
			path: "applab/internal/sparql",
			src: ctxflowPrelude + `
func run(ec *execCtx, in []row) error {
	for range in {
		if err := ec.ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}
`,
			want: 0,
		},
		{
			name: "budget method in loop body satisfies the rule",
			path: "applab/internal/sparql",
			src: ctxflowPrelude + `
func run(ec *execCtx, b *Budget, in []row) error {
	for range in {
		if err := b.AddIntermediate(1); err != nil {
			return err
		}
	}
	return nil
}
`,
			want: 0,
		},
		{
			name: "loops outside execCtx functions are not the rule's business",
			path: "applab/internal/sparql",
			src: ctxflowPrelude + `
func project(in []row) []row {
	var out []row
	for _, r := range in {
		out = append(out, r)
	}
	return out
}
`,
			want: 0,
		},
		{
			name: "non-row loops inside operators are fine",
			path: "applab/internal/sparql",
			src: ctxflowPrelude + `
func run(ec *execCtx, names []string) int {
	n := 0
	for _, s := range names {
		n += len(s)
	}
	return n
}
`,
			want: 0,
		},
		{
			name: "rule only applies to the sparql package",
			path: "applab/internal/opendap",
			src: ctxflowPrelude + `
func run(ec *execCtx, in []row) int {
	n := 0
	for range in {
		n++
	}
	return n
}
`,
			want: 0,
		},
		{
			name: "chunk-of-rows loop without check is flagged",
			path: "applab/internal/sparql",
			src: ctxflowPrelude + `
func drain(ec *execCtx, chunks [][]row) int {
	n := 0
	for _, c := range chunks {
		n += len(c)
	}
	return n
}
`,
			want: 1,
		},
		{
			name: "lint:ignore suppresses with a reason",
			path: "applab/internal/sparql",
			src: ctxflowPrelude + `
func run(ec *execCtx, in []row) int {
	n := 0
	//lint:ignore ctxflow reason: bounded by compile-time pattern count, not data size
	for range in {
		n++
	}
	return n
}
`,
			want: 0,
		},
	})
}
