package analysis_test

import "testing"

func TestLockio(t *testing.T) {
	runCases(t, "lockio", []checkerCase{
		{
			name: "channel send inside Lock/Unlock",
			src: `package fixture

import "sync"

type q struct {
	mu sync.Mutex
	ch chan int
}

func (s *q) f() {
	s.mu.Lock()
	s.ch <- 1
	s.mu.Unlock()
}
`,
			want:       1,
			wantSubstr: "channel send",
		},
		{
			name: "fetch call while holding deferred lock",
			src: `package fixture

import "sync"

type client struct{}

func (client) Fetch(name string) string { return name }

type cache struct {
	mu sync.Mutex
	c  client
}

func (s *cache) f() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Fetch("dataset")
}
`,
			want:       1,
			wantSubstr: "outside the critical section",
		},
		{
			name: "sleep under RLock",
			src: `package fixture

import (
	"sync"
	"time"
)

type s struct{ mu sync.RWMutex }

func (x *s) f() {
	x.mu.RLock()
	time.Sleep(time.Millisecond)
	x.mu.RUnlock()
}
`,
			want:       1,
			wantSubstr: "time.Sleep",
		},
		{
			name: "fetch after unlock is fine",
			src: `package fixture

import "sync"

type client struct{}

func (client) Fetch(name string) string { return name }

type cache struct {
	mu   sync.Mutex
	c    client
	hits int
}

func (s *cache) f() string {
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return s.c.Fetch("dataset")
}
`,
			want: 0,
		},
		{
			name: "pure computation under lock is fine",
			src: `package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  map[string]int
}

func (c *counter) bump(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n[k]++
}
`,
			want: 0,
		},
		{
			name: "goroutine launched under lock runs outside it",
			src: `package fixture

import "sync"

type client struct{}

func (client) Fetch(name string) string { return name }

type s struct {
	mu sync.Mutex
	c  client
	wg sync.WaitGroup
}

func (x *s) f() {
	x.mu.Lock()
	x.wg.Add(1)
	go func() {
		defer x.wg.Done()
		x.c.Fetch("dataset")
	}()
	x.mu.Unlock()
	x.wg.Wait()
}
`,
			want: 0,
		},
		{
			name: "lint:ignore suppresses",
			src: `package fixture

import "sync"

type q struct {
	mu sync.Mutex
	ch chan int
}

func (s *q) f() {
	s.mu.Lock()
	//lint:ignore lockio reason: buffered hand-off channel, never blocks
	s.ch <- 1
	s.mu.Unlock()
}
`,
			want: 0,
		},
	})
}
