package analysis_test

import "testing"

func TestErrcheck(t *testing.T) {
	runCases(t, "errcheck", []checkerCase{
		{
			name: "dropped error from package function",
			src: `package fixture

func fail() error { return nil }

func f() { fail() }
`,
			want:       1,
			wantSubstr: "dropped",
		},
		{
			name: "dropped error from method with value result pair",
			src: `package fixture

type db struct{}

func (db) Exec(q string) (int, error) { return 0, nil }

func f() {
	var d db
	d.Exec("insert")
}
`,
			want: 1,
		},
		{
			name: "explicit blank assignment is handled",
			src: `package fixture

func fail() error { return nil }

func f() { _ = fail() }
`,
			want: 0,
		},
		{
			name: "fmt.Println to stdout is allowlisted",
			src: `package fixture

import "fmt"

func f() { fmt.Println("hello") }
`,
			want: 0,
		},
		{
			name: "fmt.Fprintf into bytes.Buffer is allowlisted",
			src: `package fixture

import (
	"bytes"
	"fmt"
)

func f() string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "x=%d", 1)
	buf.WriteString("tail")
	return buf.String()
}
`,
			want: 0,
		},
		{
			name: "hash writes are allowlisted",
			src: `package fixture

import "hash/fnv"

func f() uint32 {
	h := fnv.New32a()
	h.Write([]byte("key"))
	return h.Sum32()
}
`,
			want: 0,
		},
		{
			name: "fmt.Fprintf to arbitrary writer is flagged",
			src: `package fixture

import (
	"fmt"
	"io"
)

func f(w io.Writer) { fmt.Fprintf(w, "x") }
`,
			want: 1,
		},
		{
			name: "cmd tree is out of scope",
			path: "applab/cmd/fixture",
			src: `package main

func fail() error { return nil }

func main() { fail() }
`,
			want: 0,
		},
		{
			name: "lint:ignore suppresses with reason",
			src: `package fixture

func fail() error { return nil }

func f() {
	//lint:ignore errcheck reason: best-effort teardown in a demo fixture
	fail()
}
`,
			want: 0,
		},
	})
}
