package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// neverFailWriters are receiver/argument types whose Write-family
// methods are documented (or guaranteed by construction) never to return
// a non-nil error: in-memory buffers and hashes. Dropping their errors
// is idiomatic, so fmt.Fprint* into them and their own methods are
// allowlisted.
var neverFailWriters = map[string]bool{
	"bytes.Buffer":     true,
	"*bytes.Buffer":    true,
	"strings.Builder":  true,
	"*strings.Builder": true,
	"hash.Hash":        true,
	"hash.Hash32":      true,
	"hash.Hash64":      true,
}

// errcheckChecker flags statements that drop an error result on the
// floor. It is scoped to internal/... packages: the cmd/ and examples/
// trees are demo drivers where best-effort printing is the point.
func errcheckChecker() Checker {
	return Checker{
		Name: "errcheck",
		Doc:  "error results in internal/... must be handled or explicitly assigned",
		Run:  runErrcheck,
	}
}

func runErrcheck(pass *Pass) []Finding {
	if !strings.Contains(pass.Path, "internal/") {
		return nil
	}
	var out []Finding
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok || !resultsIncludeError(pass.Info, call) {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if errAllowlisted(pass.Info, call, fn) {
				return true
			}
			out = append(out, pass.finding(call.Pos(), "errcheck",
				"result of %s includes an error that is dropped; handle it or assign explicitly", calleeName(fn, call)))
			return true
		})
	}
	return out
}

// errAllowlisted reports whether the dropped error is one of the
// sanctioned cases: fmt printing to stdout, fmt.Fprint* into a
// never-fail writer, or a method called on a never-fail writer.
func errAllowlisted(info *types.Info, call *ast.CallExpr, fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if isPkgFunc(fn, "fmt") {
		if strings.HasPrefix(fn.Name(), "Print") {
			return true
		}
		if strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
			return neverFailWriters[exprTypeString(info, call.Args[0])]
		}
		return false
	}
	// Judge methods by the static type of the value they are called on
	// (hash.Hash32's Write resolves to io.Writer's; the operand type is
	// what the reader sees).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if neverFailWriters[exprTypeString(info, sel.X)] {
			return true
		}
	}
	return neverFailWriters[recvTypeString(fn)]
}

// exprTypeString renders the static type of expr with full package
// paths, or "".
func exprTypeString(info *types.Info, expr ast.Expr) string {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return ""
	}
	return types.TypeString(tv.Type, nil)
}

// calleeName renders the callee for the finding message.
func calleeName(fn *types.Func, call *ast.CallExpr) string {
	if fn == nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return sel.Sel.Name
		}
		return "call"
	}
	if recv := recvTypeString(fn); recv != "" {
		return "(" + recv + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
