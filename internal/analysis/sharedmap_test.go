package analysis_test

import "testing"

func TestSharedmap(t *testing.T) {
	runCases(t, "sharedmap", []checkerCase{
		{
			name: "unguarded map write on type whose method spawns goroutines",
			src: `package fixture

import "sync"

type store struct {
	owner map[string]int
}

func (s *store) fanout() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait()
}

func (s *store) assign(k string) {
	s.owner[k] = 1
}
`,
			want:       1,
			wantSubstr: "without a guarding mutex",
		},
		{
			name: "unguarded map write on type captured in a goroutine",
			src: `package fixture

import "sync"

type tally struct {
	counts map[string]int
}

func observe(t *tally) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = t
	}()
	wg.Wait()
}

func bump(t *tally, k string) {
	t.counts[k]++
}
`,
			want: 1,
		},
		{
			name: "delete counts as a write",
			src: `package fixture

import "sync"

type reg struct {
	m map[string]int
}

func (r *reg) fanout() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}

func (r *reg) drop(k string) {
	delete(r.m, k)
}
`,
			want: 1,
		},
		{
			name: "mutex field in the struct is the guard",
			src: `package fixture

import "sync"

type store struct {
	mu    sync.Mutex
	owner map[string]int
}

func (s *store) fanout() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}

func (s *store) assign(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.owner[k] = 1
}
`,
			want: 0,
		},
		{
			name: "type never used from goroutines is fine",
			src: `package fixture

type index struct {
	m map[string]int
}

func (i *index) put(k string) {
	i.m[k] = 1
}
`,
			want: 0,
		},
		{
			name: "local map writes are fine",
			src: `package fixture

import "sync"

func f() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
	local := map[string]int{}
	local["k"] = 1
}
`,
			want: 0,
		},
		{
			name: "lint:ignore suppresses",
			src: `package fixture

import "sync"

type store struct {
	owner map[string]int
}

func (s *store) fanout() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}

func (s *store) assign(k string) {
	//lint:ignore sharedmap reason: assign only runs during single-threaded load
	s.owner[k] = 1
}
`,
			want: 0,
		},
	})
}
