package analysis_test

import "testing"

const nakedTimeSrc = `package fixture

import "time"

func eval() time.Time { return time.Now() }
`

func TestNakedtime(t *testing.T) {
	runCases(t, "nakedtime", []checkerCase{
		{
			name:       "time.Now in sparql evaluation is flagged",
			path:       "applab/internal/sparql",
			src:        nakedTimeSrc,
			want:       1,
			wantSubstr: "deterministic",
		},
		{
			name: "time.Now in geometry code is flagged",
			path: "applab/internal/geom",
			src:  nakedTimeSrc,
			want: 1,
		},
		{
			name: "time.Now outside pure packages is fine",
			path: "applab/internal/opendap",
			src:  nakedTimeSrc,
			want: 0,
		},
		{
			name: "other time functions are fine",
			path: "applab/internal/sparql",
			src: `package fixture

import "time"

func eval(at time.Time) time.Time { return at.Add(time.Hour) }

func epoch() time.Time { return time.Unix(0, 0) }
`,
			want: 0,
		},
		{
			name: "lint:ignore suppresses",
			path: "applab/internal/sparql",
			src: `package fixture

import "time"

func eval() time.Time {
	//lint:ignore nakedtime reason: NOW() builtin is specified as wall clock
	return time.Now()
}
`,
			want: 0,
		},
	})
}
