package analysis

import (
	"strings"
	"testing"
)

// cfgLoader has its own file set so white-box CFG tests don't interfere
// with the shared external-test loader.
var cfgLoader = NewLoader()

// buildFixtureCFG type-checks src (a fixture package declaring func f)
// and builds the CFG of the first function body in the file.
func buildFixtureCFG(t *testing.T, src string) *CFG {
	t.Helper()
	pass, err := cfgLoader.CheckSource("applab/internal/cfgfixture", src)
	if err != nil {
		t.Fatalf("fixture does not type-check: %v", err)
	}
	bodies := collectFuncBodies(pass.Files[0])
	if len(bodies) == 0 {
		t.Fatal("no function bodies in fixture")
	}
	return BuildCFG(pass.Info, bodies[0].body)
}

// TestCFGShapes pins the rendered block structure of each control
// construct the builder lowers. The golden strings double as
// documentation of the lowering.
func TestCFGShapes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "straight line",
			src: `package cfgfixture
func f() int {
	x := 1
	x++
	return x
}
`,
			want: `b0(entry): AssignStmt IncDecStmt ReturnStmt -> b1
b1(exit): ->
b2: -> b1
`,
		},
		{
			name: "if without else",
			src: `package cfgfixture
func f(c bool) int {
	x := 0
	if c {
		x = 1
	}
	return x
}
`,
			// b0 ends in the condition; true edge first, then the skip
			// edge to the join block.
			want: `b0(entry): AssignStmt Ident -> b2 b3
b1(exit): ->
b2: AssignStmt -> b3
b3: ReturnStmt -> b1
b4: -> b1
`,
		},
		{
			name: "if with else",
			src: `package cfgfixture
func f(c bool) int {
	if c {
		return 1
	} else {
		return 2
	}
}
`,
			want: `b0(entry): Ident -> b2 b5
b1(exit): ->
b2: ReturnStmt -> b1
b3: -> b4
b4: -> b1
b5: ReturnStmt -> b1
b6: -> b4
`,
		},
		{
			name: "for with cond and post",
			src: `package cfgfixture
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
`,
			// b2 is the head (cond), b3 the body, b4 the after block, b5
			// the post block looping back to the head.
			want: `b0(entry): AssignStmt AssignStmt -> b2
b1(exit): ->
b2: BinaryExpr -> b3 b4
b3: AssignStmt -> b5
b4: ReturnStmt -> b1
b5: IncDecStmt -> b2
b6: -> b1
`,
		},
		{
			name: "range loop",
			src: `package cfgfixture
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
`,
			want: `b0(entry): AssignStmt -> b2
b1(exit): ->
b2: Ident -> b3 b4
b3: AssignStmt -> b2
b4: ReturnStmt -> b1
b5: -> b1
`,
		},
		{
			name: "switch with default and fallthrough",
			src: `package cfgfixture
func f(n int) int {
	x := 0
	switch n {
	case 0:
		x = 1
		fallthrough
	case 1:
		x = 2
	default:
		x = 3
	}
	return x
}
`,
			// The fallthrough clause edges into the next clause body
			// instead of the after block; a default clause removes the
			// head's direct edge to after.
			want: `b0(entry): AssignStmt Ident -> b3 b4 b5
b1(exit): ->
b2: ReturnStmt -> b1
b3: BasicLit AssignStmt -> b4
b4: BasicLit AssignStmt -> b2
b5: AssignStmt -> b2
b6: -> b1
`,
		},
		{
			name: "type switch",
			src: `package cfgfixture
func f(v any) int {
	switch v.(type) {
	case int:
		return 1
	case string:
		return 2
	}
	return 0
}
`,
			want: `b0(entry): ExprStmt -> b3 b4 b2
b1(exit): ->
b2: ReturnStmt -> b1
b3: Ident ReturnStmt -> b1
b4: Ident ReturnStmt -> b1
b5: -> b2
b6: -> b2
b7: -> b1
`,
		},
		{
			name: "select",
			src: `package cfgfixture
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case <-b:
	}
	return 0
}
`,
			want: `b0(entry): -> b3 b5
b1(exit): ->
b2: ReturnStmt -> b1
b3: AssignStmt ReturnStmt -> b1
b4: -> b2
b5: ExprStmt -> b2
b6: -> b1
`,
		},
		{
			name: "terminal panic seals the path",
			src: `package cfgfixture
func f(c bool) int {
	if !c {
		panic("no")
	}
	return 1
}
`,
			// The panic block has no successors; the unreachable
			// trailing block (b4 here) is predecessor-less.
			want: `b0(entry): UnaryExpr -> b2 b4
b1(exit): ->
b2: ExprStmt ->
b3: -> b4
b4: ReturnStmt -> b1
b5: -> b1
`,
		},
		{
			name: "goto backward",
			src: `package cfgfixture
func f(n int) int {
loop:
	n--
	if n > 0 {
		goto loop
	}
	return n
}
`,
			want: `b0(entry): -> b2
b1(exit): ->
b2: IncDecStmt BinaryExpr -> b3 b5
b3: -> b2
b4: -> b5
b5: ReturnStmt -> b1
b6: -> b1
`,
		},
		{
			name: "labeled break",
			src: `package cfgfixture
func f(xs []int) int {
outer:
	for range xs {
		for range xs {
			break outer
		}
	}
	return 0
}
`,
			// break outer must edge to the outer loop's after block, not
			// the inner loop's.
			want: `b0(entry): -> b2
b1(exit): ->
b2: -> b3
b3: Ident -> b4 b5
b4: -> b6
b5: ReturnStmt -> b1
b6: Ident -> b7 b8
b7: -> b5
b8: -> b3
b9: -> b6
b10: -> b1
`,
		},
		{
			name: "continue",
			src: `package cfgfixture
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		if x < 0 {
			continue
		}
		s += x
	}
	return s
}
`,
			want: `b0(entry): AssignStmt -> b2
b1(exit): ->
b2: Ident -> b3 b4
b3: BinaryExpr -> b5 b7
b4: ReturnStmt -> b1
b5: -> b2
b6: -> b7
b7: AssignStmt -> b2
b8: -> b1
`,
		},
		{
			name: "defer is an ordinary node",
			src: `package cfgfixture
func f() int {
	defer f2()
	return 1
}
func f2() {}
`,
			want: `b0(entry): DeferStmt ReturnStmt -> b1
b1(exit): ->
b2: -> b1
`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := buildFixtureCFG(t, c.src)
			if got := cfg.String(); got != c.want {
				t.Errorf("CFG mismatch\n got:\n%s\nwant:\n%s", got, c.want)
			}
		})
	}
}

// TestCFGLoops checks the loop metadata the ctx checkers consume.
func TestCFGLoops(t *testing.T) {
	cfg := buildFixtureCFG(t, `package cfgfixture
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		for i := 0; i < x; i++ {
			s++
		}
	}
	return s
}
`)
	if len(cfg.Loops) != 2 {
		t.Fatalf("want 2 loops, got %d", len(cfg.Loops))
	}
	for _, lp := range cfg.Loops {
		if lp.Head == nil || lp.Body == nil || lp.After == nil {
			t.Errorf("loop %T has nil blocks: %+v", lp.Stmt, lp)
		}
		// The head must reach the body, and some block in the body
		// region must edge back to the head.
		foundBody := false
		for _, s := range lp.Head.Succs {
			if s == lp.Body {
				foundBody = true
			}
		}
		if !foundBody {
			t.Errorf("loop head b%d does not edge to body b%d", lp.Head.Index, lp.Body.Index)
		}
	}
}

// TestCFGPredsReachable covers the derived views used by the solver and
// the checkers.
func TestCFGPredsReachable(t *testing.T) {
	cfg := buildFixtureCFG(t, `package cfgfixture
func f(c bool) int {
	if c {
		return 1
	}
	panic("no")
}
`)
	preds := cfg.Preds()
	reach := cfg.Reachable()
	// Of the exit's predecessors only the return block is reachable; the
	// sealed fall-off block also edges there but no path reaches it.
	live := 0
	for _, p := range preds[cfg.Exit] {
		if reach[p] {
			live++
		}
	}
	if live != 1 {
		t.Errorf("exit should have exactly the return as live predecessor, got %d", live)
	}
	if !reach[cfg.Entry] || !reach[cfg.Exit] {
		t.Error("entry and exit must be reachable")
	}
	// The block after the panic (fall-off path) is sealed: unreachable.
	unreachable := 0
	for _, b := range cfg.Blocks {
		if !reach[b] {
			unreachable++
		}
	}
	if unreachable == 0 {
		t.Error("expected at least one unreachable block after panic")
	}
}

// TestTerminalCalls pins which callees seal a path.
func TestTerminalCalls(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		terminal bool
	}{
		{
			name: "os.Exit",
			src: `package cfgfixture
import "os"
func f() { os.Exit(1) }
`,
			terminal: true,
		},
		{
			name: "log.Fatalf",
			src: `package cfgfixture
import "log"
func f() { log.Fatalf("x") }
`,
			terminal: true,
		},
		{
			name: "runtime.Goexit",
			src: `package cfgfixture
import "runtime"
func f() { runtime.Goexit() }
`,
			terminal: true,
		},
		{
			name: "shadowed panic is not terminal",
			src: `package cfgfixture
func panic(s string) {}
func f() { panic("fine") }
`,
			terminal: false,
		},
		{
			name: "ordinary call",
			src: `package cfgfixture
import "fmt"
func f() { fmt.Println("x") }
`,
			terminal: false,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := buildFixtureCFG(t, c.src)
			// A terminal call seals the path: the exit block gains a
			// predecessor only via the sealed (empty) trailing block,
			// which is unreachable, so the exit is unreachable too.
			reach := cfg.Reachable()
			if c.terminal && reach[cfg.Exit] {
				t.Errorf("call should be terminal; exit still reachable:\n%s", cfg)
			}
			if !c.terminal && !reach[cfg.Exit] {
				t.Errorf("call should not be terminal; exit unreachable:\n%s", cfg)
			}
		})
	}
}

// TestCollectFuncBodies checks literal/decl pairing and source order.
func TestCollectFuncBodies(t *testing.T) {
	pass, err := cfgLoader.CheckSource("applab/internal/cfgfixture", `package cfgfixture
var hook = func() {}
func a() {
	g := func() {}
	g()
}
func b() {}
`)
	if err != nil {
		t.Fatal(err)
	}
	bodies := collectFuncBodies(pass.Files[0])
	if len(bodies) != 4 {
		t.Fatalf("want 4 bodies (hook lit, a, a's lit, b), got %d", len(bodies))
	}
	var kinds []string
	for _, fb := range bodies {
		switch {
		case fb.lit != nil && fb.decl == nil:
			kinds = append(kinds, "lit")
		case fb.lit != nil:
			kinds = append(kinds, "lit-in-"+fb.decl.Name.Name)
		default:
			kinds = append(kinds, fb.decl.Name.Name)
		}
	}
	want := "lit a lit-in-a b"
	if got := strings.Join(kinds, " "); got != want {
		t.Errorf("bodies = %q, want %q", got, want)
	}
}
