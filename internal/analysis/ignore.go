package analysis

import (
	"go/token"
	"sort"
	"strconv"
	"strings"
)

const ignorePrefix = "//lint:ignore"

// ignoreDirective is one parsed //lint:ignore comment. used flips when
// the directive actually suppresses a finding, so stale suppressions
// can be reported.
type ignoreDirective struct {
	pos    token.Pos
	checks map[string]bool
	used   bool
}

// ignoreSet maps "<file>:<line>" to the directives on that line.
type ignoreSet map[string][]*ignoreDirective

// suppress removes findings matched by //lint:ignore directives from
// *findings and returns diagnostics for malformed or unused directives.
// A directive suppresses the named check(s) on its own line (end-of-line
// comment) and on the line immediately below (comment-above style), and
// must carry an enforced reason:
//
//	//lint:ignore <check> reason: <why this is safe>
//
// A directive whose checks all ran yet matched nothing is itself
// reported: stale suppressions hide future regressions. ran is the set
// of checker names that produced the findings; fullSet marks a run of
// every registered checker (only then can a wildcard directive be
// proven unused).
func suppress(pass *Pass, findings *[]Finding, ran map[string]bool, fullSet bool) []Finding {
	ignores, bad := collectIgnores(pass)
	kept := (*findings)[:0]
	for _, f := range *findings {
		if ignores.matches(f) {
			continue
		}
		kept = append(kept, f)
	}
	*findings = kept

	var stale []*ignoreDirective
	for _, ds := range ignores {
		for _, d := range ds {
			if d.used {
				continue
			}
			covered := true
			for c := range d.checks {
				if c == "*" {
					covered = covered && fullSet
				} else if !ran[c] {
					covered = false
				}
			}
			if covered {
				stale = append(stale, d)
			}
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i].pos < stale[j].pos })
	for _, d := range stale {
		bad = append(bad, pass.finding(d.pos, "directive",
			"unused %s directive: the suppressed check reports nothing here; delete it", ignorePrefix))
	}
	return bad
}

func (s ignoreSet) matches(f Finding) bool {
	hit := false
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, d := range s[key(f.Pos.Filename, line)] {
			if d.checks["*"] || d.checks[f.Check] {
				d.used = true
				hit = true
			}
		}
	}
	return hit
}

func key(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// collectIgnores parses every //lint:ignore directive in the pass.
func collectIgnores(pass *Pass) (ignoreSet, []Finding) {
	ignores := ignoreSet{}
	var bad []Finding
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 3 || fields[1] != "reason:" {
					bad = append(bad, pass.finding(c.Pos(), "directive",
						"suppression needs an enforced reason: want %s <check> reason: <why>", ignorePrefix))
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				d := &ignoreDirective{pos: c.Pos(), checks: map[string]bool{}}
				for _, name := range strings.Split(fields[0], ",") {
					d.checks[name] = true
				}
				k := key(pos.Filename, pos.Line)
				ignores[k] = append(ignores[k], d)
			}
		}
	}
	return ignores, bad
}
