package analysis

import (
	"strconv"
	"strings"
)

const ignorePrefix = "//lint:ignore"

// ignoreSet maps "<file>:<line>" to the set of check names suppressed on
// that line. The wildcard entry "*" suppresses every check.
type ignoreSet map[string]map[string]bool

// suppress removes findings matched by //lint:ignore directives from
// *findings and returns diagnostics for malformed directives. A
// directive suppresses the named check(s) on its own line (end-of-line
// comment) and on the line immediately below (comment-above style).
func suppress(pass *Pass, findings *[]Finding) []Finding {
	ignores, bad := collectIgnores(pass)
	kept := (*findings)[:0]
	for _, f := range *findings {
		if ignores.matches(f) {
			continue
		}
		kept = append(kept, f)
	}
	*findings = kept
	return bad
}

func (s ignoreSet) matches(f Finding) bool {
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		checks := s[key(f.Pos.Filename, line)]
		if checks["*"] || checks[f.Check] {
			return true
		}
	}
	return false
}

func key(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// collectIgnores parses every //lint:ignore directive in the pass.
func collectIgnores(pass *Pass) (ignoreSet, []Finding) {
	ignores := ignoreSet{}
	var bad []Finding
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, pass.finding(c.Pos(), "directive",
						"malformed %s directive: want //lint:ignore <check> <reason>", ignorePrefix))
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				checks := ignores[key(pos.Filename, pos.Line)]
				if checks == nil {
					checks = map[string]bool{}
					ignores[key(pos.Filename, pos.Line)] = checks
				}
				for _, name := range strings.Split(fields[0], ",") {
					checks[name] = true
				}
			}
		}
	}
	return ignores, bad
}
