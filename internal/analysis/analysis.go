// Package analysis is the repo-specific static-analysis toolkit behind
// cmd/applab-lint. It is written against the standard library only
// (go/ast, go/parser, go/types, go/token, go/importer) to match the
// module's dependency-free go.mod.
//
// The checkers are tuned to this codebase's failure modes — shared
// mutable state behind the declarative query surface of the paper's
// on-the-fly workflow: mutexes held across OPeNDAP/HTTP calls, leaked
// fan-out goroutines, dropped errors, unguarded map fields on
// concurrently used types, and wall-clock reads inside pure query
// evaluation code.
//
// Findings can be suppressed with a directive on the offending line or
// the line above:
//
//	//lint:ignore <check> reason: <why>
//
// The reason: prefix is mandatory; a directive without one is itself
// reported, as is a directive that no longer suppresses anything.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by a checker. Fix, when non-nil,
// is a mechanical edit `applab-lint -fix` can apply.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
	Fix     *SuggestedFix
}

// String renders the finding in the driver's file:line: [check] message
// format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Pass is the per-package unit of work handed to every checker: the
// parsed files plus best-effort type information. Type info may be
// partial when the package has type errors; checkers must tolerate nil
// lookups.
type Pass struct {
	Fset  *token.FileSet
	Path  string // import path, e.g. applab/internal/opendap
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Checker is one composable analysis.
type Checker struct {
	Name string
	Doc  string
	Run  func(*Pass) []Finding
}

// All returns every registered checker in deterministic order.
func All() []Checker {
	return []Checker{
		closeflowChecker(),
		ctxflowChecker(),
		errcheckChecker(),
		errflowChecker(),
		goleakChecker(),
		lockflowChecker(),
		lockioChecker(),
		nakedtimeChecker(),
		sharedmapChecker(),
		telemetryChecker(),
	}
}

// ByName resolves a comma-separated checker list ("" or "all" means every
// checker).
func ByName(names string) ([]Checker, error) {
	all := All()
	if names == "" || names == "all" {
		return all, nil
	}
	byName := map[string]Checker{}
	for _, c := range all {
		byName[c.Name] = c
	}
	var out []Checker
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		c, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown check %q", n)
		}
		out = append(out, c)
	}
	return out, nil
}

// RunAll applies the checkers to the pass and returns the surviving
// findings (suppressions applied), sorted by position. Suppressions
// that match nothing from the checkers that ran are reported as
// "directive" findings.
func RunAll(pass *Pass, checkers []Checker) []Finding {
	var out []Finding
	ran := map[string]bool{}
	for _, c := range checkers {
		ran[c.Name] = true
		out = append(out, c.Run(pass)...)
	}
	out = append(out, suppress(pass, &out, ran, len(ran) >= len(All()))...)
	SortFindings(out)
	return out
}

// SortFindings orders findings by file, line, column, then check name.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}

// ---- shared type-info helpers ----

// calleeFunc resolves the static callee of a call, or nil for calls
// through function values and other dynamic forms. Explicit generic
// instantiations (f[int](), pkg.F[K, V]()) resolve to the generic
// function object.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch inst := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(inst.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(inst.X)
	}
	var id *ast.Ident
	switch fun := fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn belongs to pkgPath and is named one of
// names (any name when names is empty).
func isPkgFunc(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// recvTypeString returns the receiver type of a method callee rendered
// with full package paths ("*bytes.Buffer", "hash.Hash32"), or "".
func recvTypeString(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return types.TypeString(sig.Recv().Type(), nil)
}

// derefNamed unwraps pointers and returns the *types.Named beneath, if
// any.
func derefNamed(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// resultsIncludeError reports whether the call's result type contains an
// error value.
func resultsIncludeError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// finding builds a Finding at pos.
func (p *Pass) finding(pos token.Pos, check, format string, args ...any) Finding {
	return Finding{Pos: p.Fset.Position(pos), Check: check, Message: fmt.Sprintf(format, args...)}
}
