package analysis_test

import (
	"strings"
	"testing"

	"applab/internal/analysis"
)

// loader is shared across all checker tests so the source importer's
// cache of type-checked stdlib packages is reused.
var loader = analysis.NewLoader()

// checkerCase is one table entry: an in-memory fixture, the checker to
// run, and the findings it must (or must not) produce.
type checkerCase struct {
	name string
	path string // import path of the fixture; defaults to applab/internal/fixture
	src  string
	want int // expected finding count
	// wantSubstr, when set, must appear in every finding message.
	wantSubstr string
}

// runChecker type-checks the fixture and runs one checker over it, with
// //lint:ignore suppression applied exactly as the driver does.
func runChecker(t *testing.T, check string, c checkerCase) []analysis.Finding {
	t.Helper()
	path := c.path
	if path == "" {
		path = "applab/internal/fixture"
	}
	pass, err := loader.CheckSource(path, c.src)
	if err != nil {
		t.Fatalf("fixture %s does not type-check: %v", c.name, err)
	}
	checkers, err := analysis.ByName(check)
	if err != nil {
		t.Fatalf("ByName(%q): %v", check, err)
	}
	return analysis.RunAll(pass, checkers)
}

// runCases drives a checker over a table of fixtures.
func runCases(t *testing.T, check string, cases []checkerCase) {
	t.Helper()
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := runChecker(t, check, c)
			if len(got) != c.want {
				t.Fatalf("want %d finding(s), got %d: %v", c.want, len(got), got)
			}
			for _, f := range got {
				if f.Check != check && f.Check != "directive" {
					t.Errorf("finding from unexpected check %q: %v", f.Check, f)
				}
				if c.wantSubstr != "" && !strings.Contains(f.Message, c.wantSubstr) {
					t.Errorf("finding message %q lacks %q", f.Message, c.wantSubstr)
				}
			}
		})
	}
}

func TestMalformedIgnoreDirective(t *testing.T) {
	got := runChecker(t, "errcheck", checkerCase{
		name: "malformed",
		src: `package fixture

func fail() error { return nil }

func f() {
	//lint:ignore errcheck
	fail()
}
`,
	})
	// The directive lacks a reason: it must not suppress, and it must be
	// reported itself.
	var checks []string
	for _, f := range got {
		checks = append(checks, f.Check)
	}
	if len(got) != 2 {
		t.Fatalf("want [directive errcheck], got %v", got)
	}
	if checks[0] != "directive" && checks[1] != "directive" {
		t.Errorf("malformed directive not reported: %v", got)
	}
}

func TestWildcardIgnore(t *testing.T) {
	got := runChecker(t, "errcheck", checkerCase{
		name: "wildcard",
		src: `package fixture

func fail() error { return nil }

func f() {
	//lint:ignore * reason: migration shim, remove with the v2 API
	fail()
}
`,
	})
	if len(got) != 0 {
		t.Fatalf("wildcard ignore did not suppress: %v", got)
	}
}

// TestLoadSelf smoke-tests the package loader on this package's own
// directory: module-relative import paths must come out right.
func TestLoadSelf(t *testing.T) {
	pkgs, err := loader.Load([]string{"."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want 1 package, got %d", len(pkgs))
	}
	if got := pkgs[0].Pass.Path; got != "applab/internal/analysis" {
		t.Fatalf("import path = %q, want applab/internal/analysis", got)
	}
	if len(pkgs[0].TypeErrors) > 0 {
		t.Fatalf("type errors in self-load: %v", pkgs[0].TypeErrors)
	}
	if len(pkgs[0].Pass.Files) == 0 {
		t.Fatal("no files loaded")
	}
}
