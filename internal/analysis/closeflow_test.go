package analysis_test

import "testing"

const closeflowPrelude = `package fixture

import (
	"net"
	"net/http"
	"os"
)

func sink(f *os.File)     {}
func sinkConn(c net.Conn) {}

var keep *os.File

var _ = http.DefaultClient
`

func TestCloseflow(t *testing.T) {
	runCases(t, "closeflow", []checkerCase{
		{
			name: "file opened and returned without close on error path is flagged",
			src: closeflowPrelude + `
func leak(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	if err != nil {
		return nil, err // f leaks here
	}
	f.Close()
	return buf, nil
}
`,
			want:       1,
			wantSubstr: "not be closed on every path",
		},
		{
			name: "deferred close covers every path",
			src: closeflowPrelude + `
func ok(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	if _, err := f.Read(buf); err != nil {
		return nil, err
	}
	return buf, nil
}
`,
			want: 0,
		},
		{
			name: "close on both branches is fine",
			src: closeflowPrelude + `
func ok(path string, quick bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if quick {
		f.Close()
		return nil
	}
	f.Close()
	return nil
}
`,
			want: 0,
		},
		{
			name: "returning the resource transfers ownership",
			src: closeflowPrelude + `
func open(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}
`,
			want: 0,
		},
		{
			name: "passing the resource to a call transfers ownership",
			src: closeflowPrelude + `
func handoff(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	sink(f)
	return nil
}
`,
			want: 0,
		},
		{
			name: "storing the resource escapes it",
			src: closeflowPrelude + `
func stash(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	keep = f
	return nil
}
`,
			want: 0,
		},
		{
			name: "capture by closure escapes it",
			src: closeflowPrelude + `
func capture(path string) (func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return func() { f.Close() }, nil
}
`,
			want: 0,
		},
		{
			name: "missing close on the early-return branch is flagged",
			src: closeflowPrelude + `
func listen(addr string, ready chan<- struct{}) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	select {
	case ready <- struct{}{}:
	default:
		return nil // ln leaks
	}
	return ln.Close()
}
`,
			want: 1,
		},
		{
			name: "http response body closed via defer",
			src: closeflowPrelude + `
func fetch(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return nil
}
`,
			want: 0,
		},
		{
			name: "http response never closed is flagged",
			src: closeflowPrelude + `
func fetch(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}
`,
			want:       1,
			wantSubstr: "resp",
		},
		{
			name: "open in a loop with close each iteration is fine",
			src: closeflowPrelude + `
func sum(paths []string) error {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		f.Close()
	}
	return nil
}
`,
			want: 0,
		},
		{
			name: "open in a loop leaking each iteration is flagged",
			src: closeflowPrelude + `
func sum(paths []string) (int, error) {
	n := 0
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return 0, err
		}
		st, err := f.Stat()
		if err != nil {
			return 0, err // f leaks
		}
		n += int(st.Size())
		f.Close()
	}
	return n, nil
}
`,
			want: 1,
		},
		{
			name: "suggested fix lands after the error guard",
			src: closeflowPrelude + `
func read(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	if err != nil {
		return 0, err
	}
	return n, nil
}
`,
			want: 1,
		},
		{
			name: "lint:ignore suppresses with a reason",
			src: closeflowPrelude + `
func intentional(path string) error {
	//lint:ignore closeflow reason: fd intentionally held until process exit
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	_ = f.Fd()
	return nil
}
`,
			want: 0,
		},
	})
}

// TestCloseflowFix checks the mechanical fix: never-closed,
// never-escaping resources get a defer inserted after the error guard.
func TestCloseflowFix(t *testing.T) {
	got := runChecker(t, "closeflow", checkerCase{
		name: "fix",
		src: closeflowPrelude + `
func read(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	if err != nil {
		return 0, err
	}
	return n, nil
}
`,
	})
	if len(got) != 1 {
		t.Fatalf("want 1 finding, got %v", got)
	}
	fix := got[0].Fix
	if fix == nil {
		t.Fatal("finding has no suggested fix")
	}
	if fix.Text != "defer f.Close()" {
		t.Errorf("fix text = %q, want defer f.Close()", fix.Text)
	}
	// The anchor must be the end of the error guard, i.e. after the
	// `}` of `if err != nil {...}` — past the open itself.
	if fix.InsertAfter.Line <= got[0].Pos.Line+1 {
		t.Errorf("fix anchored at line %d; want after the err guard below line %d", fix.InsertAfter.Line, got[0].Pos.Line)
	}
}

// TestCloseflowNoFixWhenPartiallyClosed: a resource closed on some paths
// must not get a defer (it would double-close).
func TestCloseflowNoFixWhenPartiallyClosed(t *testing.T) {
	got := runChecker(t, "closeflow", checkerCase{
		name: "partial",
		src: closeflowPrelude + `
func read(path string, quick bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if quick {
		return nil // leak
	}
	f.Close()
	return nil
}
`,
	})
	if len(got) != 1 {
		t.Fatalf("want 1 finding, got %v", got)
	}
	if got[0].Fix != nil {
		t.Errorf("partially-closed resource must not get a mechanical fix, got %q", got[0].Fix.Text)
	}
}
