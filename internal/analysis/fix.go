package analysis

import (
	"bytes"
	"fmt"
	"go/format"
	"go/token"
	"sort"
)

// SuggestedFix is a mechanical, provably-safe edit attached to a
// finding: insert one statement (e.g. `defer mu.Unlock()`) on a new
// line after the position's line. Fixes are pure insertions so applying
// several to one file never invalidates the others' positions, as long
// as they are applied bottom-up.
type SuggestedFix struct {
	// InsertAfter is the source position after whose line the statement
	// is inserted.
	InsertAfter token.Position
	// Text is the statement to insert, without indentation or newline.
	Text string
}

// ApplyFixes inserts each fix's text on a new line after the fix's
// line, reusing the indentation of the anchor line, then reformats. The
// input is one file's source; every fix must target it. Returns the
// rewritten source.
func ApplyFixes(src []byte, fixes []SuggestedFix) ([]byte, error) {
	if len(fixes) == 0 {
		return src, nil
	}
	lines := bytes.Split(src, []byte("\n"))
	sorted := append([]SuggestedFix(nil), fixes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].InsertAfter.Line > sorted[j].InsertAfter.Line })
	for _, fix := range sorted {
		ln := fix.InsertAfter.Line // 1-based
		if ln < 1 || ln > len(lines) {
			return nil, fmt.Errorf("fix anchor line %d out of range (file has %d lines)", ln, len(lines))
		}
		anchor := lines[ln-1]
		indent := anchor[:len(anchor)-len(bytes.TrimLeft(anchor, " \t"))]
		ins := append(append([]byte(nil), indent...), fix.Text...)
		rest := append([][]byte(nil), lines[ln:]...)
		lines = append(lines[:ln:ln], ins)
		lines = append(lines, rest...)
	}
	out := bytes.Join(lines, []byte("\n"))
	formatted, err := format.Source(out)
	if err != nil {
		return nil, fmt.Errorf("fixed source does not parse: %w", err)
	}
	return formatted, nil
}
