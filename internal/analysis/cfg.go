package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

/// cfg.go builds an intraprocedural control-flow graph over go/ast: the
// foundation for the path-sensitive checkers (lockflow, closeflow,
// errflow, ctxflow). The builder handles if/else, for, range, switch,
// type switch, select, labeled statements, break/continue (labeled and
// not), goto, fallthrough, return, and terminal calls (panic, os.Exit,
/// log.Fatal*). Defer statements appear as ordinary nodes in their block:
// a transfer function that sees one knows the deferred call runs at
// every function exit reached from that point.
//
// Blocks and successor lists are in deterministic construction order, so
// dataflow results (and therefore findings) are stable across runs.

// Block is one basic block: a maximal straight-line sequence of
// statements and condition expressions.
type Block struct {
	Index int
	// Nodes holds statements and control expressions in execution
	// order. Condition expressions of if/for appear as the last node of
	// their block.
	Nodes []ast.Node
	// Succs are the successor blocks. When Cond is non-nil there are
	// exactly two: Succs[0] is the true edge, Succs[1] the false edge.
	Succs []*Block
	// Cond is the branch condition ending this block, if any.
	Cond ast.Expr
}

// Loop records one for/range loop's blocks: Head is the
// condition/iteration block (the back-edge target), Body the first block
// of the loop body, After the block control reaches on normal loop exit.
type Loop struct {
	Stmt  ast.Stmt // *ast.ForStmt or *ast.RangeStmt
	Head  *Block
	Body  *Block
	After *Block
}

// CFG is the control-flow graph of one function body. Exit is a single
// synthetic block that every return statement (and the fall-off-the-end
// path) edges to; terminal calls (panic, os.Exit) edge nowhere.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	Loops  []Loop
}

// BuildCFG constructs the CFG of a function body. info may be nil; it is
// used only to recognize terminal calls precisely.
func BuildCFG(info *types.Info, body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:          &CFG{},
		info:         info,
		labels:       map[string]*Block{},
		pendingGotos: map[string][]*Block{},
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.cfg.Exit) // fall off the end
	// Unresolved gotos (labels that never appear — type error) dangle.
	return b.cfg
}

type loopFrame struct {
	label     string
	cont, brk *Block // cont == nil for switch/select frames
}

type cfgBuilder struct {
	cfg    *CFG
	info   *types.Info
	cur    *Block
	frames []loopFrame

	labels       map[string]*Block
	pendingGotos map[string][]*Block

	// nextLabel is set by a LabeledStmt so the labeled loop/switch
	// registers its break/continue targets under that name.
	nextLabel string

	// sawFallthrough is set when a clause body ends in fallthrough.
	sawFallthrough bool
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// seal ends the current path: subsequent statements are unreachable and
// collect in a fresh, predecessor-less block.
func (b *cfgBuilder) seal() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	label := b.nextLabel
	b.nextLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isTerminalCall(b.info, call) {
			b.seal()
		}
	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.edge(b.cur, b.cfg.Exit)
		b.seal()
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Tag)
		}
		b.switchClauses(s.Body, label)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		b.switchClauses(s.Body, label)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	case *ast.LabeledStmt:
		// The label block is both the goto target and the entry of the
		// labeled statement.
		target := b.newBlock()
		b.edge(b.cur, target)
		b.cur = target
		b.labels[s.Label.Name] = target
		for _, from := range b.pendingGotos[s.Label.Name] {
			b.edge(from, target)
		}
		delete(b.pendingGotos, s.Label.Name)
		b.nextLabel = s.Label.Name
		b.stmt(s.Stmt)
	case *ast.BranchStmt:
		b.branchStmt(s)
	default:
		// Assign, Decl, IncDec, Send, Go, Defer, Empty, Bad: straight
		// line.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	cond := b.cur
	cond.Nodes = append(cond.Nodes, s.Cond)
	cond.Cond = s.Cond

	then := b.newBlock()
	b.edge(cond, then)
	b.cur = then
	b.stmt(s.Body)
	thenEnd := b.cur

	after := b.newBlock()
	if s.Else != nil {
		els := b.newBlock()
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, after)
	} else {
		b.edge(cond, after)
	}
	b.edge(thenEnd, after)
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	b.edge(b.cur, head)
	body := b.newBlock()
	after := b.newBlock()
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		head.Cond = s.Cond
		head.Succs = []*Block{body, after}
	} else {
		head.Succs = []*Block{body}
	}
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		cont = post
	}
	b.frames = append(b.frames, loopFrame{label: label, cont: cont, brk: after})
	b.cur = body
	b.stmt(s.Body)
	b.edge(b.cur, cont)
	if post != nil {
		b.cur = post
		b.stmt(s.Post)
		b.edge(b.cur, head)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cfg.Loops = append(b.cfg.Loops, Loop{Stmt: s, Head: head, Body: body, After: after})
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock()
	b.edge(b.cur, head)
	// The ranged expression (and per-iteration key/value binding) lives
	// in the head so transfer functions see the reads.
	head.Nodes = append(head.Nodes, s.X)
	body := b.newBlock()
	after := b.newBlock()
	head.Succs = []*Block{body, after}
	b.frames = append(b.frames, loopFrame{label: label, cont: head, brk: after})
	b.cur = body
	b.stmt(s.Body)
	b.edge(b.cur, head)
	b.frames = b.frames[:len(b.frames)-1]
	b.cfg.Loops = append(b.cfg.Loops, Loop{Stmt: s, Head: head, Body: body, After: after})
	b.cur = after
}

// switchClauses lowers the shared clause structure of switch and type
// switch. Every clause is entered from the head; fallthrough chains a
// clause's end into the next clause's body.
func (b *cfgBuilder) switchClauses(body *ast.BlockStmt, label string) {
	head := b.cur
	after := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, brk: after})

	var clauses []*ast.CaseClause
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.cur.Nodes = append(b.cur.Nodes, e)
		}
		b.sawFallthrough = false
		b.stmtList(cc.Body)
		if b.sawFallthrough && i+1 < len(clauses) {
			b.edge(b.cur, blocks[i+1])
			b.sawFallthrough = false
		} else {
			b.edge(b.cur, after)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	after := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, brk: after})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		cb := b.newBlock()
		b.edge(head, cb)
		b.cur = cb
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok.String() {
	case "break":
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if s.Label == nil || f.label == s.Label.Name {
				b.edge(b.cur, f.brk)
				break
			}
		}
		b.seal()
	case "continue":
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.cont == nil {
				continue // switch/select frames are not continue targets
			}
			if s.Label == nil || f.label == s.Label.Name {
				b.edge(b.cur, f.cont)
				break
			}
		}
		b.seal()
	case "goto":
		if s.Label != nil {
			if target, ok := b.labels[s.Label.Name]; ok {
				b.edge(b.cur, target)
			} else {
				b.pendingGotos[s.Label.Name] = append(b.pendingGotos[s.Label.Name], b.cur)
			}
		}
		b.seal()
	case "fallthrough":
		b.sawFallthrough = true
	}
}

// isTerminalCall reports whether the call never returns: the panic
// builtin, os.Exit, runtime.Goexit, or the log.Fatal family.
func isTerminalCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if info == nil {
			return true
		}
		_, isBuiltin := info.Uses[id].(*types.Builtin)
		return isBuiltin
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "log":
		return strings.HasPrefix(fn.Name(), "Fatal")
	}
	return false
}

// String renders the CFG for tests and debugging: one line per block in
// index order, listing node kinds and successor indices.
func (c *CFG) String() string {
	var sb strings.Builder
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "b%d", blk.Index)
		switch blk {
		case c.Entry:
			sb.WriteString("(entry)")
		case c.Exit:
			sb.WriteString("(exit)")
		}
		sb.WriteString(":")
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, " %s", nodeKind(n))
		}
		sb.WriteString(" ->")
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func nodeKind(n ast.Node) string {
	s := fmt.Sprintf("%T", n)
	s = strings.TrimPrefix(s, "*ast.")
	return s
}

// Preds computes the predecessor lists of every block, in deterministic
// order (by source block index, then successor position).
func (c *CFG) Preds() map[*Block][]*Block {
	preds := map[*Block][]*Block{}
	for _, blk := range c.Blocks {
		for _, s := range blk.Succs {
			preds[s] = append(preds[s], blk)
		}
	}
	return preds
}

// Reachable returns the set of blocks reachable from Entry.
func (c *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	stack := []*Block{c.Entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[blk] {
			continue
		}
		seen[blk] = true
		stack = append(stack, blk.Succs...)
	}
	return seen
}

// funcCFGs walks a file and yields every function body (declarations and
// literals) with its enclosing declaration name, in source order.
type funcBody struct {
	decl *ast.FuncDecl // nil for literals outside any decl (var init)
	lit  *ast.FuncLit  // nil for the declaration body itself
	body *ast.BlockStmt
}

func collectFuncBodies(file *ast.File) []funcBody {
	var out []funcBody
	for _, decl := range file.Decls {
		fd, _ := decl.(*ast.FuncDecl)
		var outer *ast.FuncDecl
		if fd != nil {
			outer = fd
			if fd.Body != nil {
				out = append(out, funcBody{decl: fd, body: fd.Body})
			}
		}
		ast.Inspect(decl, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, funcBody{decl: outer, lit: lit, body: lit.Body})
			}
			return true
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].body.Pos() < out[j].body.Pos() })
	return out
}
