package analysis_test

import "testing"

const errflowPrelude = `package fixture

import "errors"

func step() error      { return nil }
func load() (int, error) { return 0, nil }
func logErr(err error) {}

var errBoom = errors.New("boom")
`

func TestErrflow(t *testing.T) {
	runCases(t, "errflow", []checkerCase{
		{
			name: "overwrite before check is flagged",
			src: errflowPrelude + `
func run() error {
	err := step()
	err = step() // first error lost
	return err
}
`,
			want:       1,
			wantSubstr: "overwrites the error assigned at line",
		},
		{
			name: "check between assignments is fine",
			src: errflowPrelude + `
func run() error {
	err := step()
	if err != nil {
		return err
	}
	err = step()
	return err
}
`,
			want: 0,
		},
		{
			name: "error falling off a return path is flagged",
			src: errflowPrelude + `
func run() int {
	n, err := load()
	_ = err
	return n
}
`,
			want: 0, // blank assignment reads it: explicit discard is errcheck's territory
		},
		{
			name: "assigned error never consulted before return",
			src: errflowPrelude + `
func run() int {
	n, err := load()
	if n > 0 {
		return n
	}
	err = step()
	_ = err
	return 0
}
`,
			want:       1, // the load() error is overwritten unchecked on the n<=0 path
			wantSubstr: "overwrites",
		},
		{
			name: "dropped on every path out is flagged",
			src: errflowPrelude + `
func run() int {
	n, err := load()
	if n < 0 {
		panic(err)
	}
	return n // err unchecked on every path reaching this return
}
`,
			want:       1,
			wantSubstr: "never checked",
		},
		{
			name: "returning the error counts as checking",
			src: errflowPrelude + `
func run() (int, error) {
	n, err := load()
	return n, err
}
`,
			want: 0,
		},
		{
			name: "passing the error to a logger counts",
			src: errflowPrelude + `
func run() int {
	n, err := load()
	logErr(err)
	return n
}
`,
			want: 0,
		},
		{
			name: "fallback path clobbers the primary error",
			src: errflowPrelude + `
func run(fallback bool) error {
	err := step()
	if fallback {
		err = step() // primary error silently replaced
	}
	if err != nil {
		return err
	}
	return nil
}
`,
			want:       1,
			wantSubstr: "overwrites",
		},
		{
			name: "checked then reassigned on the same branch is fine",
			src: errflowPrelude + `
func run(fallback bool) error {
	err := step()
	if err != nil && fallback {
		err = step()
	}
	return err
}
`,
			want: 0,
		},
		{
			name: "named result checked by naked return",
			src: errflowPrelude + `
func run() (err error) {
	err = step()
	return
}
`,
			want: 0,
		},
		{
			name: "explicit nil reset is not an overwrite",
			src: errflowPrelude + `
func run() error {
	var err error
	err = step()
	logErr(err)
	err = nil
	return err
}
`,
			want: 0,
		},
		{
			name: "retry loop with per-iteration check is fine",
			src: errflowPrelude + `
func run() error {
	var err error
	for i := 0; i < 3; i++ {
		err = step()
		if err == nil {
			break
		}
	}
	return err
}
`,
			want: 0,
		},
		{
			name: "error read inside a deferred closure counts",
			src: errflowPrelude + `
func run() {
	err := step()
	defer func() { logErr(err) }()
}
`,
			want: 0,
		},
		{
			name: "lint:ignore suppresses with a reason",
			src: errflowPrelude + `
func run() error {
	err := step()
	//lint:ignore errflow reason: probe call, only the second attempt's error matters
	err = step()
	return err
}
`,
			want: 0,
		},
	})
}
