package analysis

import "testing"

// chain wires blocks into a CFG without parsing source: the dataflow
// solver only looks at Entry, Exit, Blocks, and Succs.
func testCFG(blocks ...*Block) *CFG {
	for i, b := range blocks {
		b.Index = i
	}
	return &CFG{Entry: blocks[0], Exit: blocks[len(blocks)-1], Blocks: blocks}
}

// intMax is a tiny max-lattice over int used by the solver tests: Join
// is max, Bottom is 0, Transfer adds a per-block weight.
func intMaxProblem(forward bool, weight func(*Block) int) Problem[int] {
	return Problem[int]{
		Forward:  forward,
		Boundary: 1,
		Bottom:   func() int { return 0 },
		Join:     func(a, b int) int { return max(a, b) },
		Equal:    func(a, b int) bool { return a == b },
		Transfer: func(b *Block, in int) int { return in + weight(b) },
	}
}

func TestSolveForwardDiamond(t *testing.T) {
	entry := &Block{}
	left := &Block{}
	right := &Block{}
	exit := &Block{}
	entry.Succs = []*Block{left, right}
	left.Succs = []*Block{exit}
	right.Succs = []*Block{exit}
	cfg := testCFG(entry, left, right, exit)

	// left weighs 10, right weighs 100: the join at exit must take the
	// heavier path under the max lattice.
	weights := map[*Block]int{left: 10, right: 100}
	facts := Solve(cfg, intMaxProblem(true, func(b *Block) int { return weights[b] }))

	if got := facts[exit].In; got != 101 {
		t.Errorf("exit In = %d, want 101 (boundary 1 + right 100)", got)
	}
	if got := facts[left].Out; got != 11 {
		t.Errorf("left Out = %d, want 11", got)
	}
}

func TestSolveBackward(t *testing.T) {
	entry := &Block{}
	mid := &Block{}
	exit := &Block{}
	entry.Succs = []*Block{mid}
	mid.Succs = []*Block{exit}
	cfg := testCFG(entry, mid, exit)

	weights := map[*Block]int{mid: 5, entry: 2}
	facts := Solve(cfg, intMaxProblem(false, func(b *Block) int { return weights[b] }))

	// Backward: the boundary fact (1) enters at Exit and flows against
	// the edges; entry accumulates exit(0) + mid(5) + entry(2) + boundary.
	if got := facts[entry].Out; got != 8 {
		t.Errorf("entry Out = %d, want 8", got)
	}
	if facts[exit].In != 1 {
		t.Errorf("exit In = %d, want boundary 1", facts[exit].In)
	}
}

func TestSolveEdgeRefinement(t *testing.T) {
	cond := &Block{}
	then := &Block{}
	els := &Block{}
	exit := &Block{}
	cond.Succs = []*Block{then, els} // Succs[0] = true edge
	then.Succs = []*Block{exit}
	els.Succs = []*Block{exit}
	cfg := testCFG(cond, then, els, exit)

	p := intMaxProblem(true, func(*Block) int { return 0 })
	p.Edge = func(from *Block, succIdx int, out int) int {
		if from != cond {
			return out
		}
		if succIdx == 0 {
			return out + 10 // true edge
		}
		return out + 20 // false edge
	}
	facts := Solve(cfg, p)

	if got := facts[then].In; got != 11 {
		t.Errorf("true-edge fact = %d, want 11", got)
	}
	if got := facts[els].In; got != 21 {
		t.Errorf("false-edge fact = %d, want 21", got)
	}
	if got := facts[exit].In; got != 21 {
		t.Errorf("exit join = %d, want 21", got)
	}
}

func TestSolveLoopReachesFixpoint(t *testing.T) {
	entry := &Block{}
	head := &Block{}
	body := &Block{}
	exit := &Block{}
	entry.Succs = []*Block{head}
	head.Succs = []*Block{body, exit}
	body.Succs = []*Block{head} // back edge
	cfg := testCFG(entry, head, body, exit)

	// A bounded lattice: "has the body ever run" as 0/1. The back edge
	// must propagate the body's fact into the head without diverging.
	p := Problem[int]{
		Forward:  true,
		Boundary: 0,
		Bottom:   func() int { return 0 },
		Join:     func(a, b int) int { return max(a, b) },
		Equal:    func(a, b int) bool { return a == b },
		Transfer: func(b *Block, in int) int {
			if b == body {
				return 1
			}
			return in
		},
	}
	facts := Solve(cfg, p)
	if got := facts[head].In; got != 1 {
		t.Errorf("head In = %d, want 1 (fact from the back edge)", got)
	}
	if got := facts[exit].In; got != 1 {
		t.Errorf("exit In = %d, want 1", got)
	}
}

// TestSolveIterationCap: a transfer that never stabilizes must be cut
// off by the step cap instead of hanging the linter.
func TestSolveIterationCap(t *testing.T) {
	entry := &Block{}
	loop := &Block{}
	exit := &Block{}
	entry.Succs = []*Block{loop}
	loop.Succs = []*Block{loop, exit}
	cfg := testCFG(entry, loop, exit)

	p := Problem[int]{
		Forward:  true,
		Boundary: 0,
		Bottom:   func() int { return 0 },
		Join:     func(a, b int) int { return max(a, b) },
		Equal:    func(a, b int) bool { return false }, // never converges
		Transfer: func(b *Block, in int) int { return in + 1 },
	}
	// Completion is the assertion: the cap bounds the worklist.
	facts := Solve(cfg, p)
	if facts[loop] == nil {
		t.Fatal("loop block missing from result")
	}
}

func TestSolveSkipsUnreachable(t *testing.T) {
	entry := &Block{}
	island := &Block{} // no predecessors, no path from entry
	exit := &Block{}
	entry.Succs = []*Block{exit}
	island.Succs = []*Block{exit}
	cfg := testCFG(entry, island, exit)

	facts := Solve(cfg, intMaxProblem(true, func(*Block) int { return 0 }))
	if facts[island] != nil {
		t.Error("unreachable block must be absent from the result")
	}
	// The island still appears in exit's preds; the solver must not
	// consult its missing facts (this used to panic).
	if got := facts[exit].In; got != 1 {
		t.Errorf("exit In = %d, want 1", got)
	}
}
