package analysis_test

import (
	"strings"
	"testing"
)

const lockflowPrelude = `package fixture

import "sync"

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
}
`

func TestLockflow(t *testing.T) {
	runCases(t, "lockflow", []checkerCase{
		{
			name: "early return without unlock is flagged",
			src: lockflowPrelude + `
func (s *store) get(k string) (int, bool) {
	s.mu.Lock()
	v, ok := s.data[k]
	if !ok {
		return 0, false // mu still held
	}
	s.mu.Unlock()
	return v, true
}
`,
			want:       1,
			wantSubstr: "may still be write-locked",
		},
		{
			name: "deferred unlock covers every path",
			src: lockflowPrelude + `
func (s *store) get(k string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.data[k]
	if !ok {
		return 0, false
	}
	return v, true
}
`,
			want: 0,
		},
		{
			name: "unlock on both branches is fine",
			src: lockflowPrelude + `
func (s *store) get(k string) (int, bool) {
	s.mu.Lock()
	v, ok := s.data[k]
	if !ok {
		s.mu.Unlock()
		return 0, false
	}
	s.mu.Unlock()
	return v, true
}
`,
			want: 0,
		},
		{
			name: "double lock on every path deadlocks",
			src: lockflowPrelude + `
func (s *store) bad() {
	s.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.Unlock()
}
`,
			want:       1,
			wantSubstr: "already write-locked",
		},
		{
			name: "lock in a loop without unlock leaks at exit",
			src: lockflowPrelude + `
func (s *store) bad(keys []string) {
	for range keys {
		s.mu.Lock()
	}
}
`,
			want:       1, // iteration one arrives unlocked, so the re-lock is not a must; the exit leak still fires
			wantSubstr: "may still be write-locked",
		},
		{
			name: "read-to-write upgrade deadlocks",
			src: lockflowPrelude + `
func (s *store) bad() {
	s.rw.RLock()
	s.rw.Lock()
	s.rw.Unlock()
	s.rw.RUnlock()
}
`,
			want:       1,
			wantSubstr: "read-to-write upgrade",
		},
		{
			name: "read lock leaked on early return",
			src: lockflowPrelude + `
func (s *store) peek(k string) int {
	s.rw.RLock()
	if len(s.data) == 0 {
		return 0
	}
	v := s.data[k]
	s.rw.RUnlock()
	return v
}
`,
			want:       1,
			wantSubstr: "read-locked",
		},
		{
			name: "unlock then relock is a sequence, not a double lock",
			src: lockflowPrelude + `
func (s *store) twice() {
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}
`,
			want: 0,
		},
		{
			name: "lock inside a literal is that literal's business",
			src: lockflowPrelude + `
func (s *store) spawn() func() {
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.data["x"] = 1
	}
}
`,
			want: 0,
		},
		{
			name: "panic path does not count as a leak",
			src: lockflowPrelude + `
func (s *store) strict(k string) int {
	s.mu.Lock()
	v, ok := s.data[k]
	if !ok {
		s.mu.Unlock()
		panic("missing key")
	}
	s.mu.Unlock()
	return v
}
`,
			want: 0,
		},
		{
			name: "lint:ignore suppresses with a reason",
			src: lockflowPrelude + `
func (s *store) handoff() {
	//lint:ignore lockflow reason: lock intentionally held across the handoff, released by the receiver
	s.mu.Lock()
}
`,
			want: 0,
		},
	})
}

// TestLockflowFix: a lock with no unlock anywhere gets a mechanical
// `defer mu.Unlock()` fix.
func TestLockflowFix(t *testing.T) {
	got := runChecker(t, "lockflow", checkerCase{
		name: "fix",
		src: lockflowPrelude + `
func (s *store) set(k string, v int) {
	s.mu.Lock()
	s.data[k] = v
}
`,
	})
	if len(got) != 1 {
		t.Fatalf("want 1 finding, got %v", got)
	}
	if got[0].Fix == nil {
		t.Fatal("finding has no suggested fix")
	}
	if got[0].Fix.Text != "defer s.mu.Unlock()" {
		t.Errorf("fix text = %q, want defer s.mu.Unlock()", got[0].Fix.Text)
	}
}

// TestLockflowNoFixInLoop: a defer inside a loop body would pile up, so
// the leak finding must come without a mechanical fix.
func TestLockflowNoFixInLoop(t *testing.T) {
	got := runChecker(t, "lockflow", checkerCase{
		name: "loop",
		src: lockflowPrelude + `
func (s *store) bad(keys []string) {
	for range keys {
		s.mu.Lock()
	}
}
`,
	})
	if len(got) != 1 {
		t.Fatalf("want 1 finding, got %v", got)
	}
	if got[0].Fix != nil {
		t.Errorf("lock inside a loop must not get a defer fix, got %q", got[0].Fix.Text)
	}
}

// TestLockflowNoFixWithPartialUnlock: some paths unlock, so a blanket
// defer would double-unlock.
func TestLockflowNoFixWithPartialUnlock(t *testing.T) {
	got := runChecker(t, "lockflow", checkerCase{
		name: "partial",
		src: lockflowPrelude + `
func (s *store) set(k string, v int) {
	s.mu.Lock()
	if v < 0 {
		return // leak
	}
	s.data[k] = v
	s.mu.Unlock()
}
`,
	})
	if len(got) != 1 {
		t.Fatalf("want 1 finding, got %v", got)
	}
	if got[0].Fix != nil {
		t.Errorf("partial unlock must not get a mechanical fix, got %q", got[0].Fix.Text)
	}
}

func TestLockflowOrderCycle(t *testing.T) {
	got := runChecker(t, "lockflow", checkerCase{
		name: "cycle",
		src: `package fixture

import "sync"

type a struct{ mu sync.Mutex }
type b struct{ mu sync.Mutex }

func lockAB(x *a, y *b) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

func lockBA(x *a, y *b) {
	y.mu.Lock()
	x.mu.Lock()
	x.mu.Unlock()
	y.mu.Unlock()
}
`,
	})
	if len(got) != 1 {
		t.Fatalf("want 1 cycle finding, got %v", got)
	}
	if want := "lock-order cycle"; !containsStr(got[0].Message, want) {
		t.Errorf("message %q lacks %q", got[0].Message, want)
	}
}

func TestLockflowOrderCycleViaCall(t *testing.T) {
	got := runChecker(t, "lockflow", checkerCase{
		name: "cycle-via-call",
		src: `package fixture

import "sync"

type a struct{ mu sync.Mutex }
type b struct{ mu sync.Mutex }

func (y *b) poke() {
	y.mu.Lock()
	y.mu.Unlock()
}

func lockAB(x *a, y *b) {
	x.mu.Lock()
	y.poke() // acquires b.mu while a.mu held
	x.mu.Unlock()
}

func lockBA(x *a, y *b) {
	y.mu.Lock()
	x.mu.Lock()
	x.mu.Unlock()
	y.mu.Unlock()
}
`,
	})
	if len(got) != 1 {
		t.Fatalf("want 1 cycle finding, got %v", got)
	}
}

func TestLockflowSelfDeadlockViaCall(t *testing.T) {
	got := runChecker(t, "lockflow", checkerCase{
		name: "self-deadlock",
		src: `package fixture

import "sync"

type reg struct{ mu sync.Mutex }

func (r *reg) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return 0
}

func (r *reg) report() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size() // re-locks r.mu: self-deadlock
}
`,
	})
	if len(got) != 1 {
		t.Fatalf("want 1 self-deadlock finding, got %v", got)
	}
	if want := "self-deadlock"; !containsStr(got[0].Message, want) {
		t.Errorf("message %q lacks %q", got[0].Message, want)
	}
}

func TestLockflowConsistentOrderNoCycle(t *testing.T) {
	got := runChecker(t, "lockflow", checkerCase{
		name: "consistent",
		src: `package fixture

import "sync"

type a struct{ mu sync.Mutex }
type b struct{ mu sync.Mutex }

func one(x *a, y *b) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

func two(x *a, y *b) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}
`,
	})
	if len(got) != 0 {
		t.Fatalf("consistent order must not be flagged, got %v", got)
	}
}

func containsStr(s, sub string) bool { return strings.Contains(s, sub) }
