package analysis

// dataflow.go is the generic worklist solver the path-sensitive
// checkers run over a CFG. A Problem supplies the lattice (bottom, join,
// equality), the direction, the per-block transfer function, and an
// optional per-edge refinement (used e.g. to model `if err != nil`
// branches). Facts must form a finite-height lattice; the solver also
// carries an iteration cap as a belt-and-braces guard so a buggy
// transfer cannot hang the linter.

// Facts holds the solved dataflow facts at a block boundary: In is the
// fact before the block's transfer (after it, for backward problems) and
// Out the fact after.
type Facts[F any] struct {
	In, Out F
}

// Problem describes one dataflow analysis.
type Problem[F any] struct {
	// Forward selects the direction: forward problems push facts from
	// Entry along edges; backward problems push from Exit against them.
	Forward bool
	// Boundary is the fact at the boundary block (Entry for forward,
	// Exit for backward).
	Boundary F
	// Bottom returns the lattice bottom (the "no information yet" fact
	// joined into unvisited confluence points).
	Bottom func() F
	// Join combines two facts; it must not mutate its arguments.
	Join func(a, b F) F
	// Equal reports fact equality; the fixpoint test.
	Equal func(a, b F) bool
	// Transfer applies one block's effect.
	Transfer func(b *Block, in F) F
	// Edge, when non-nil, refines the fact flowing from `from` along its
	// succIdx-th out-edge (forward problems only). Block.Cond tells the
	// refinement what was branched on: succIdx 0 is the true edge.
	Edge func(from *Block, succIdx int, out F) F
}

// Solve runs the worklist algorithm to fixpoint and returns the facts of
// every reachable block. Unreachable blocks are absent from the result.
func Solve[F any](cfg *CFG, p Problem[F]) map[*Block]*Facts[F] {
	// Orient the graph: fwd edges for forward problems, reversed for
	// backward ones.
	succs := map[*Block][]*Block{}
	edgeIdx := map[[2]*Block]int{} // original succ index, for Edge refinement
	if p.Forward {
		for _, b := range cfg.Blocks {
			succs[b] = b.Succs
			for i, s := range b.Succs {
				if _, ok := edgeIdx[[2]*Block{b, s}]; !ok {
					edgeIdx[[2]*Block{b, s}] = i
				}
			}
		}
	} else {
		for _, b := range cfg.Blocks {
			for _, s := range b.Succs {
				succs[s] = append(succs[s], b)
			}
		}
	}
	preds := map[*Block][]*Block{}
	for _, b := range cfg.Blocks {
		for _, s := range succs[b] {
			preds[s] = append(preds[s], b)
		}
	}
	boundary := cfg.Entry
	if !p.Forward {
		boundary = cfg.Exit
	}

	// Only blocks reachable from the boundary participate.
	reach := map[*Block]bool{}
	stack := []*Block{boundary}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reach[b] {
			continue
		}
		reach[b] = true
		stack = append(stack, succs[b]...)
	}

	facts := map[*Block]*Facts[F]{}
	for _, b := range cfg.Blocks {
		if reach[b] {
			facts[b] = &Facts[F]{In: p.Bottom(), Out: p.Bottom()}
		}
	}

	inWork := map[*Block]bool{}
	var work []*Block
	for _, b := range cfg.Blocks { // deterministic seed order
		if reach[b] {
			work = append(work, b)
			inWork[b] = true
		}
	}
	push := func(b *Block) {
		if !inWork[b] && reach[b] {
			work = append(work, b)
			inWork[b] = true
		}
	}

	// Cap: |blocks| * lattice-height surrogate. Bitset/map facts
	// stabilize long before this; the cap only guards a buggy transfer.
	maxSteps := 64*len(cfg.Blocks) + 256
	for steps := 0; len(work) > 0 && steps < maxSteps; steps++ {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		f := facts[b]

		in := p.Bottom()
		if b == boundary {
			in = p.Join(in, p.Boundary)
		}
		for _, pr := range preds[b] {
			if facts[pr] == nil {
				continue // predecessor unreachable from the boundary
			}
			pf := facts[pr].Out
			if p.Forward && p.Edge != nil {
				pf = p.Edge(pr, edgeIdx[[2]*Block{pr, b}], pf)
			}
			in = p.Join(in, pf)
		}
		out := p.Transfer(b, in)
		f.In = in
		if p.Equal(out, f.Out) {
			continue
		}
		f.Out = out
		for _, s := range succs[b] {
			push(s)
		}
	}
	return facts
}
