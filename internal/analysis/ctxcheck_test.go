package analysis_test

import "testing"

// ctxcheckPrelude mimics the engine's shapes: an execution context
// with checkpoint helpers, flat binding rows, and a triple type.
const ctxcheckPrelude = `package fixture

import "context"

type row []int

type Triple struct{ S, P, O int }

type execCtx struct {
	ctx context.Context
}

func (ec *execCtx) tick(n *int) error { return nil }

func (ec *execCtx) checkpoint(rows int) error { return nil }

type Budget struct{}

func (b *Budget) AddIntermediate(n int) error { return nil }
`

func TestCtxcheck(t *testing.T) {
	runCases(t, "ctxcheck", []checkerCase{
		{
			name: "unchecked row loop in operator is flagged",
			path: "applab/internal/sparql",
			src: ctxcheckPrelude + `
func run(ec *execCtx, in []row) []row {
	var out []row
	for _, r := range in {
		out = append(out, r)
	}
	return out
}
`,
			want:       1,
			wantSubstr: "cancellation checkpoint",
		},
		{
			name: "tick in loop body satisfies the rule",
			path: "applab/internal/sparql",
			src: ctxcheckPrelude + `
func run(ec *execCtx, in []row) ([]row, error) {
	var out []row
	n := 0
	for _, r := range in {
		if err := ec.tick(&n); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
`,
			want: 0,
		},
		{
			name: "ctx.Err in loop body satisfies the rule",
			path: "applab/internal/sparql",
			src: ctxcheckPrelude + `
func run(ec *execCtx, in []row) error {
	for range in {
		if err := ec.ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}
`,
			want: 0,
		},
		{
			name: "budget method in loop body satisfies the rule",
			path: "applab/internal/sparql",
			src: ctxcheckPrelude + `
func run(ec *execCtx, b *Budget, in []row) error {
	for range in {
		if err := b.AddIntermediate(1); err != nil {
			return err
		}
	}
	return nil
}
`,
			want: 0,
		},
		{
			name: "unchecked triple loop is flagged",
			path: "applab/internal/sparql",
			src: ctxcheckPrelude + `
func scan(ec *execCtx, triples []Triple) int {
	n := 0
	for _, t := range triples {
		n += t.S
	}
	return n
}
`,
			want: 1,
		},
		{
			name: "loops outside execCtx functions are not the rule's business",
			path: "applab/internal/sparql",
			src: ctxcheckPrelude + `
func project(in []row) []row {
	var out []row
	for _, r := range in {
		out = append(out, r)
	}
	return out
}
`,
			want: 0,
		},
		{
			name: "non-row loops inside operators are fine",
			path: "applab/internal/sparql",
			src: ctxcheckPrelude + `
func run(ec *execCtx, names []string) int {
	n := 0
	for _, s := range names {
		n += len(s)
	}
	return n
}
`,
			want: 0,
		},
		{
			name: "rule only applies to the sparql package",
			path: "applab/internal/opendap",
			src: ctxcheckPrelude + `
func run(ec *execCtx, in []row) int {
	n := 0
	for range in {
		n++
	}
	return n
}
`,
			want: 0,
		},
		{
			name: "chunk-of-rows loop without check is flagged",
			path: "applab/internal/sparql",
			src: ctxcheckPrelude + `
func drain(ec *execCtx, chunks [][]row) int {
	n := 0
	for _, c := range chunks {
		n += len(c)
	}
	return n
}
`,
			want: 1,
		},
		{
			name: "lint:ignore suppresses with a reason",
			path: "applab/internal/sparql",
			src: ctxcheckPrelude + `
func run(ec *execCtx, in []row) int {
	n := 0
	//lint:ignore ctxcheck bounded by compile-time pattern count, not data size
	for range in {
		n++
	}
	return n
}
`,
			want: 0,
		},
	})
}
