package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// errflowChecker tracks assigned error variables through the CFG: an
// err that received a (possibly non-nil) value must be read — checked,
// returned, passed on, logged — before it is overwritten and before
// every path out of the function. This is the dataflow upgrade of the
// AST errcheck: it catches the partial-results/demotion style bugs
// where a fallback path quietly clobbers the error that mattered.
func errflowChecker() Checker {
	return Checker{
		Name: "errflow",
		Doc:  "an assigned err must be checked before being overwritten or falling off a return path",
		Run:  runErrflow,
	}
}

const (
	efUnchecked uint8 = 1 << iota // holds a value nobody has looked at
	efChecked                     // read since last assignment (or nil)
)

type errInfo struct {
	bits uint8
	pos  token.Pos // the unchecked assignment, for messages
}

type errFact struct {
	valid bool
	m     map[*types.Var]errInfo
}

func efBottom() errFact { return errFact{} }

func efJoin(a, b errFact) errFact {
	if !a.valid {
		return b
	}
	if !b.valid {
		return a
	}
	out := errFact{valid: true, m: map[*types.Var]errInfo{}}
	for v, ai := range a.m {
		if bi, ok := b.m[v]; ok {
			pos := ai.pos
			if bi.pos != token.NoPos && (pos == token.NoPos || bi.pos < pos) {
				pos = bi.pos
			}
			out.m[v] = errInfo{bits: ai.bits | bi.bits, pos: pos}
		} else {
			out.m[v] = ai
		}
	}
	for v, bi := range b.m {
		if _, ok := a.m[v]; !ok {
			out.m[v] = bi
		}
	}
	return out
}

func efEqual(a, b errFact) bool {
	if a.valid != b.valid || len(a.m) != len(b.m) {
		return false
	}
	for v, ai := range a.m {
		if b.m[v] != ai {
			return false
		}
	}
	return true
}

func (f errFact) clone() errFact {
	out := errFact{valid: true, m: make(map[*types.Var]errInfo, len(f.m))}
	for v, i := range f.m {
		out.m[v] = i
	}
	return out
}

func mustUnchecked(i errInfo) bool { return i.bits&efUnchecked != 0 && i.bits&efChecked == 0 }

func runErrflow(pass *Pass) []Finding {
	var out []Finding
	for _, file := range pass.Files {
		for _, fb := range collectFuncBodies(file) {
			out = append(out, errflowFunc(pass, fb)...)
		}
	}
	return out
}

func errflowFunc(pass *Pass, fb funcBody) []Finding {
	tracked := errflowTracked(pass, fb)
	if len(tracked) == 0 {
		return nil
	}
	namedResults := errflowNamedResults(pass, fb)

	cfg := BuildCFG(pass.Info, fb.body)
	var out []Finding

	transfer := func(blk *Block, in errFact) errFact {
		f := in
		if !f.valid {
			f = errFact{valid: true, m: map[*types.Var]errInfo{}}
		} else {
			f = f.clone()
		}
		for _, node := range blk.Nodes {
			// Reads first: every use of a tracked var outside the write
			// position of this very node counts as a check. Uses inside
			// nested function literals count too — the closure may
			// inspect the error later.
			writes := map[*ast.Ident]bool{}
			if as, ok := node.(*ast.AssignStmt); ok {
				for _, l := range as.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						writes[id] = true
					}
				}
			}
			ast.Inspect(node, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || writes[id] {
					return true
				}
				v, _ := pass.Info.Uses[id].(*types.Var)
				if v == nil || !tracked[v] {
					return true
				}
				if i, ok := f.m[v]; ok {
					i.bits = efChecked
					i.pos = token.NoPos
					f.m[v] = i
				} else {
					f.m[v] = errInfo{bits: efChecked}
				}
				return true
			})

			switch s := node.(type) {
			case *ast.AssignStmt:
				for li, l := range s.Lhs {
					id, ok := l.(*ast.Ident)
					if !ok {
						continue
					}
					v, _ := pass.Info.Defs[id].(*types.Var)
					if v == nil {
						v, _ = pass.Info.Uses[id].(*types.Var)
					}
					if v == nil || !tracked[v] {
						continue
					}
					if old, ok := f.m[v]; ok && mustUnchecked(old) {
						out = append(out, pass.finding(id.Pos(), "errflow",
							"this assignment overwrites the error assigned at line %d before anyone checked it",
							pass.Fset.Position(old.pos).Line))
					}
					if len(s.Lhs) == len(s.Rhs) && isNilIdent(s.Rhs[li]) {
						f.m[v] = errInfo{bits: efChecked}
					} else {
						f.m[v] = errInfo{bits: efUnchecked, pos: id.Pos()}
					}
				}
			case *ast.DeclStmt:
				if gd, ok := s.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for ni, name := range vs.Names {
							v, _ := pass.Info.Defs[name].(*types.Var)
							if v == nil || !tracked[v] {
								continue
							}
							if len(vs.Values) == 0 || (len(vs.Values) == len(vs.Names) && isNilIdent(vs.Values[ni])) {
								f.m[v] = errInfo{bits: efChecked} // nil: nothing to lose
							} else {
								f.m[v] = errInfo{bits: efUnchecked, pos: name.Pos()}
							}
						}
					}
				}
			case *ast.ReturnStmt:
				if len(s.Results) == 0 {
					// Naked return hands the named results to the caller.
					for v := range namedResults {
						f.m[v] = errInfo{bits: efChecked}
					}
				}
			}
		}
		return f
	}

	facts := Solve(cfg, Problem[errFact]{
		Forward:  true,
		Boundary: errFact{valid: true, m: map[*types.Var]errInfo{}},
		Bottom:   efBottom,
		Join:     efJoin,
		Equal:    efEqual,
		Transfer: transfer,
	})

	if exit, ok := facts[cfg.Exit]; ok && exit.In.valid {
		var leaks []*types.Var
		for v, i := range exit.In.m {
			if mustUnchecked(i) {
				leaks = append(leaks, v)
			}
		}
		sort.Slice(leaks, func(i, j int) bool { return exit.In.m[leaks[i]].pos < exit.In.m[leaks[j]].pos })
		for _, v := range leaks {
			out = append(out, pass.finding(exit.In.m[v].pos, "errflow",
				"error assigned to %s here is never checked before the function returns", v.Name()))
		}
	}
	return out
}

// errflowTracked collects the error-typed variables declared inside this
// function body, plus its named error results. Captured outer variables
// are deliberately excluded: their lifetime spans frames.
func errflowTracked(pass *Pass, fb funcBody) map[*types.Var]bool {
	tracked := map[*types.Var]bool{}
	ast.Inspect(fb.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != fb.body {
			return false // nested literal: its own analysis unit
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := pass.Info.Defs[id].(*types.Var); ok && v != nil && v.Name() != "_" && isErrorType(v.Type()) {
			tracked[v] = true
		}
		return true
	})
	for v := range errflowNamedResults(pass, fb) {
		tracked[v] = true
	}
	return tracked
}

// errflowNamedResults returns the function's named error results.
func errflowNamedResults(pass *Pass, fb funcBody) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	var results *ast.FieldList
	if fb.lit != nil {
		results = fb.lit.Type.Results
	} else if fb.decl != nil {
		results = fb.decl.Type.Results
	}
	if results == nil {
		return out
	}
	for _, field := range results.List {
		for _, name := range field.Names {
			if v, ok := pass.Info.Defs[name].(*types.Var); ok && v != nil && v.Name() != "_" && isErrorType(v.Type()) {
				out[v] = true
			}
		}
	}
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
