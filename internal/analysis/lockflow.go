package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockflowChecker is the path-sensitive mutex checker built on the CFG +
// dataflow framework. Within each function it proves that every
// sync.Mutex/RWMutex acquired is released on every path out of the
// function (directly or by an armed defer), flags definite double locks
// and read-to-write upgrades, and — across the package — builds a
// lock-order graph (lock A held while lock B is acquired, directly or
// through a same-package call) whose cycles are potential deadlocks.
func lockflowChecker() Checker {
	return Checker{
		Name: "lockflow",
		Doc:  "mutexes must be released on every path; no double locks, upgrades, or lock-order cycles",
		Run:  runLockflow,
	}
}

// Lock-state bits. A key's absence means the lock was never touched on
// the path; an absent key joins as lfUnlocked.
const (
	lfUnlocked uint8 = 1 << iota // may be released / never acquired
	lfWrite                      // may hold the write lock
	lfRead                       // may hold a read lock
	lfDeferW                     // a `defer Unlock` is armed
	lfDeferR                     // a `defer RUnlock` is armed
)

const lfHeld = lfWrite | lfRead

// lockFact maps a lock key (the rendered receiver expression, e.g.
// "s.mu") to its state bits. The valid flag distinguishes the lattice
// bottom (unvisited) from "visited, no locks touched".
type lockFact struct {
	valid bool
	m     map[string]uint8
}

func lfBottom() lockFact { return lockFact{} }

func lfJoin(a, b lockFact) lockFact {
	if !a.valid {
		return b
	}
	if !b.valid {
		return a
	}
	out := lockFact{valid: true, m: map[string]uint8{}}
	for k, av := range a.m {
		bv, ok := b.m[k]
		if !ok {
			bv = lfUnlocked
		}
		out.m[k] = av | bv
	}
	for k, bv := range b.m {
		if _, ok := a.m[k]; !ok {
			out.m[k] = bv | lfUnlocked
		}
	}
	return out
}

func lfEqual(a, b lockFact) bool {
	if a.valid != b.valid || len(a.m) != len(b.m) {
		return false
	}
	for k, av := range a.m {
		if b.m[k] != av {
			return false
		}
	}
	return true
}

func (f lockFact) clone() lockFact {
	out := lockFact{valid: true, m: make(map[string]uint8, len(f.m))}
	for k, v := range f.m {
		out.m[k] = v
	}
	return out
}

// mustHeld reports whether the key is held on every path (locked, and no
// path released it).
func mustHeld(bits uint8) bool { return bits&lfHeld != 0 && bits&lfUnlocked == 0 }

// lockOp classifies one sync call: the lock key and the operation.
type lockOp struct {
	key      string
	op       string // Lock, RLock, Unlock, RUnlock
	deferred bool
	pos      token.Pos
	call     *ast.CallExpr
}

// lockOpsIn extracts the sync lock operations in a CFG node, in source
// order. Function literals are not entered: their bodies run on their
// own schedule and are analyzed separately.
func lockOpsIn(info *types.Info, node ast.Node) []lockOp {
	var out []lockOp
	deferred := false
	if ds, ok := node.(*ast.DeferStmt); ok {
		deferred = true
		node = ds.Call
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if !isPkgFunc(fn, "sync", "Lock", "RLock", "Unlock", "RUnlock") {
			return true
		}
		out = append(out, lockOp{
			key:      types.ExprString(sel.X),
			op:       fn.Name(),
			deferred: deferred,
			pos:      call.Pos(),
			call:     call,
		})
		return true
	})
	return out
}

// lockCanonical renders a lock key that is stable across functions for
// the package lock-order graph: "pkgpath.Type.field" for struct fields,
// "pkgpath.var" for package-level lock variables, "" when the lock
// cannot be canonicalized (locals, complex expressions).
func lockCanonical(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr: // x.mu
		if tv, ok := info.Types[recv.X]; ok && tv.Type != nil {
			if named := derefNamed(tv.Type); named != nil {
				origin := named.Origin()
				if pkg := origin.Obj().Pkg(); pkg != nil {
					return pkg.Path() + "." + origin.Obj().Name() + "." + recv.Sel.Name
				}
			}
		}
	case *ast.Ident: // package-level mutex
		if v, ok := info.Uses[recv].(*types.Var); ok && v.Pkg() != nil && !v.IsField() {
			if v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
		}
	}
	return ""
}

// lockOrderEdge is one observed acquisition order: held was locked when
// acquired was taken (directly or through calls).
type lockOrderEdge struct {
	held, acquired string
	pos            token.Pos
	via            string // callee description for summary-derived edges
}

func runLockflow(pass *Pass) []Finding {
	var out []Finding

	summaries := lockSummaries(pass)
	var edges []lockOrderEdge

	for _, file := range pass.Files {
		for _, fb := range collectFuncBodies(file) {
			out = append(out, lockflowFunc(pass, fb, summaries, &edges)...)
		}
	}

	out = append(out, lockCycleFindings(pass, edges)...)
	return out
}

// lockflowFunc runs the per-function dataflow and collects lock-order
// edges while it is at it.
func lockflowFunc(pass *Pass, fb funcBody, summaries map[*types.Func]map[string]bool, edges *[]lockOrderEdge) []Finding {
	// Quick reject: no lock ops anywhere in the body.
	hasOps := false
	ast.Inspect(fb.body, func(n ast.Node) bool {
		if hasOps {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			fn := calleeFunc(pass.Info, call)
			if isPkgFunc(fn, "sync", "Lock", "RLock", "Unlock", "RUnlock") {
				hasOps = true
			}
		}
		return true
	})
	if !hasOps {
		return nil
	}

	cfg := BuildCFG(pass.Info, fb.body)
	var out []Finding

	// First lock site per key, for exit-leak messages and fixes.
	firstLock := map[string]lockOp{}
	unlockCount := map[string]int{}
	for _, blk := range cfg.Blocks {
		for _, node := range blk.Nodes {
			for _, op := range lockOpsIn(pass.Info, node) {
				switch op.op {
				case "Lock", "RLock":
					if op.deferred {
						continue
					}
					if _, ok := firstLock[op.key]; !ok {
						firstLock[op.key] = op
					}
				case "Unlock", "RUnlock":
					unlockCount[op.key]++
				}
			}
		}
	}

	// canonOf caches per-key canonical names (from the first lock site).
	canonOf := func(op lockOp) string { return lockCanonical(pass.Info, op.call) }

	transfer := func(blk *Block, in lockFact) lockFact {
		f := in
		if !f.valid {
			f = lockFact{valid: true, m: map[string]uint8{}}
		} else {
			f = f.clone()
		}
		for _, node := range blk.Nodes {
			// Same-package calls: lock-order edges via callee summaries.
			for _, callee := range packageCalls(pass.Info, node) {
				acq := summaries[callee.fn]
				if len(acq) == 0 {
					continue
				}
				for key, bits := range f.m {
					if !mustHeld(bits) {
						continue
					}
					heldCanon := ""
					if op, ok := firstLock[key]; ok {
						heldCanon = canonOf(op)
					}
					if heldCanon == "" {
						continue
					}
					for a := range acq {
						*edges = append(*edges, lockOrderEdge{
							held: heldCanon, acquired: a, pos: callee.pos,
							via: callee.fn.Name(),
						})
					}
				}
			}
			for _, op := range lockOpsIn(pass.Info, node) {
				bits := f.m[op.key]
				switch {
				case op.deferred && op.op == "Unlock":
					f.m[op.key] = bits | lfDeferW
				case op.deferred && op.op == "RUnlock":
					f.m[op.key] = bits | lfDeferR
				case op.deferred:
					// defer Lock: pathological; ignore.
				case op.op == "Lock":
					if mustHeld(bits) && bits&lfWrite != 0 {
						out = append(out, pass.finding(op.pos, "lockflow",
							"%s is already write-locked on every path reaching this Lock; this deadlocks", op.key))
					} else if mustHeld(bits) && bits&lfRead != 0 {
						out = append(out, pass.finding(op.pos, "lockflow",
							"%s is read-locked on every path reaching this Lock; a read-to-write upgrade deadlocks", op.key))
					}
					// Direct lock-order edges from currently-held keys.
					if acq := canonOf(op); acq != "" {
						for key, held := range f.m {
							if key != op.key && mustHeld(held) {
								if hc, ok := firstLock[key]; ok {
									if heldCanon := canonOf(hc); heldCanon != "" && heldCanon != acq {
										*edges = append(*edges, lockOrderEdge{held: heldCanon, acquired: acq, pos: op.pos})
									}
								}
							}
						}
					}
					f.m[op.key] = lfWrite | bits&(lfDeferW|lfDeferR)
				case op.op == "RLock":
					if mustHeld(bits) && bits&lfWrite != 0 {
						out = append(out, pass.finding(op.pos, "lockflow",
							"%s is write-locked on every path reaching this RLock; this deadlocks", op.key))
					}
					if acq := canonOf(op); acq != "" {
						for key, held := range f.m {
							if key != op.key && mustHeld(held) {
								if hc, ok := firstLock[key]; ok {
									if heldCanon := canonOf(hc); heldCanon != "" && heldCanon != acq {
										*edges = append(*edges, lockOrderEdge{held: heldCanon, acquired: acq, pos: op.pos})
									}
								}
							}
						}
					}
					f.m[op.key] = lfRead | bits&(lfDeferW|lfDeferR)
				case op.op == "Unlock":
					f.m[op.key] = lfUnlocked | bits&(lfDeferW|lfDeferR)
				case op.op == "RUnlock":
					f.m[op.key] = lfUnlocked | bits&(lfDeferW|lfDeferR)
				}
			}
		}
		return f
	}

	facts := Solve(cfg, Problem[lockFact]{
		Forward:  true,
		Boundary: lockFact{valid: true, m: map[string]uint8{}},
		Bottom:   lfBottom,
		Join:     lfJoin,
		Equal:    lfEqual,
		Transfer: transfer,
	})

	if exit, ok := facts[cfg.Exit]; ok && exit.In.valid {
		keys := make([]string, 0, len(exit.In.m))
		for k := range exit.In.m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			bits := exit.In.m[k]
			leakW := bits&lfWrite != 0 && bits&lfDeferW == 0
			leakR := bits&lfRead != 0 && bits&lfDeferR == 0
			if !leakW && !leakR {
				continue
			}
			op, ok := firstLock[k]
			if !ok {
				continue
			}
			kind := "write-locked"
			unlock := "Unlock"
			if !leakW {
				kind = "read-locked"
				unlock = "RUnlock"
			}
			f := pass.finding(op.pos, "lockflow",
				"%s may still be %s when the function returns; unlock it on every path or defer the unlock", k, kind)
			if unlockCount[k] == 0 && !insideLoop(fb.body, op.call) {
				// No release anywhere and not in a loop body (where a
				// defer would pile up): a defer right after the lock is
				// provably equivalent and safe.
				f.Fix = &SuggestedFix{
					InsertAfter: pass.Fset.Position(op.call.End()),
					Text:        fmt.Sprintf("defer %s.%s()", k, unlock),
				}
			}
			out = append(out, f)
		}
	}
	return out
}

// insideLoop reports whether target sits inside a for/range body within
// root.
func insideLoop(root, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		switch nn := n.(type) {
		case *ast.ForStmt:
			if containsNode(nn.Body, target) {
				found = true
			}
		case *ast.RangeStmt:
			if containsNode(nn.Body, target) {
				found = true
			}
		}
		return !found
	})
	return found
}

// packageCall is a static call to a function declared in this package.
type packageCall struct {
	fn  *types.Func
	pos token.Pos
}

func packageCalls(info *types.Info, node ast.Node) []packageCall {
	var out []packageCall
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn != nil && fn.Pkg() != nil {
			out = append(out, packageCall{fn: fn, pos: call.Pos()})
		}
		return true
	})
	return out
}

// lockSummaries computes, for every function declared in the package,
// the set of canonical lock keys it may acquire — directly or through
// same-package calls (transitive closure).
func lockSummaries(pass *Pass) map[*types.Func]map[string]bool {
	if pass.Pkg == nil {
		return nil
	}
	direct := map[*types.Func]map[string]bool{}
	calls := map[*types.Func][]*types.Func{}
	var fns []*types.Func

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			fns = append(fns, fn)
			acq := map[string]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass.Info, call)
				if isPkgFunc(callee, "sync", "Lock", "RLock") {
					if c := lockCanonical(pass.Info, call); c != "" {
						acq[c] = true
					}
					return true
				}
				if callee != nil && callee.Pkg() == pass.Pkg {
					calls[fn] = append(calls[fn], callee)
				}
				return true
			})
			direct[fn] = acq
		}
	}

	// Transitive closure over the same-package call graph.
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			for _, callee := range calls[fn] {
				for k := range direct[callee] {
					if !direct[fn][k] {
						direct[fn][k] = true
						changed = true
					}
				}
			}
		}
	}
	return direct
}

// lockCycleFindings detects cycles in the package's lock-order graph.
// Every cycle (including self-edges: lock A held while a call re-locks
// A) is a potential deadlock and reported once.
func lockCycleFindings(pass *Pass, edges []lockOrderEdge) []Finding {
	if len(edges) == 0 {
		return nil
	}
	adj := map[string]map[string]lockOrderEdge{}
	for _, e := range edges {
		if adj[e.held] == nil {
			adj[e.held] = map[string]lockOrderEdge{}
		}
		if old, ok := adj[e.held][e.acquired]; !ok || e.pos < old.pos {
			adj[e.held][e.acquired] = e
		}
	}
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var out []Finding
	seen := map[string]bool{}

	// Self-edges first: held A, re-acquire A.
	for _, n := range nodes {
		if e, ok := adj[n][n]; ok {
			key := n + "->" + n
			if !seen[key] {
				seen[key] = true
				msg := fmt.Sprintf("%s is acquired while already held", short(n))
				if e.via != "" {
					msg = fmt.Sprintf("%s is held while calling %s, which acquires %s again", short(n), e.via, short(n))
				}
				out = append(out, pass.finding(e.pos, "lockflow", msg+" — potential self-deadlock"))
			}
		}
	}

	// Cycles of length >= 2: DFS from each node in sorted order.
	for _, start := range nodes {
		var path []string
		onPath := map[string]bool{}
		var dfs func(n string) bool
		dfs = func(n string) bool {
			path = append(path, n)
			onPath[n] = true
			targets := make([]string, 0, len(adj[n]))
			for t := range adj[n] {
				targets = append(targets, t)
			}
			sort.Strings(targets)
			for _, t := range targets {
				if t == n {
					continue
				}
				if t == start && len(path) >= 2 {
					// Canonical form: rotate so the smallest node leads;
					// report only from the smallest start to dedupe.
					if start == smallest(path) {
						key := strings.Join(path, "->") + "->" + start
						if !seen[key] {
							seen[key] = true
							e := adj[n][t]
							cycle := append(append([]string{}, path...), start)
							for i := range cycle {
								cycle[i] = short(cycle[i])
							}
							out = append(out, pass.finding(e.pos, "lockflow",
								fmt.Sprintf("lock-order cycle %s — potential deadlock; acquire these locks in one consistent order",
									strings.Join(cycle, " -> "))))
						}
					}
					continue
				}
				if !onPath[t] && len(path) < 8 {
					if dfs(t) {
						return true
					}
				}
			}
			path = path[:len(path)-1]
			delete(onPath, n)
			return false
		}
		dfs(start)
	}
	SortFindings(out)
	return out
}

func smallest(path []string) string {
	s := path[0]
	for _, p := range path[1:] {
		if p < s {
			s = p
		}
	}
	return s
}

// short trims the package path from a canonical lock key for messages:
// "applab/internal/strabon.Store.mu" -> "strabon.Store.mu".
func short(canon string) string {
	if i := strings.LastIndex(canon, "/"); i >= 0 {
		return canon[i+1:]
	}
	return canon
}
