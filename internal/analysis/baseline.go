package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// baseline.go implements incremental adoption: `applab-lint -baseline
// lint-baseline.json` subtracts the recorded pre-existing findings and
// fails only on new ones. Entries match on (file, check, message) —
// deliberately not line/column, so unrelated edits that shift code do
// not resurrect a baselined finding. Matching is multiset-style: two
// identical findings need two baseline entries.

// BaselineEntry is one recorded pre-existing finding.
type BaselineEntry struct {
	File    string `json:"file"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// Baseline is a set (with multiplicity) of accepted findings.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// LoadBaseline reads a baseline file. A missing file is an error: a
// typo'd path must not silently lint against an empty baseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline records the findings, sorted, as the new baseline.
func WriteBaseline(path string, findings []Finding) error {
	b := Baseline{Entries: []BaselineEntry{}}
	for _, f := range findings {
		b.Entries = append(b.Entries, BaselineEntry{File: f.Pos.Filename, Check: f.Check, Message: f.Message})
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Check != c.Check {
			return a.Check < c.Check
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter returns the findings not covered by the baseline, preserving
// order. A nil baseline passes everything through.
func (b *Baseline) Filter(findings []Finding) []Finding {
	if b == nil {
		return findings
	}
	budget := map[BaselineEntry]int{}
	for _, e := range b.Entries {
		budget[e]++
	}
	var out []Finding
	for _, f := range findings {
		e := BaselineEntry{File: f.Pos.Filename, Check: f.Check, Message: f.Message}
		if budget[e] > 0 {
			budget[e]--
			continue
		}
		out = append(out, f)
	}
	return out
}
