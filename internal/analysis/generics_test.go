package analysis_test

import "testing"

// Generic-code fixtures for the five first-generation checkers: each
// checker must neither crash on, nor miss findings in, code using type
// parameters and explicit instantiations.

func TestSharedmapGenerics(t *testing.T) {
	runCases(t, "sharedmap", []checkerCase{
		{
			name: "unguarded generic cache written from goroutine-active method",
			src: `package fixture

type Cache[K comparable, V any] struct {
	items map[K]V
}

func (c *Cache[K, V]) refresh() {
	go func() {}()
}

func (c *Cache[K, V]) Put(k K, v V) {
	c.items[k] = v
}
`,
			want:       1,
			wantSubstr: "guarding mutex",
		},
		{
			name: "mutex-guarded generic cache is fine",
			src: `package fixture

import "sync"

type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	items map[K]V
}

func (c *Cache[K, V]) refresh() {
	go func() {}()
}

func (c *Cache[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items[k] = v
}
`,
			want: 0,
		},
		{
			name: "instantiated write through a concrete type is caught",
			src: `package fixture

type Reg[T any] struct {
	byName map[string]T
}

func (r *Reg[T]) watch() {
	go func() {}()
}

func add(r *Reg[int]) {
	r.byName["x"] = 1
}
`,
			want: 1,
		},
		{
			name: "delete on an instantiated generic map field is caught",
			src: `package fixture

type Reg[T any] struct {
	byName map[string]T
}

func (r *Reg[T]) watch() {
	go func() {}()
}

func drop(r *Reg[string]) {
	delete(r.byName, "x")
}
`,
			want: 1,
		},
	})
}

func TestErrcheckGenerics(t *testing.T) {
	runCases(t, "errcheck", []checkerCase{
		{
			name: "explicitly instantiated call with dropped error",
			src: `package fixture

func parse[T any](s string) (T, error) {
	var zero T
	return zero, nil
}

func f() {
	parse[int]("x") // error dropped
}
`,
			want:       1,
			wantSubstr: "parse",
		},
		{
			name: "inferred generic call with dropped error",
			src: `package fixture

func conv[T any](v T) (T, error) { return v, nil }

func f() {
	conv(1)
}
`,
			want: 1,
		},
		{
			name: "handled generic error is fine",
			src: `package fixture

func conv[T any](v T) (T, error) { return v, nil }

func f() error {
	if _, err := conv(1); err != nil {
		return err
	}
	return nil
}
`,
			want: 0,
		},
	})
}

func TestGoleakGenerics(t *testing.T) {
	runCases(t, "goleak", []checkerCase{
		{
			name: "unsignalled goroutine inside a generic function",
			src: `package fixture

func fanOut[T any](xs []T) {
	for range xs {
		go func() {
			_ = 1
		}()
	}
}
`,
			want:       1,
			wantSubstr: "completion signal",
		},
		{
			name: "channel-signalled goroutine inside a generic function",
			src: `package fixture

func fanOut[T any](xs []T, done chan T) {
	for _, x := range xs {
		go func() {
			done <- x
		}()
	}
}
`,
			want: 0,
		},
		{
			name: "waitgroup done via generic helper method",
			src: `package fixture

import "sync"

type pool[T any] struct {
	wg sync.WaitGroup
}

func (p *pool[T]) run(f func()) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		f()
	}()
}
`,
			want: 0,
		},
	})
}

func TestLockioGenerics(t *testing.T) {
	runCases(t, "lockio", []checkerCase{
		{
			name: "sleep under a generic container's lock",
			src: `package fixture

import (
	"sync"
	"time"
)

type box[T any] struct {
	mu sync.Mutex
	v  T
}

func (b *box[T]) slowSet(v T) {
	b.mu.Lock()
	time.Sleep(time.Millisecond)
	b.v = v
	b.mu.Unlock()
}
`,
			want:       1,
			wantSubstr: "time.Sleep",
		},
		{
			name: "io after unlock in a generic method is fine",
			src: `package fixture

import (
	"sync"
	"time"
)

type box[T any] struct {
	mu sync.Mutex
	v  T
}

func (b *box[T]) set(v T) {
	b.mu.Lock()
	b.v = v
	b.mu.Unlock()
	time.Sleep(time.Millisecond)
}
`,
			want: 0,
		},
	})
}

func TestNakedtimeGenerics(t *testing.T) {
	runCases(t, "nakedtime", []checkerCase{
		{
			name: "time.Now inside a generic evaluator helper",
			path: "applab/internal/sparql",
			src: `package sparql

import "time"

func evalAll[T any](xs []T) time.Time {
	return time.Now()
}
`,
			want:       1,
			wantSubstr: "time.Now()",
		},
		{
			name: "instant parameter in generic code is fine",
			path: "applab/internal/sparql",
			src: `package sparql

import "time"

func evalAll[T any](xs []T, now time.Time) time.Time {
	return now
}
`,
			want: 0,
		},
	})
}

// TestLockflowGenerics: the dataflow checkers must handle generic
// receivers too — the canonical lock key must collapse instantiations.
func TestLockflowGenerics(t *testing.T) {
	runCases(t, "lockflow", []checkerCase{
		{
			name: "leak through a generic method",
			src: `package fixture

import "sync"

type guarded[T any] struct {
	mu sync.Mutex
	v  T
}

func (g *guarded[T]) bad(ok bool) {
	g.mu.Lock()
	if ok {
		return // leak
	}
	g.mu.Unlock()
}
`,
			want:       1,
			wantSubstr: "may still be write-locked",
		},
		{
			name: "deferred unlock in a generic method is fine",
			src: `package fixture

import "sync"

type guarded[T any] struct {
	mu sync.Mutex
	v  T
}

func (g *guarded[T]) good() {
	g.mu.Lock()
	defer g.mu.Unlock()
}
`,
			want: 0,
		},
	})
}
