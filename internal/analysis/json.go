package analysis

import (
	"encoding/json"
	"io"
)

// jsonFinding is the stable machine-readable diagnostic shape emitted
// by `applab-lint -json`: positions are module-root-relative, and the
// array is sorted by (file, line, col, check), so CI can diff runs
// byte-for-byte.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
	Fix     string `json:"fix,omitempty"`
}

// EncodeJSON writes the findings as an indented JSON array (always an
// array, never null, so consumers can range unconditionally).
func EncodeJSON(w io.Writer, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		jf := jsonFinding{
			File:    f.Pos.Filename,
			Line:    f.Pos.Line,
			Col:     f.Pos.Column,
			Check:   f.Check,
			Message: f.Message,
		}
		if f.Fix != nil {
			jf.Fix = f.Fix.Text
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
