package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goleakChecker flags `go func() {...}()` literals that carry no
// completion signal: no sync.WaitGroup.Done, no context.Context use, and
// no channel operation (send, receive, close, select) on any path. Such
// goroutines cannot be joined or cancelled — under the paper's fan-out
// query model they accumulate until the process dies. Named-function
// goroutines (`go s.worker()`) are out of scope: the body is elsewhere
// and usually owns its lifecycle.
func goleakChecker() Checker {
	return Checker{
		Name: "goleak",
		Doc:  "goroutine literals must signal completion via WaitGroup, context, or channel",
		Run:  runGoleak,
	}
}

func runGoleak(pass *Pass) []Finding {
	var out []Finding
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			if !hasCompletionSignal(pass.Info, lit) {
				out = append(out, pass.finding(gs.Pos(), "goleak",
					"goroutine literal has no completion signal (WaitGroup.Done, context, or channel op); it cannot be joined or cancelled"))
			}
			return true
		})
	}
	return out
}

func hasCompletionSignal(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch nn := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if nn.Op == token.ARROW {
				found = true
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, nn); isPkgFunc(fn, "sync", "Done") {
				found = true
			}
			if id, ok := ast.Unparen(nn.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
		case *ast.Ident:
			if tv, ok := info.Types[nn]; ok && tv.Type != nil {
				if named, ok := tv.Type.(*types.Named); ok &&
					named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "context" &&
					named.Obj().Name() == "Context" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
