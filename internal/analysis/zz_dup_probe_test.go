package analysis_test

import (
	"testing"

	_ "applab/internal/analysis"
)

// Duplicate-findings probe: transfer-emitted findings inside loop bodies
// should appear once, but re-running the transfer during fixpoint
// iteration may duplicate them.
func TestLockflowLoopDuplicate(t *testing.T) {
	got := runChecker(t, "lockflow", checkerCase{
		name: "loop-double-lock",
		src: `package fixture

import "sync"

var mu sync.RWMutex

func f(n int) {
	mu.Lock()
	for i := 0; i < n; i++ {
		mu.RLock()
	}
}
`,
	})
	for _, f := range got {
		t.Logf("finding: %v", f)
	}
}

func TestErrflowLoopDuplicate(t *testing.T) {
	got := runChecker(t, "errflow", checkerCase{
		name: "loop-overwrite",
		src: `package fixture

func a() error { return nil }
func b() error { return nil }

func f(n int) {
	var err error
	_ = err
	for i := 0; i < n; i++ {
		err = a()
		err = b()
	}
	_ = err
}
`,
	})
	for _, f := range got {
		t.Logf("finding: %v", f)
	}
}
