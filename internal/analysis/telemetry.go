package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// telemetryPkgPath is the metrics registry package whose registration
// calls this checker audits.
const telemetryPkgPath = "applab/internal/telemetry"

// telemetryRegistration lists the Registry methods that mint a metric
// series from a name.
var telemetryRegistration = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"GaugeFunc": true,
	"Histogram": true,
}

// metricNameRE is the Prometheus-compatible subset the registry accepts;
// the checker enforces it statically so a bad name fails the lint gate
// instead of panicking at runtime.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// telemetryChecker enforces the observability layer's conventions: every
// metric name handed to telemetry.Registry registration methods
// (Counter, Gauge, GaugeFunc, Histogram) must be a lowercase_snake
// string literal, and each name must be registered at exactly one call
// site per package. One site per name keeps the metric inventory
// greppable and makes kind/bucket conflicts impossible by construction.
func telemetryChecker() Checker {
	return Checker{
		Name: "telemetry",
		Doc:  "metric names must be lowercase_snake string literals, each registered at one call site per package",
		Run:  runTelemetry,
	}
}

func runTelemetry(pass *Pass) []Finding {
	var out []Finding
	sites := map[string][]token.Pos{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || !telemetryRegistration[fn.Name()] ||
				fn.Pkg() == nil || fn.Pkg().Path() != telemetryPkgPath {
				return true
			}
			if !strings.HasSuffix(recvTypeString(fn), ".Registry") || len(call.Args) == 0 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				out = append(out, pass.finding(call.Args[0].Pos(), "telemetry",
					"metric name must be a string literal so the series inventory stays greppable"))
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !metricNameRE.MatchString(name) {
				out = append(out, pass.finding(lit.Pos(), "telemetry",
					"metric name %q is not lowercase_snake ([a-z][a-z0-9_]*)", name))
				return true
			}
			sites[name] = append(sites[name], call.Pos())
			return true
		})
	}
	names := make([]string, 0, len(sites))
	for name := range sites {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ps := sites[name]
		if len(ps) < 2 {
			continue
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
		for _, p := range ps[1:] {
			out = append(out, pass.finding(p, "telemetry",
				"metric %q is registered at %d call sites in this package; route every use through one helper",
				name, len(ps)))
		}
	}
	return out
}
