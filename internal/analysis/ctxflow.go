package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxflowChecker is the path-sensitive successor of the PR5 ctxcheck:
// a row/triple loop inside the compiled SPARQL engine's plan-execution
// surface must hit a cancellation checkpoint on EVERY path through an
// iteration, not merely contain one somewhere. A loop whose whole batch
// was pre-charged by an `ec.tickN(&n, len(xs))` immediately before it
// is exempt — that is the engine's documented bulk-accounting idiom.
func ctxflowChecker() Checker {
	return Checker{
		Name: "ctxflow",
		Doc:  "row loops in sparql plan operators must poll the execution context on every path through an iteration (or be tickN pre-charged)",
		Run:  runCtxflow,
	}
}

// ctxflowPathSuffix scopes the rule to the compiled engine.
const ctxflowPathSuffix = "internal/sparql"

func runCtxflow(pass *Pass) []Finding {
	if pass.Path != ctxflowPathSuffix && !strings.HasSuffix(pass.Path, "/"+ctxflowPathSuffix) {
		return nil
	}
	var out []Finding
	for _, file := range pass.Files {
		for _, fb := range collectFuncBodies(file) {
			if fb.decl == nil || !isPlanOperatorFunc(pass.Info, fb.decl) {
				continue
			}
			out = append(out, ctxflowFunc(pass, fb)...)
		}
	}
	return out
}

// ctxflowFunc checks every solution loop in one function body (a plan
// operator's declaration body, or a literal inside one — the chunked
// drain callbacks live in literals).
func ctxflowFunc(pass *Pass, fb funcBody) []Finding {
	hasLoop := false
	ast.Inspect(fb.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.RangeStmt); ok {
			hasLoop = true
		}
		return !hasLoop
	})
	if !hasLoop {
		return nil
	}

	cfg := BuildCFG(pass.Info, fb.body)
	var out []Finding
	for _, loop := range cfg.Loops {
		rng, ok := loop.Stmt.(*ast.RangeStmt)
		if !ok || !rangesOverSolutions(pass.Info, rng) {
			continue
		}
		if tickNPrecharged(pass.Info, fb.body, rng) {
			continue
		}
		if blk := untickedPath(pass.Info, cfg, loop); blk != nil {
			out = append(out, pass.finding(rng.Pos(), "ctxflow",
				"row loop in plan operator has an iteration path with no cancellation checkpoint; call the execCtx tick/checkpoint helpers (or check ctx.Err / the budget) on every path, or tickN-precharge the batch"))
		}
	}
	return out
}

// tickNPrecharged recognizes the engine's bulk-accounting idiom: the
// statement immediately before the loop charges the whole batch —
// it contains a call to an execCtx tick/tickN method whose arguments
// include `len(X)` where X is exactly the loop's range expression.
func tickNPrecharged(info *types.Info, body ast.Node, rng *ast.RangeStmt) bool {
	prev := prevSiblingStmt(body, rng)
	if prev == nil {
		return false
	}
	want := types.ExprString(rng.X)
	found := false
	ast.Inspect(prev, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "tick" && sel.Sel.Name != "tickN" {
			return true
		}
		if tv, ok := info.Types[sel.X]; !ok || namedTypeName(tv.Type) != "execCtx" {
			return true
		}
		for _, arg := range call.Args {
			if lenCall, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(lenCall.Fun).(*ast.Ident); ok && id.Name == "len" && len(lenCall.Args) == 1 {
					if types.ExprString(lenCall.Args[0]) == want {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

// prevSiblingStmt returns the statement immediately preceding target in
// its enclosing statement list, or nil.
func prevSiblingStmt(root ast.Node, target ast.Stmt) ast.Stmt {
	var out ast.Stmt
	ast.Inspect(root, func(n ast.Node) bool {
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			return true
		}
		for i, s := range list {
			if s == ast.Stmt(target) && i > 0 {
				out = list[i-1]
			}
		}
		return true
	})
	return out
}

// untickedPath runs a must-analysis over the loop body's blocks: every
// path from the body entry back to the loop head must pass a
// cancellation checkpoint. It returns a block whose back edge carries an
// unticked path, or nil when the loop is clean. Break/return paths are
// irrelevant — the loop ends there anyway.
func untickedPath(info *types.Info, cfg *CFG, loop Loop) *Block {
	const (
		stBottom uint8 = iota
		stTicked
		stUnticked
	)
	join := func(a, b uint8) uint8 {
		switch {
		case a == stBottom:
			return b
		case b == stBottom:
			return a
		case a == stUnticked || b == stUnticked:
			return stUnticked
		default:
			return stTicked
		}
	}

	// Body-only region: reachable from loop.Body without crossing the
	// head (back edge) or the after block (break/exit paths).
	region := map[*Block]bool{}
	stack := []*Block{loop.Body}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if region[b] || b == loop.Head || b == loop.After {
			continue
		}
		region[b] = true
		stack = append(stack, b.Succs...)
	}

	ticks := map[*Block]bool{}
	for b := range region {
		for _, node := range b.Nodes {
			if containsCancellationCheck(info, node) {
				ticks[b] = true
				break
			}
		}
	}

	in := map[*Block]uint8{}
	out := map[*Block]uint8{}
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.Blocks {
			if !region[b] {
				continue
			}
			v := uint8(stBottom)
			if b == loop.Body {
				v = stUnticked // iteration starts unticked
			}
			for _, p := range cfg.Blocks {
				if !region[p] {
					continue
				}
				for _, s := range p.Succs {
					if s == b {
						v = join(v, out[p])
					}
				}
			}
			o := v
			if ticks[b] {
				o = stTicked
			}
			if in[b] != v || out[b] != o {
				in[b], out[b] = v, o
				changed = true
			}
		}
	}

	for _, b := range cfg.Blocks {
		if !region[b] || out[b] != stUnticked {
			continue
		}
		for _, s := range b.Succs {
			if s == loop.Head {
				return b
			}
		}
	}
	return nil
}

// isPlanOperatorFunc reports whether fn is part of the plan-execution
// surface: its receiver or a parameter carries the engine's execution
// context (a type named execCtx).
func isPlanOperatorFunc(info *types.Info, fn *ast.FuncDecl) bool {
	var fields []*ast.Field
	if fn.Recv != nil {
		fields = append(fields, fn.Recv.List...)
	}
	if fn.Type.Params != nil {
		fields = append(fields, fn.Type.Params.List...)
	}
	for _, f := range fields {
		if tv, ok := info.Types[f.Type]; ok && namedTypeName(tv.Type) == "execCtx" {
			return true
		}
	}
	return false
}

// rangesOverSolutions reports whether the range expression iterates
// solution material: a slice of rows (the engine's flat []rdf.Term
// binding rows) or of matched triples.
func rangesOverSolutions(info *types.Info, rng *ast.RangeStmt) bool {
	tv, ok := info.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	switch name := namedTypeName(sl.Elem()); name {
	case "row", "Triple":
		return true
	}
	// []row chunks ([][]row) count too: draining a chunk is still a row
	// loop.
	if inner, ok := sl.Elem().Underlying().(*types.Slice); ok {
		return namedTypeName(inner.Elem()) == "row"
	}
	return false
}

// containsCancellationCheck walks body looking for any recognized
// checkpoint: a method call on the execCtx (tick, checkpoint, match, or
// future helpers), an Err/Done call (context polling), or a method call
// on an admission Budget.
func containsCancellationCheck(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// ctx.Err() / ctx.Done() / <-budget channels etc.: the method
		// name alone marks context polling.
		if sel.Sel.Name == "Err" || sel.Sel.Name == "Done" {
			found = true
			return false
		}
		if tv, ok := info.Types[sel.X]; ok {
			switch namedTypeName(tv.Type) {
			case "execCtx", "Budget":
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// namedTypeName unwraps pointers and returns the bare name of the named
// type beneath ("execCtx", "row", "Triple"), or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if named := derefNamed(t); named != nil {
		return named.Obj().Name()
	}
	return ""
}
