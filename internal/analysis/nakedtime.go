package analysis

import (
	"go/ast"
	"strings"
)

// PurePathSuffixes lists the import-path suffixes of packages that must
// stay deterministic: SPARQL/GeoSPARQL evaluation and the geometry
// kernels. Benchmarks (EXPERIMENTS.md) and the sharded store's merge
// invariants assume that evaluating the same query over the same data
// yields identical results; a wall-clock read buried in evaluation code
// breaks that and makes regressions unreproducible. Such code takes
// instants as parameters instead.
var PurePathSuffixes = []string{
	"internal/geom",
	"internal/geom/rtree",
	"internal/geosparql",
	"internal/rdf",
	"internal/sparql",
}

// nakedtimeChecker flags time.Now() calls inside the pure evaluation
// packages.
func nakedtimeChecker() Checker {
	return Checker{
		Name: "nakedtime",
		Doc:  "no time.Now() in pure evaluation/geometry packages; take instants as parameters",
		Run:  runNakedtime,
	}
}

func runNakedtime(pass *Pass) []Finding {
	pure := false
	for _, suffix := range PurePathSuffixes {
		if pass.Path == suffix || strings.HasSuffix(pass.Path, "/"+suffix) {
			pure = true
			break
		}
	}
	if !pure {
		return nil
	}
	var out []Finding
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(pass.Info, call); isPkgFunc(fn, "time", "Now") {
				out = append(out, pass.finding(call.Pos(), "nakedtime",
					"time.Now() in pure evaluation code; pass the instant in as a parameter to keep results deterministic"))
			}
			return true
		})
	}
	return out
}
