package analysis_test

import "testing"

// telemetryStub declares just enough of the real registry API for the
// fixtures to type-check: the source importer cannot resolve module
// imports from in-memory fixtures, so each fixture poses as the
// telemetry package itself and stubs Registry locally.
const telemetryStub = `package telemetry

type Counter struct{}

func (c *Counter) Inc() {}

type Gauge struct{}

type Histogram struct{}

type Registry struct{}

func (r *Registry) Counter(name string, labels ...string) *Counter { return nil }

func (r *Registry) Gauge(name string, labels ...string) *Gauge { return nil }

func (r *Registry) GaugeFunc(name string, f func() float64, labels ...string) {}

func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram { return nil }
`

func TestTelemetryChecker(t *testing.T) {
	runCases(t, "telemetry", []checkerCase{
		{
			name: "clean registrations",
			path: "applab/internal/telemetry",
			src: telemetryStub + `
func instrument(r *Registry) {
	r.Counter("opendap_cache_hits_total").Inc()
	r.Gauge("opendap_breaker_state")
	r.Histogram("opendap_fetch_seconds", nil)
	r.GaugeFunc("strabon_triples", func() float64 { return 0 })
}
`,
			want: 0,
		},
		{
			name: "single site registering many label values",
			path: "applab/internal/telemetry",
			src: telemetryStub + `
func shards(r *Registry, n int) {
	for i := 0; i < n; i++ {
		r.Gauge("strabon_shard_triples", "shard", string(rune('0'+i)))
	}
}
`,
			want: 0,
		},
		{
			name: "uppercase metric name",
			path: "applab/internal/telemetry",
			src: telemetryStub + `
func instrument(r *Registry) {
	r.Counter("Requests_Total").Inc()
}
`,
			want:       1,
			wantSubstr: "not lowercase_snake",
		},
		{
			name: "hyphenated metric name",
			path: "applab/internal/telemetry",
			src: telemetryStub + `
func instrument(r *Registry) {
	r.Histogram("fetch-seconds", nil)
}
`,
			want:       1,
			wantSubstr: "not lowercase_snake",
		},
		{
			name: "non-literal metric name",
			path: "applab/internal/telemetry",
			src: telemetryStub + `
func instrument(r *Registry, name string) {
	r.Counter(name).Inc()
}
`,
			want:       1,
			wantSubstr: "string literal",
		},
		{
			name: "duplicate registration sites",
			path: "applab/internal/telemetry",
			src: telemetryStub + `
func one(r *Registry) { r.Counter("requests_total").Inc() }

func two(r *Registry) { r.Counter("requests_total").Inc() }
`,
			want:       1,
			wantSubstr: "2 call sites",
		},
		{
			name: "suppressed duplicate",
			path: "applab/internal/telemetry",
			src: telemetryStub + `
func one(r *Registry) { r.Counter("requests_total").Inc() }

func two(r *Registry) {
	//lint:ignore telemetry reason: migration shim while the old name drains
	r.Counter("requests_total").Inc()
}
`,
			want: 0,
		},
		{
			name: "unrelated methods ignored",
			path: "applab/internal/telemetry",
			src: telemetryStub + `
type other struct{}

func (other) Counter(name string) int { return 0 }

func f(o other) { o.Counter("Whatever-Goes") }
`,
			want: 0,
		},
	})
}
