package analysis

import (
	"go/ast"
	"go/types"
)

// sharedmapChecker flags writes to map-typed struct fields on types that
// participate in goroutine fan-out but carry no guarding mutex in the
// struct. Concurrent map writes crash the runtime outright; this is the
// sharded-store / federation failure mode (owner tables, capability
// caches, usage counters) that only shows up under production load.
//
// A type "participates in goroutine fan-out" when one of its methods
// spawns a goroutine, or a value of the type is captured inside a
// `go func` literal in the same package. A struct with a sync.Mutex or
// sync.RWMutex field is assumed to guard its own maps — the checker
// validates structure, not lock discipline.
func sharedmapChecker() Checker {
	return Checker{
		Name: "sharedmap",
		Doc:  "map fields of goroutine-active structs need a guarding mutex in the struct",
		Run:  runSharedmap,
	}
}

type structFacts struct {
	mapFields map[string]bool
	hasMutex  bool
}

func runSharedmap(pass *Pass) []Finding {
	facts := collectStructFacts(pass)
	active := collectGoroutineActive(pass, facts)

	var out []Finding
	flag := func(pos ast.Node, field string, named *types.Named) {
		out = append(out, pass.finding(pos.Pos(), "sharedmap",
			"map field %q of %s is written without a guarding mutex in the struct, but %s is used from goroutines",
			field, named.Obj().Name(), named.Obj().Name()))
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range nn.Lhs {
					if named, field, ok := mapFieldWrite(pass, facts, active, lhs); ok {
						flag(nn, field, named)
					}
				}
			case *ast.IncDecStmt:
				if named, field, ok := mapFieldWrite(pass, facts, active, nn.X); ok {
					flag(nn, field, named)
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(nn.Fun).(*ast.Ident); ok && id.Name == "delete" && len(nn.Args) > 0 {
					if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
						if sel, ok := ast.Unparen(nn.Args[0]).(*ast.SelectorExpr); ok {
							if named, field, ok := fieldOnUnguardedActive(pass, facts, active, sel); ok {
								flag(nn, field, named)
							}
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// mapFieldWrite reports whether expr is `x.field[key]` where field is a
// map field of an unguarded goroutine-active struct.
func mapFieldWrite(pass *Pass, facts map[*types.Named]*structFacts, active map[*types.Named]bool, expr ast.Expr) (*types.Named, string, bool) {
	idx, ok := ast.Unparen(expr).(*ast.IndexExpr)
	if !ok {
		return nil, "", false
	}
	sel, ok := ast.Unparen(idx.X).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	return fieldOnUnguardedActive(pass, facts, active, sel)
}

func fieldOnUnguardedActive(pass *Pass, facts map[*types.Named]*structFacts, active map[*types.Named]bool, sel *ast.SelectorExpr) (*types.Named, string, bool) {
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil, "", false
	}
	named := derefNamed(selection.Recv())
	if named == nil {
		return nil, "", false
	}
	// Instantiated generics (Cache[string, int]) index facts under their
	// generic origin, which is what collectStructFacts recorded.
	named = named.Origin()
	f, ok := facts[named]
	if !ok || f.hasMutex || !f.mapFields[sel.Sel.Name] || !active[named] {
		return nil, "", false
	}
	return named, sel.Sel.Name, true
}

// collectStructFacts indexes the package's named struct types: their
// map-typed fields and whether a sync mutex lives in the struct.
func collectStructFacts(pass *Pass) map[*types.Named]*structFacts {
	facts := map[*types.Named]*structFacts{}
	for _, obj := range pass.Info.Defs {
		tn, ok := obj.(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		f := &structFacts{mapFields: map[string]bool{}}
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			switch field.Type().Underlying().(type) {
			case *types.Map:
				f.mapFields[field.Name()] = true
			}
			if isSyncMutex(field.Type()) {
				f.hasMutex = true
			}
		}
		facts[named] = f
	}
	return facts
}

func isSyncMutex(t types.Type) bool {
	named := derefNamed(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// collectGoroutineActive marks struct types whose methods spawn
// goroutines or whose values are captured in `go func` literals.
func collectGoroutineActive(pass *Pass, facts map[*types.Named]*structFacts) map[*types.Named]bool {
	active := map[*types.Named]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			spawns := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.GoStmt); ok {
					spawns = true
					return false
				}
				return true
			})
			if !spawns {
				continue
			}
			if def, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				if sig, ok := def.Type().(*types.Signature); ok && sig.Recv() != nil {
					if named := derefNamed(sig.Recv().Type()); named != nil {
						active[named.Origin()] = true
					}
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				tv, ok := pass.Info.Types[id]
				if !ok || tv.Type == nil {
					return true
				}
				if named := derefNamed(tv.Type); named != nil {
					if _, tracked := facts[named.Origin()]; tracked {
						active[named.Origin()] = true
					}
				}
				return true
			})
			return true
		})
	}
	return active
}
