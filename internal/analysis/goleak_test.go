package analysis_test

import "testing"

func TestGoleak(t *testing.T) {
	runCases(t, "goleak", []checkerCase{
		{
			name: "fire-and-forget literal",
			src: `package fixture

func work() {}

func f() {
	go func() { work() }()
}
`,
			want:       1,
			wantSubstr: "completion signal",
		},
		{
			name: "waitgroup done is a signal",
			src: `package fixture

import "sync"

func f() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}
`,
			want: 0,
		},
		{
			name: "channel send is a signal",
			src: `package fixture

func f() <-chan int {
	out := make(chan int, 1)
	go func() { out <- 42 }()
	return out
}
`,
			want: 0,
		},
		{
			name: "channel close is a signal",
			src: `package fixture

func f() <-chan int {
	out := make(chan int)
	go func() { close(out) }()
	return out
}
`,
			want: 0,
		},
		{
			name: "context use is a signal",
			src: `package fixture

import "context"

func f(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}
`,
			want: 0,
		},
		{
			name: "named function goroutine is out of scope",
			src: `package fixture

func worker() {}

func f() { go worker() }
`,
			want: 0,
		},
		{
			name: "lint:ignore suppresses",
			src: `package fixture

func work() {}

func f() {
	//lint:ignore goleak reason: process-lifetime metrics pump, dies with the process
	go func() { work() }()
}
`,
			want: 0,
		},
	})
}
