package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// closeflowChecker proves, per function, that every opened io.Closer
// (files, connections, listeners, gzip writers, HTTP response bodies…)
// is closed or escapes the function on every path. "Escapes" means the
// value itself is returned, stored, sent, captured by a closure, or
// passed to another call — ownership moved, so closing is someone
// else's job. An `if err != nil` branch guarding the open is understood:
// on the failure edge the resource does not exist.
func closeflowChecker() Checker {
	return Checker{
		Name: "closeflow",
		Doc:  "every opened io.Closer/net.Conn/response body is closed or escapes on all paths",
		Run:  runCloseflow,
	}
}

// Resource-state bits.
const (
	cfOpen     uint8 = 1 << iota // may be open and owned here
	cfClosed                     // closed (or the open failed)
	cfEsc                        // ownership escaped
	cfErrStale                   // the open's err was reassigned: nil-check refinement is off
)

type closeFact struct {
	valid bool
	m     map[*types.Var]uint8
}

func cfBottom() closeFact { return closeFact{} }

func cfJoin(a, b closeFact) closeFact {
	if !a.valid {
		return b
	}
	if !b.valid {
		return a
	}
	out := closeFact{valid: true, m: map[*types.Var]uint8{}}
	for v, av := range a.m {
		out.m[v] = av | b.m[v]
	}
	for v, bv := range b.m {
		if _, ok := a.m[v]; !ok {
			out.m[v] = bv
		}
	}
	return out
}

func cfEqual(a, b closeFact) bool {
	if a.valid != b.valid || len(a.m) != len(b.m) {
		return false
	}
	for v, av := range a.m {
		if b.m[v] != av {
			return false
		}
	}
	return true
}

func (f closeFact) clone() closeFact {
	out := closeFact{valid: true, m: make(map[*types.Var]uint8, len(f.m))}
	for v, bits := range f.m {
		out.m[v] = bits
	}
	return out
}

// openSite records where a tracked resource was opened and the error
// variable assigned alongside it (nil when the open cannot fail).
type openSite struct {
	assign  ast.Node // the AssignStmt / ValueSpec
	pos     token.Pos
	errVar  *types.Var
	isBody  bool // *http.Response: close resp.Body, not resp
	varName string
}

func runCloseflow(pass *Pass) []Finding {
	var out []Finding
	for _, file := range pass.Files {
		for _, fb := range collectFuncBodies(file) {
			out = append(out, closeflowFunc(pass, fb)...)
		}
	}
	return out
}

func closeflowFunc(pass *Pass, fb funcBody) []Finding {
	opens := map[*types.Var]*openSite{}
	collectOpens(pass, fb.body, opens)
	if len(opens) == 0 {
		return nil
	}

	cfg := BuildCFG(pass.Info, fb.body)

	tracked := func(id *ast.Ident) *types.Var {
		v, _ := pass.Info.Uses[id].(*types.Var)
		if v == nil {
			v, _ = pass.Info.Defs[id].(*types.Var)
		}
		if v != nil {
			if _, ok := opens[v]; ok {
				return v
			}
		}
		return nil
	}

	transfer := func(blk *Block, in closeFact) closeFact {
		f := in
		if !f.valid {
			f = closeFact{valid: true, m: map[*types.Var]uint8{}}
		} else {
			f = f.clone()
		}
		for _, node := range blk.Nodes {
			closes, escapes := resourceEvents(node, tracked)
			// The node may itself be an open: (re)set to Open last so a
			// same-statement use does not clobber it.
			var opened []*types.Var
			for v, site := range opens {
				if site.assign == node {
					opened = append(opened, v)
				}
			}
			for _, v := range closes {
				f.m[v] = cfClosed
			}
			for _, v := range escapes {
				f.m[v] = cfEsc
			}
			// A write to an open's error variable (by anything but that
			// open itself) makes the `if err != nil` refinement unsound
			// for it: err no longer reports on the open.
			if as, ok := node.(*ast.AssignStmt); ok {
				for _, l := range as.Lhs {
					id, ok := l.(*ast.Ident)
					if !ok {
						continue
					}
					obj := types.Object(nil)
					if d, ok := pass.Info.Defs[id]; ok {
						obj = d
					} else if u, ok := pass.Info.Uses[id]; ok {
						obj = u
					}
					if obj == nil {
						continue
					}
					for v, site := range opens {
						if site.errVar != nil && obj == types.Object(site.errVar) && site.assign != node {
							if bits, ok := f.m[v]; ok {
								f.m[v] = bits | cfErrStale
							}
						}
					}
				}
			}
			for _, v := range opened {
				f.m[v] = cfOpen
			}
		}
		return f
	}

	// Edge refinement: on the "open failed" edge of `if err != nil` /
	// `err == nil`, the resources whose open produced that err are not
	// open.
	edge := func(from *Block, succIdx int, out closeFact) closeFact {
		errObj := condNilCheckVar(pass.Info, from.Cond)
		if errObj == nil || !out.valid {
			return out
		}
		failed := condFailedEdge(from.Cond, succIdx)
		if !failed {
			return out
		}
		refined := out.clone()
		for v, site := range opens {
			if site.errVar == errObj {
				if bits, ok := refined.m[v]; ok && bits&cfErrStale == 0 {
					refined.m[v] = cfClosed
				}
			}
		}
		return refined
	}

	facts := Solve(cfg, Problem[closeFact]{
		Forward:  true,
		Boundary: closeFact{valid: true, m: map[*types.Var]uint8{}},
		Bottom:   cfBottom,
		Join:     cfJoin,
		Equal:    cfEqual,
		Transfer: transfer,
		Edge:     edge,
	})

	exit, ok := facts[cfg.Exit]
	if !ok || !exit.In.valid {
		return nil
	}

	var leaks []*types.Var
	for v, bits := range exit.In.m {
		if bits&cfOpen != 0 {
			leaks = append(leaks, v)
		}
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].Pos() < leaks[j].Pos() })

	var out []Finding
	for _, v := range leaks {
		site := opens[v]
		target := site.varName
		if site.isBody {
			target += ".Body"
		}
		f := pass.finding(site.pos, "closeflow",
			"%s opened here may not be closed on every path out of the function; close it or add defer %s.Close()", site.varName, target)
		if fix := closeFix(pass, fb, v, site); fix != nil {
			f.Fix = fix
		}
		out = append(out, f)
	}
	return out
}

// collectOpens finds assignments that open a tracked resource:
// `x, err := open(...)` / `x := open(...)` / `var x = open(...)` where
// x's type is closeable and the callee looks like a constructor.
func collectOpens(pass *Pass, body ast.Node, opens map[*types.Var]*openSite) {
	record := func(node ast.Node, lhs []ast.Expr, rhs []ast.Expr) {
		if len(rhs) == 0 {
			return
		}
		call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr)
		if !ok || len(rhs) != 1 || !isOpenCall(pass.Info, call) {
			return
		}
		var errVar *types.Var
		var res []*types.Var
		var names []string
		var isBody []bool
		for _, l := range lhs {
			id, ok := l.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			v, _ := pass.Info.Defs[id].(*types.Var)
			if v == nil {
				v, _ = pass.Info.Uses[id].(*types.Var)
			}
			if v == nil {
				continue
			}
			if isErrorType(v.Type()) {
				errVar = v
				continue
			}
			if body, ok := closeableType(v.Type()); ok {
				res = append(res, v)
				names = append(names, id.Name)
				isBody = append(isBody, body)
			}
		}
		for i, v := range res {
			opens[v] = &openSite{assign: node, pos: v.Pos(), errVar: errVar, isBody: isBody[i], varName: names[i]}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			record(s, s.Lhs, s.Rhs)
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						lhs := make([]ast.Expr, len(vs.Names))
						for i, n := range vs.Names {
							lhs[i] = n
						}
						record(s, lhs, vs.Values)
					}
				}
			}
		}
		return true
	})
}

// isOpenCall reports whether the call plausibly transfers ownership of a
// fresh resource to the caller: a constructor-shaped callee or a
// function that returns (T, error). Type conversions never open.
func isOpenCall(info *types.Info, call *ast.CallExpr) bool {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return false
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		// Calls through function values: trust the (T, error) shape.
		return resultsIncludeError(info, call)
	}
	name := fn.Name()
	for _, prefix := range []string{"New", "Open", "Dial", "Listen", "Create", "Accept", "Connect", "Get", "Post", "Do", "RoundTrip", "Load", "Temp", "Start"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return resultsIncludeError(info, call)
}

// closeableType reports whether t is a tracked resource type. The bool
// result is true for *http.Response (closed via .Body).
func closeableType(t types.Type) (viaBody bool, ok bool) {
	if named := derefNamed(t); named != nil {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Response" {
			return true, true
		}
		// Never track the types the linter's own engine hands out
		// non-owned (contexts, iterators); only things with Close()error.
	}
	m := lookupCloseMethod(t)
	if m == nil {
		return false, false
	}
	return false, true
}

// lookupCloseMethod returns t's Close() error method, if any.
func lookupCloseMethod(t types.Type) *types.Func {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Close")
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return nil
	}
	return fn
}

// resourceEvents scans one CFG node for closes and escapes of tracked
// variables. A use inside a function literal is an escape (the closure
// may outlive the frame); `x.Close()` and `x.Body.Close()` are closes;
// x passed as an argument, returned, assigned away, sent, aggregated, or
// address-taken escapes; a method call or field read on x is plain use.
func resourceEvents(node ast.Node, tracked func(*ast.Ident) *types.Var) (closes, escapes []*types.Var) {
	var stack []ast.Node
	ast.Inspect(node, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v := tracked(id)
		if v == nil {
			return true
		}
		for _, anc := range stack[:len(stack)-1] {
			if _, ok := anc.(*ast.FuncLit); ok {
				escapes = append(escapes, v)
				return true
			}
		}
		parent := ast.Node(nil)
		if len(stack) >= 2 {
			parent = stack[len(stack)-2]
		}
		grand := ast.Node(nil)
		if len(stack) >= 3 {
			grand = stack[len(stack)-3]
		}
		great := ast.Node(nil)
		if len(stack) >= 4 {
			great = stack[len(stack)-4]
		}
		switch p := parent.(type) {
		case *ast.SelectorExpr:
			if p.X != id {
				return true // the ident is the .Sel side of someone else's selector
			}
			// x.Close() ?
			if p.Sel.Name == "Close" {
				if c, ok := grand.(*ast.CallExpr); ok && c.Fun == p {
					closes = append(closes, v)
					return true
				}
			}
			// x.Body.Close() ?
			if p.Sel.Name == "Body" {
				if s2, ok := grand.(*ast.SelectorExpr); ok && s2.Sel.Name == "Close" {
					if c, ok := great.(*ast.CallExpr); ok && c.Fun == s2 {
						closes = append(closes, v)
						return true
					}
				}
			}
			// Other method call / field read: plain use, ownership kept.
			return true
		case *ast.CallExpr:
			for _, a := range p.Args {
				if a == ast.Expr(id) {
					escapes = append(escapes, v)
					return true
				}
			}
			return true
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
			escapes = append(escapes, v)
			return true
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				escapes = append(escapes, v)
			}
			return true
		case *ast.AssignStmt:
			for _, r := range p.Rhs {
				if r == ast.Expr(id) {
					escapes = append(escapes, v)
					return true
				}
			}
			return true // LHS position: the open itself, or a kill
		case *ast.BinaryExpr, *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.ForStmt, *ast.RangeStmt, *ast.ExprStmt, *ast.ValueSpec, *ast.ParenExpr, *ast.IndexExpr, *ast.CaseClause:
			return true // comparison / plain statement context: use, not escape
		default:
			// Unknown context (type asserts, conversions, slices…):
			// conservatively treat as escape so we never cry wolf.
			escapes = append(escapes, v)
			return true
		}
	})
	return closes, escapes
}

// condNilCheckVar matches `err != nil` / `err == nil` conditions and
// returns the error variable, else nil.
func condNilCheckVar(info *types.Info, cond ast.Expr) *types.Var {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil
	}
	for _, pair := range [][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		id, ok := ast.Unparen(pair[0]).(*ast.Ident)
		if !ok {
			continue
		}
		nilIdent, ok := ast.Unparen(pair[1]).(*ast.Ident)
		if !ok || nilIdent.Name != "nil" {
			continue
		}
		if v, ok := info.Uses[id].(*types.Var); ok && isErrorType(v.Type()) {
			return v
		}
	}
	return nil
}

// condFailedEdge reports whether succIdx is the edge on which the
// nil-checked error is non-nil (the open failed). The true edge is
// succ 0.
func condFailedEdge(cond ast.Expr, succIdx int) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.NEQ:
		return succIdx == 0
	case token.EQL:
		return succIdx == 1
	}
	return false
}

// closeFix builds the mechanical `defer x.Close()` fix when provably
// safe: the resource is never closed and never escapes anywhere in the
// function, the open is a plain statement not inside a loop, and any
// open error is checked (with an early return) in the very next
// statement so the defer lands after the guard.
func closeFix(pass *Pass, fb funcBody, v *types.Var, site *openSite) *SuggestedFix {
	closes, escapes := resourceEvents(fb.body, func(id *ast.Ident) *types.Var {
		u, _ := pass.Info.Uses[id].(*types.Var)
		if u == v {
			return v
		}
		return nil
	})
	if len(closes) > 0 || len(escapes) > 0 {
		return nil
	}

	// Locate the open statement's enclosing statement list; a defer
	// inside a loop body would pile up, so loops disqualify the fix.
	var anchor ast.Node
	ok := false
	loop := false
	ast.Inspect(fb.body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.ForStmt:
			if containsNode(b.Body, site.assign) {
				loop = true
			}
			return true
		case *ast.RangeStmt:
			if containsNode(b.Body, site.assign) {
				loop = true
			}
			return true
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			return true
		}
		for i, s := range list {
			if ast.Node(s) != site.assign {
				continue
			}
			if site.errVar == nil {
				anchor, ok = s, true
				return false
			}
			// Need `if err != nil { ...return }` immediately after.
			if i+1 < len(list) {
				if ifs, okIf := list[i+1].(*ast.IfStmt); okIf {
					if condNilCheckVar(pass.Info, ifs.Cond) == site.errVar && endsInExit(pass.Info, ifs.Body) {
						anchor, ok = ifs, true
						return false
					}
				}
			}
			return false
		}
		return true
	})
	if !ok || loop {
		return nil
	}
	target := site.varName
	if site.isBody {
		target += ".Body"
	}
	return &SuggestedFix{
		InsertAfter: pass.Fset.Position(anchor.End()),
		Text:        fmt.Sprintf("defer %s.Close()", target),
	}
}

// containsNode reports whether target occurs within root.
func containsNode(root, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// endsInExit reports whether the block's last statement leaves the
// function (return, panic, os.Exit, log.Fatal…).
func endsInExit(info *types.Info, b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			return isTerminalCall(info, call)
		}
	}
	return false
}
