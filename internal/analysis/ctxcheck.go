package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxcheckChecker flags row loops in the compiled SPARQL engine's plan
// operators that run without a cancellation checkpoint. The overload
// protection work (admission budgets, query deadlines) relies on every
// operator polling the execution context at bounded intervals; a loop
// over solution rows or matched triples that neither calls an execCtx
// method (tick/checkpoint/match) nor consults ctx.Err/Done nor a
// budget can spin past a dead deadline for the whole join.
func ctxcheckChecker() Checker {
	return Checker{
		Name: "ctxcheck",
		Doc:  "row/triple loops in sparql plan operators must poll the execution context (execCtx tick/checkpoint, ctx.Err, or a budget method)",
		Run:  runCtxcheck,
	}
}

// ctxcheckPathSuffix scopes the rule to the compiled engine.
const ctxcheckPathSuffix = "internal/sparql"

func runCtxcheck(pass *Pass) []Finding {
	if pass.Path != ctxcheckPathSuffix && !strings.HasSuffix(pass.Path, "/"+ctxcheckPathSuffix) {
		return nil
	}
	var out []Finding
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isPlanOperatorFunc(pass.Info, fn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if !rangesOverSolutions(pass.Info, rng) {
					return true
				}
				if !containsCancellationCheck(pass.Info, rng.Body) {
					out = append(out, pass.finding(rng.Pos(), "ctxcheck",
						"row loop in plan operator has no cancellation checkpoint; call the execCtx tick/checkpoint helpers (or check ctx.Err / the budget) so deadlines and budgets can stop it"))
				}
				return true
			})
		}
	}
	return out
}

// isPlanOperatorFunc reports whether fn is part of the plan-execution
// surface: its receiver or a parameter carries the engine's execution
// context (a type named execCtx).
func isPlanOperatorFunc(info *types.Info, fn *ast.FuncDecl) bool {
	var fields []*ast.Field
	if fn.Recv != nil {
		fields = append(fields, fn.Recv.List...)
	}
	if fn.Type.Params != nil {
		fields = append(fields, fn.Type.Params.List...)
	}
	for _, f := range fields {
		if tv, ok := info.Types[f.Type]; ok && namedTypeName(tv.Type) == "execCtx" {
			return true
		}
	}
	return false
}

// rangesOverSolutions reports whether the range expression iterates
// solution material: a slice of rows (the engine's flat []rdf.Term
// binding rows) or of matched triples.
func rangesOverSolutions(info *types.Info, rng *ast.RangeStmt) bool {
	tv, ok := info.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	switch name := namedTypeName(sl.Elem()); name {
	case "row", "Triple":
		return true
	}
	// []row chunks ([][]row) count too: draining a chunk is still a row
	// loop.
	if inner, ok := sl.Elem().Underlying().(*types.Slice); ok {
		return namedTypeName(inner.Elem()) == "row"
	}
	return false
}

// containsCancellationCheck walks body looking for any recognized
// checkpoint: a method call on the execCtx (tick, checkpoint, match, or
// future helpers), an Err/Done call (context polling), or a method call
// on an admission Budget.
func containsCancellationCheck(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// ctx.Err() / ctx.Done() / <-budget channels etc.: the method
		// name alone marks context polling.
		if sel.Sel.Name == "Err" || sel.Sel.Name == "Done" {
			found = true
			return false
		}
		if tv, ok := info.Types[sel.X]; ok {
			switch namedTypeName(tv.Type) {
			case "execCtx", "Budget":
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// namedTypeName unwraps pointers and returns the bare name of the named
// type beneath ("execCtx", "row", "Triple"), or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if named := derefNamed(t); named != nil {
		return named.Obj().Name()
	}
	return ""
}
