package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	Dir        string
	Pass       *Pass
	TypeErrors []error
}

// Loader discovers, parses, and type-checks packages of the enclosing
// module using only the standard library: file discovery walks the
// module tree the way `go build ./...` would, and imports are resolved
// by the go/importer source importer, which caches across packages. A
// Loader is not safe for concurrent use.
type Loader struct {
	Fset     *token.FileSet
	importer types.Importer
}

// NewLoader returns a Loader with a fresh file set and import cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, importer: importer.ForCompiler(fset, "source", nil)}
}

// Load resolves patterns (directories, or dir/... for recursive walks;
// "./..." is the usual invocation) into type-checked packages, sorted by
// import path. Test files are skipped: the lint gate covers production
// code, `go test -race` covers the tests themselves.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	root, module, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir, root, module)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Pass.Path < pkgs[j].Pass.Path })
	return pkgs, nil
}

// CheckSource parses and type-checks a single in-memory file as a
// package with the given import path — the fixture entry point for the
// checker tests.
func (l *Loader) CheckSource(path, src string) (*Pass, error) {
	file, err := l.parseSource(path, src)
	if err != nil {
		return nil, err
	}
	pass, errs := l.typeCheck(path, []*ast.File{file})
	if len(errs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, errs[0])
	}
	return pass, nil
}

func (l *Loader) parseSource(path, src string) (*ast.File, error) {
	return parser.ParseFile(l.Fset, strings.ReplaceAll(path, "/", "_")+".go", src, parser.ParseComments)
}

// loadDir loads the package in one directory; nil when the directory
// holds no buildable Go files.
func (l *Loader) loadDir(dir, root, module string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("%s is outside module root %s", dir, root)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		// Parse under the module-root-relative name: positions (and the
		// -json / -baseline output built from them) stay stable no
		// matter which directory the linter is invoked from.
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.Fset, filepath.ToSlash(filepath.Join(rel, name)), src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	path := module
	if rel != "." {
		path = module + "/" + filepath.ToSlash(rel)
	}
	pass, typeErrs := l.typeCheck(path, files)
	return &Package{Dir: dir, Pass: pass, TypeErrors: typeErrs}, nil
}

// typeCheck runs go/types over the files, collecting rather than failing
// on type errors so checkers see best-effort info.
func (l *Loader) typeCheck(path string, files []*ast.File) (*Pass, []error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l.importer,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(path, l.Fset, files, info)
	return &Pass{Fset: l.Fset, Path: path, Files: files, Pkg: pkg, Info: info}, typeErrs
}

// ModuleRoot returns the directory of the enclosing go.mod: the base
// against which the linter's root-relative positions resolve.
func ModuleRoot() (string, error) {
	dir, _, err := moduleRoot()
	return dir, err
}

// moduleRoot finds the enclosing go.mod and returns its directory and
// module path.
func moduleRoot() (dir, module string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// expandPatterns turns CLI patterns into a deduplicated directory list.
func expandPatterns(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, p := range patterns {
		if base, ok := strings.CutSuffix(p, "/..."); ok {
			if base == "" || base == "." {
				base = "."
			}
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		st, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			return nil, fmt.Errorf("pattern %q is not a directory", p)
		}
		add(p)
	}
	return dirs, nil
}
