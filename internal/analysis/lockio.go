package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ioMethodNames are method names that mean "this blocks on the network"
// in this codebase regardless of receiver: the opendap.Fetcher interface
// and its wrappers (Fetch), the http.Client entry points (Do,
// RoundTrip), and dialers. Receiver-independent matching is deliberate:
// the concurrent query stack calls these through interfaces, where the
// static receiver tells us nothing.
var ioMethodNames = map[string]bool{
	"Fetch":       true,
	"Do":          true,
	"RoundTrip":   true,
	"Dial":        true,
	"DialContext": true,
}

// lockioChecker flags sync.Mutex/RWMutex critical sections that perform
// IO: an OPeNDAP/HTTP/network call, a time.Sleep, or a channel
// operation. Holding a lock across a slow remote call serializes the
// whole query fan-out behind one endpoint's latency — the exact failure
// mode the paper's on-the-fly architecture must avoid.
func lockioChecker() Checker {
	return Checker{
		Name: "lockio",
		Doc:  "no network IO, sleeps, or channel ops while holding a mutex",
		Run:  runLockio,
	}
}

func runLockio(pass *Pass) []Finding {
	var out []Finding
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			out = append(out, checkBlock(pass, block)...)
			return true
		})
	}
	return out
}

// checkBlock scans one statement list for Lock calls and inspects the
// critical section that follows. Sections are resolved lexically within
// the block: Lock…Unlock pairs bound the section; `defer Unlock`
// (or a missing Unlock) extends it to the end of the block.
func checkBlock(pass *Pass, block *ast.BlockStmt) []Finding {
	var out []Finding
	for i, stmt := range block.List {
		recv, kind := lockCall(pass.Info, stmt)
		if kind != "Lock" && kind != "RLock" {
			continue
		}
		end := len(block.List)
		for j := i + 1; j < len(block.List); j++ {
			r, k := lockCall(pass.Info, block.List[j])
			if r == recv && (k == "Unlock" || k == "RUnlock") {
				end = j
				break
			}
		}
		for _, s := range block.List[i+1 : end] {
			if _, k := lockCall(pass.Info, s); k == "defer-unlock" {
				continue
			}
			out = append(out, findIO(pass, s, recv)...)
		}
	}
	return out
}

// lockCall classifies a statement as a sync lock/unlock call on some
// receiver expression (rendered as a string key), or returns kind "".
// A deferred unlock is classified separately: it does not end the
// critical section.
func lockCall(info *types.Info, stmt ast.Stmt) (recv, kind string) {
	var call *ast.CallExpr
	deferred := false
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		call = s.Call
		deferred = true
	}
	if call == nil {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn := calleeFunc(info, call)
	if !isPkgFunc(fn, "sync", "Lock", "RLock", "Unlock", "RUnlock") {
		return "", ""
	}
	recv = types.ExprString(sel.X)
	if deferred {
		if fn.Name() == "Unlock" || fn.Name() == "RUnlock" {
			return recv, "defer-unlock"
		}
		return "", ""
	}
	return recv, fn.Name()
}

// findIO reports IO performed by stmt while the lock named recv is held.
// Function literals are not entered: a goroutine or stored closure runs
// outside this critical section.
func findIO(pass *Pass, stmt ast.Stmt, recv string) []Finding {
	var out []Finding
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			out = append(out, pass.finding(nn.Pos(), "lockio",
				"channel send while holding %s; the lock blocks until a receiver is ready", recv))
		case *ast.UnaryExpr:
			if nn.Op == token.ARROW {
				out = append(out, pass.finding(nn.Pos(), "lockio",
					"channel receive while holding %s; the lock blocks until a sender is ready", recv))
			}
		case *ast.CallExpr:
			if name, ok := ioCall(pass.Info, nn); ok {
				out = append(out, pass.finding(nn.Pos(), "lockio",
					"%s called while holding %s; do the IO outside the critical section", name, recv))
			}
		}
		return true
	})
	return out
}

// ioCall reports whether the call is network IO or a sleep.
func ioCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	if pkg := fn.Pkg(); pkg != nil {
		if pkg.Path() == "net" || strings.HasPrefix(pkg.Path(), "net/") {
			return pkg.Name() + "." + fn.Name(), true
		}
		if pkg.Path() == "time" && fn.Name() == "Sleep" {
			return "time.Sleep", true
		}
	}
	if recvTypeString(fn) != "" && ioMethodNames[fn.Name()] {
		return calleeName(fn, call), true
	}
	return "", false
}
