package sparql

import (
	"fmt"
	"strings"
	"testing"

	"applab/internal/rdf"
)

func mustParse(t testing.TB, q string) *Query {
	t.Helper()
	parsed, err := Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return parsed
}

func keyOf(t testing.TB, q string) string {
	t.Helper()
	return mustParse(t, q).PlanKey().Key
}

// TestPlanKeySlotNormalization is the regression test for keying on
// parser-chosen variable names: two queries that differ only in their
// variable spelling must canonicalize to the same key. Without slot
// normalization (rendering ?x / ?y verbatim) this fails.
func TestPlanKeySlotNormalization(t *testing.T) {
	a := keyOf(t, `SELECT ?x WHERE { ?x <http://ex/p> ?y . FILTER(?y > 3) }`)
	b := keyOf(t, `SELECT ?a WHERE { ?a <http://ex/p> ?b . FILTER(?b > 3) }`)
	if a != b {
		t.Fatalf("renamed variables changed the plan key:\n  %s\n  %s", a, b)
	}
	// Different structure must still separate.
	c := keyOf(t, `SELECT ?a WHERE { ?a <http://ex/p> ?b . FILTER(?a > 3) }`)
	if a == c {
		t.Fatalf("filter over a different variable collided: %s", a)
	}
}

func TestPlanKeyVarMapConsistency(t *testing.T) {
	p1 := mustParse(t, `SELECT ?x WHERE { ?x <http://ex/p> ?y }`).PlanKey()
	p2 := mustParse(t, `SELECT ?s WHERE { ?s <http://ex/p> ?o }`).PlanKey()
	if p1.Key != p2.Key {
		t.Fatalf("isomorphic queries got different keys")
	}
	if p1.VarMap["x"] != p2.VarMap["s"] || p1.VarMap["y"] != p2.VarMap["o"] {
		t.Fatalf("corresponding variables map to different slots: %v vs %v", p1.VarMap, p2.VarMap)
	}
	if p1.VarMap["x"] == p1.VarMap["y"] {
		t.Fatalf("distinct variables share a slot: %v", p1.VarMap)
	}
}

func TestPlanKeyPatternReorder(t *testing.T) {
	pats := []string{
		`?s <http://ex/p> ?o`,
		`?o <http://ex/q> ?v`,
		`?s <http://ex/r> "lit"`,
		`?v <http://ex/t> ?w`,
	}
	perm := func(idx ...int) string {
		var sb strings.Builder
		sb.WriteString("SELECT ?s WHERE { ")
		for _, i := range idx {
			sb.WriteString(pats[i])
			sb.WriteString(" . ")
		}
		sb.WriteString("}")
		return sb.String()
	}
	want := keyOf(t, perm(0, 1, 2, 3))
	var perms [][]int
	var gen func(cur, rest []int)
	gen = func(cur, rest []int) {
		if len(rest) == 0 {
			perms = append(perms, append([]int(nil), cur...))
			return
		}
		for i := range rest {
			nr := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
			gen(append(cur, rest[i]), nr)
		}
	}
	gen(nil, []int{0, 1, 2, 3})
	for _, p := range perms {
		if got := keyOf(t, perm(p...)); got != want {
			t.Fatalf("permutation %v changed the key:\n  %s\n  %s", p, got, want)
		}
	}
}

// TestPlanKeyCycleRotation exercises the symmetric case WL coloring alone
// cannot break: every variable of a predicate cycle has the same color,
// so the number-render-resort fixed point must collapse the rotations.
func TestPlanKeyCycleRotation(t *testing.T) {
	forms := []string{
		`SELECT ?a WHERE { ?a <http://ex/p> ?b . ?b <http://ex/p> ?c . ?c <http://ex/p> ?a }`,
		`SELECT ?b WHERE { ?b <http://ex/p> ?c . ?c <http://ex/p> ?a . ?a <http://ex/p> ?b }`,
		`SELECT ?x WHERE { ?z <http://ex/p> ?x . ?x <http://ex/p> ?y . ?y <http://ex/p> ?z }`,
	}
	want := keyOf(t, forms[0])
	for _, f := range forms[1:] {
		if got := keyOf(t, f); got != want {
			t.Fatalf("cycle rotation changed the key:\n  %s\n  %s", got, want)
		}
	}
}

// TestPlanKeyAdjacentBGPSplit pins the join-unit coalescing: patterns
// split across adjacent BGP blocks form one unit (as in compileGroup),
// so the split must not reach the key.
func TestPlanKeyAdjacentBGPSplit(t *testing.T) {
	p := rdf.NewIRI("http://ex/p")
	q := rdf.NewIRI("http://ex/q")
	one := &Query{
		Type:       QuerySelect,
		Projection: []Projection{{Var: "s"}},
		Where: &Group{Elements: []Element{
			BGP{Patterns: []TriplePattern{
				{S: Vart("s"), P: Const(p), O: Vart("o")},
				{S: Vart("o"), P: Const(q), O: Vart("v")},
			}},
		}},
		Limit: -1,
	}
	split := &Query{
		Type:       QuerySelect,
		Projection: []Projection{{Var: "s"}},
		Where: &Group{Elements: []Element{
			BGP{Patterns: []TriplePattern{{S: Vart("o"), P: Const(q), O: Vart("v")}}},
			BGP{Patterns: []TriplePattern{{S: Vart("s"), P: Const(p), O: Vart("o")}}},
		}},
		Limit: -1,
	}
	if one.PlanKey().Key != split.PlanKey().Key {
		t.Fatalf("adjacent BGP split changed the key")
	}
}

func TestPlanKeyConstantFolding(t *testing.T) {
	a := keyOf(t, `SELECT ?v WHERE { ?s <http://ex/p> ?v . FILTER(?v > 2 + 3) }`)
	b := keyOf(t, `SELECT ?v WHERE { ?s <http://ex/p> ?v . FILTER(?v > 5) }`)
	if a != b {
		t.Fatalf("constant-folded filter changed the key:\n  %s\n  %s", a, b)
	}
	// A fold that would error at runtime (division by zero) must be left
	// alone, not collapsed onto some other constant.
	c := keyOf(t, `SELECT ?v WHERE { ?s <http://ex/p> ?v . FILTER(?v > 1 / 0) }`)
	if c == a {
		t.Fatalf("erroring constant expression was folded")
	}
}

func TestPlanKeyWhitespace(t *testing.T) {
	a := keyOf(t, `SELECT ?s WHERE { ?s <http://ex/p> ?o . FILTER(?o > 1) }`)
	b := keyOf(t, "SELECT   ?s\nWHERE {\n\t?s <http://ex/p> ?o .\n\tFILTER( ?o > 1 )\n}")
	if a != b {
		t.Fatalf("whitespace changed the key")
	}
}

// TestPlanKeyFilterPosition pins the conservative choice: this engine
// applies filters positionally, so moving a filter across a pattern is
// not a rewrite the key may erase.
func TestPlanKeyFilterPosition(t *testing.T) {
	a := keyOf(t, `SELECT ?s WHERE { ?s <http://ex/p> ?o . FILTER(?v > 1) ?o <http://ex/q> ?v }`)
	b := keyOf(t, `SELECT ?s WHERE { ?s <http://ex/p> ?o . ?o <http://ex/q> ?v . FILTER(?v > 1) }`)
	if a == b {
		t.Fatalf("filter position was erased from the key")
	}
}

func TestPlanKeyDistinctQueries(t *testing.T) {
	queries := []string{
		`SELECT ?s WHERE { ?s <http://ex/p> ?o }`,
		`SELECT ?s WHERE { ?s <http://ex/q> ?o }`,
		`SELECT ?s WHERE { ?s <http://ex/p> "x" }`,
		`SELECT ?s WHERE { ?s <http://ex/p> "y" }`,
		`SELECT ?s WHERE { ?s <http://ex/p> ?o } LIMIT 3`,
		`SELECT ?s WHERE { ?s <http://ex/p> ?o } LIMIT 3 OFFSET 2`,
		`SELECT DISTINCT ?s WHERE { ?s <http://ex/p> ?o }`,
		`SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }`,
		`SELECT ?s WHERE { ?s <http://ex/p> ?o } ORDER BY ?o`,
		`SELECT ?s WHERE { ?s <http://ex/p> ?o } ORDER BY DESC(?o)`,
		`SELECT ?s WHERE { ?s <http://ex/p> ?o . OPTIONAL { ?s <http://ex/q> ?v } }`,
		`SELECT ?s WHERE { ?s <http://ex/p> ?o . ?s <http://ex/q> ?v }`,
		`SELECT ?s WHERE { { ?s <http://ex/p> ?o } UNION { ?s <http://ex/q> ?o } }`,
		`SELECT ?s WHERE { ?s <http://ex/p> ?o . FILTER(?o > 1) }`,
		`SELECT ?s WHERE { ?s <http://ex/p> ?o . FILTER(?o >= 1) }`,
		`SELECT ?s WHERE { ?s <http://ex/p> ?o . FILTER EXISTS { ?s <http://ex/q> ?v } }`,
		`SELECT ?s WHERE { ?s <http://ex/p> ?o . FILTER NOT EXISTS { ?s <http://ex/q> ?v } }`,
		`SELECT (COUNT(?o) AS ?n) WHERE { ?s <http://ex/p> ?o }`,
		`SELECT (SUM(?o) AS ?n) WHERE { ?s <http://ex/p> ?o }`,
		`SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s <http://ex/p> ?o } GROUP BY ?s`,
		`ASK { ?s <http://ex/p> ?o }`,
		`CONSTRUCT { ?s <http://ex/derived> ?o } WHERE { ?s <http://ex/p> ?o }`,
		`SELECT ?s WHERE { ?s <http://ex/p> ?o . VALUES ?o { "a" "b" } }`,
		`SELECT ?s WHERE { ?s <http://ex/p> ?o . VALUES ?o { "a" "c" } }`,
		`SELECT ?s WHERE { ?s <http://ex/p> ?o . BIND(?o + 1 AS ?v) }`,
	}
	seen := map[string]string{}
	for _, q := range queries {
		k := keyOf(t, q)
		if prev, ok := seen[k]; ok {
			t.Fatalf("key collision between distinct queries:\n  %s\n  %s", prev, q)
		}
		seen[k] = q
	}
}

// ---- fuzzing ----

// renameVars rewrites every variable through f — a semantics-preserving
// transform as long as f is injective on the query's names.
func renameVars(q *Query, f func(string) string) *Query {
	var rex func(e Expr) Expr
	rex = func(e Expr) Expr {
		switch x := e.(type) {
		case VarExpr:
			return VarExpr{Name: f(x.Name)}
		case BinaryExpr:
			return BinaryExpr{Op: x.Op, L: rex(x.L), R: rex(x.R)}
		case UnaryExpr:
			return UnaryExpr{Op: x.Op, X: rex(x.X)}
		case CallExpr:
			args := make([]Expr, len(x.Args))
			for i, a := range x.Args {
				args[i] = rex(a)
			}
			return CallExpr{IRI: x.IRI, Args: args}
		default:
			return e
		}
	}
	rpt := func(pt PatternTerm) PatternTerm {
		if pt.IsVar() {
			return PatternTerm{Var: f(pt.Var)}
		}
		return pt
	}
	rtp := func(tp TriplePattern) TriplePattern {
		return TriplePattern{S: rpt(tp.S), P: rpt(tp.P), O: rpt(tp.O)}
	}
	var rg func(g *Group) *Group
	rg = func(g *Group) *Group {
		if g == nil {
			return nil
		}
		out := &Group{}
		for _, el := range g.Elements {
			switch e := el.(type) {
			case BGP:
				pats := make([]TriplePattern, len(e.Patterns))
				for i, tp := range e.Patterns {
					pats[i] = rtp(tp)
				}
				out.Elements = append(out.Elements, BGP{Patterns: pats})
			case Filter:
				out.Elements = append(out.Elements, Filter{Expr: rex(e.Expr)})
			case Optional:
				out.Elements = append(out.Elements, Optional{Group: rg(e.Group)})
			case Union:
				alts := make([]*Group, len(e.Alternatives))
				for i, a := range e.Alternatives {
					alts[i] = rg(a)
				}
				out.Elements = append(out.Elements, Union{Alternatives: alts})
			case SubGroup:
				out.Elements = append(out.Elements, SubGroup{Group: rg(e.Group)})
			case Exists:
				out.Elements = append(out.Elements, Exists{Negated: e.Negated, Group: rg(e.Group)})
			case Bind:
				out.Elements = append(out.Elements, Bind{Var: f(e.Var), Expr: rex(e.Expr)})
			case Values:
				vars := make([]string, len(e.Vars))
				for i, v := range e.Vars {
					vars[i] = f(v)
				}
				out.Elements = append(out.Elements, Values{Vars: vars, Rows: e.Rows})
			}
		}
		return out
	}
	nq := *q
	nq.Where = rg(q.Where)
	nq.Projection = nil
	for _, pr := range q.Projection {
		np := Projection{Var: f(pr.Var)}
		if pr.Expr != nil {
			np.Expr = rex(pr.Expr)
		}
		if pr.Agg != nil {
			agg := *pr.Agg
			if agg.Arg != nil {
				agg.Arg = rex(agg.Arg)
			}
			np.Agg = &agg
		}
		nq.Projection = append(nq.Projection, np)
	}
	nq.GroupBy = nil
	for _, gv := range q.GroupBy {
		nq.GroupBy = append(nq.GroupBy, f(gv))
	}
	nq.OrderBy = nil
	for _, ok := range q.OrderBy {
		nq.OrderBy = append(nq.OrderBy, OrderKey{Expr: rex(ok.Expr), Desc: ok.Desc})
	}
	nq.Template = nil
	for _, tp := range q.Template {
		nq.Template = append(nq.Template, rtp(tp))
	}
	return &nq
}

// reverseBGPs reverses pattern order inside every BGP — a rewrite inside
// the planner's join unit, so it must be key-invariant.
func reverseBGPs(q *Query) *Query {
	var rg func(g *Group) *Group
	rg = func(g *Group) *Group {
		if g == nil {
			return nil
		}
		out := &Group{}
		for _, el := range g.Elements {
			switch e := el.(type) {
			case BGP:
				pats := make([]TriplePattern, len(e.Patterns))
				for i, tp := range e.Patterns {
					pats[len(pats)-1-i] = tp
				}
				out.Elements = append(out.Elements, BGP{Patterns: pats})
			case Optional:
				out.Elements = append(out.Elements, Optional{Group: rg(e.Group)})
			case Union:
				alts := make([]*Group, len(e.Alternatives))
				for i, a := range e.Alternatives {
					alts[i] = rg(a)
				}
				out.Elements = append(out.Elements, Union{Alternatives: alts})
			case SubGroup:
				out.Elements = append(out.Elements, SubGroup{Group: rg(e.Group)})
			case Exists:
				out.Elements = append(out.Elements, Exists{Negated: e.Negated, Group: rg(e.Group)})
			default:
				out.Elements = append(out.Elements, el)
			}
		}
		return out
	}
	nq := *q
	nq.Where = rg(q.Where)
	return &nq
}

// splitBGPs splits every multi-pattern BGP into adjacent single-pattern
// BGPs — coalesced back into one unit by the compiler, so key-invariant.
func splitBGPs(q *Query) *Query {
	var rg func(g *Group) *Group
	rg = func(g *Group) *Group {
		if g == nil {
			return nil
		}
		out := &Group{}
		for _, el := range g.Elements {
			switch e := el.(type) {
			case BGP:
				for _, tp := range e.Patterns {
					out.Elements = append(out.Elements, BGP{Patterns: []TriplePattern{tp}})
				}
			case Optional:
				out.Elements = append(out.Elements, Optional{Group: rg(e.Group)})
			case Union:
				alts := make([]*Group, len(e.Alternatives))
				for i, a := range e.Alternatives {
					alts[i] = rg(a)
				}
				out.Elements = append(out.Elements, Union{Alternatives: alts})
			case SubGroup:
				out.Elements = append(out.Elements, SubGroup{Group: rg(e.Group)})
			case Exists:
				out.Elements = append(out.Elements, Exists{Negated: e.Negated, Group: rg(e.Group)})
			default:
				out.Elements = append(out.Elements, el)
			}
		}
		return out
	}
	nq := *q
	nq.Where = rg(q.Where)
	return &nq
}

func FuzzPlanKey(f *testing.F) {
	seeds := []string{
		`SELECT ?s WHERE { ?s <http://ex/p> ?o }`,
		`SELECT ?x ?y WHERE { ?x <http://ex/p> ?y . ?y <http://ex/q> ?z . FILTER(?z > 1 + 2) }`,
		`SELECT ?a WHERE { ?a <http://ex/p> ?b . ?b <http://ex/p> ?c . ?c <http://ex/p> ?a }`,
		`SELECT DISTINCT ?s WHERE { { ?s <http://ex/p> ?o } UNION { ?s <http://ex/q> ?o } } ORDER BY ?s LIMIT 5`,
		`SELECT ?s WHERE { ?s <http://ex/p> ?o . OPTIONAL { ?o <http://ex/q> ?v . FILTER(?v != "x") } }`,
		`SELECT (COUNT(?o) AS ?n) ?s WHERE { ?s <http://ex/p> ?o } GROUP BY ?s`,
		`ASK { ?s <http://ex/p> ?o . ?o <http://ex/q> "lit" }`,
		`CONSTRUCT { ?s <http://ex/d> ?o } WHERE { ?s <http://ex/p> ?o . BIND(?o + 1 AS ?v) . FILTER(?v < 10) }`,
		`SELECT ?s WHERE { ?s <http://ex/p> ?o . VALUES ?o { "a" "b" } . FILTER EXISTS { ?s <http://ex/q> ?w } }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			t.Skip()
		}
		base := q.PlanKey()

		// Variable renaming is invisible.
		renamed := renameVars(q, func(v string) string { return "zz_" + v })
		if got := renamed.PlanKey(); got.Key != base.Key {
			t.Fatalf("rename changed key for %q:\n  %s\n  %s", input, base.Key, got.Key)
		}

		// Pattern order inside a join unit is invisible.
		if got := reverseBGPs(q).PlanKey(); got.Key != base.Key {
			t.Fatalf("BGP reversal changed key for %q:\n  %s\n  %s", input, base.Key, got.Key)
		}

		// Splitting a unit across adjacent BGP blocks is invisible.
		if got := splitBGPs(q).PlanKey(); got.Key != base.Key {
			t.Fatalf("BGP split changed key for %q:\n  %s\n  %s", input, base.Key, got.Key)
		}

		// Composition of all three is invisible.
		combo := splitBGPs(reverseBGPs(renameVars(q, func(v string) string { return v + "_r" })))
		if got := combo.PlanKey(); got.Key != base.Key {
			t.Fatalf("combined rewrite changed key for %q", input)
		}

		// A semantic change must separate: LIMIT is part of the answer.
		mutated := *q
		if mutated.Limit < 0 {
			mutated.Limit = 1
		} else {
			mutated.Limit++
		}
		if got := mutated.PlanKey(); got.Key == base.Key {
			t.Fatalf("limit mutation kept the key for %q: %s", input, base.Key)
		}

		// VarMap must be a bijection onto the slots used in the key.
		inv := map[string]string{}
		for name, slot := range base.VarMap {
			if prev, ok := inv[slot]; ok {
				t.Fatalf("two variables (%s, %s) share slot %s for %q", prev, name, slot, input)
			}
			inv[slot] = name
		}
	})
}

func BenchmarkPlanKey(b *testing.B) {
	q := mustParse(b, `SELECT ?s ?lai WHERE { ?s <http://ex/p> ?o . ?o <http://ex/q> ?lai . FILTER(?lai > 0) }`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = q.PlanKey()
	}
}

var _ = fmt.Sprintf // keep fmt for debugging helpers
