package sparql

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"applab/internal/admission"
	"applab/internal/geom"
	"applab/internal/rdf"
)

// The spatial-join operator must be invisible except for speed: every
// strategy (R-tree nested loop, Hilbert cells, store pushdown) has to
// produce exactly the rows the per-row filter path produces, in the
// same order for any worker count. These tests pin the detection rules
// and the equivalence.

const spatialTestIntersects = "urn:test:intersects"

var spatialTestRegisterOnce sync.Once

// registerSpatialTestFn installs the test predicate on both sides of
// the contract: as an ordinary extension function (the filter path) and
// as a spatial relation (the join path).
func registerSpatialTestFn() {
	spatialTestRegisterOnce.Do(func() {
		RegisterFunction(spatialTestIntersects, func(args []rdf.Term) (rdf.Term, error) {
			if len(args) != 2 {
				return rdf.Term{}, fmt.Errorf("urn:test:intersects takes two arguments")
			}
			ga, err := geom.ParseWKT(args[0].Value)
			if err != nil {
				return rdf.Term{}, err
			}
			gb, err := geom.ParseWKT(args[1].Value)
			if err != nil {
				return rdf.Term{}, err
			}
			return rdf.NewBool(geom.Intersects(ga, gb)), nil
		})
		RegisterSpatialRelation(spatialTestIntersects, geom.Intersects)
	})
}

// restoreSpatialKnobs resets the package-wide spatial configuration.
func restoreSpatialKnobs(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		if err := SetSpatialJoin(""); err != nil {
			t.Fatal(err)
		}
		SetSpatialCells(0)
	})
}

var (
	spKind = rdf.NewIRI("urn:sp:kind")
	spWKT  = rdf.NewIRI("urn:sp:wkt")
)

// spatialGraph holds nRegions unit squares on a 10x10 grid plus nPlaces
// random points and segments, each feature tagged with its kind and a
// WKT serialization. A few broken features (unparsable WKT, IRI-valued
// geometry) exercise the decode-failure path.
func spatialGraph(nRegions, nPlaces int) *rdf.Graph {
	g := rdf.NewGraph()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < nRegions; i++ {
		s := rdf.NewIRI(fmt.Sprintf("urn:sp:r%d", i))
		x := float64(i % 10)
		y := float64(i / 10)
		g.Add(rdf.NewTriple(s, spKind, rdf.NewLiteral("region")))
		g.Add(rdf.NewTriple(s, spWKT, rdf.NewWKT(geom.NewRect(x, y, x+1, y+1).WKT())))
	}
	for i := 0; i < nPlaces; i++ {
		s := rdf.NewIRI(fmt.Sprintf("urn:sp:p%d", i))
		g.Add(rdf.NewTriple(s, spKind, rdf.NewLiteral("place")))
		x := rng.Float64() * 11
		y := rng.Float64() * 11
		var w string
		if i%4 == 0 {
			w = (&geom.LineString{Points: []geom.Point{{X: x, Y: y}, {X: x + 0.8, Y: y + 0.4}}}).WKT()
		} else {
			w = geom.NewPoint(x, y).WKT()
		}
		g.Add(rdf.NewTriple(s, spWKT, rdf.NewWKT(w)))
	}
	bad := rdf.NewIRI("urn:sp:bad")
	g.Add(rdf.NewTriple(bad, spKind, rdf.NewLiteral("place")))
	g.Add(rdf.NewTriple(bad, spWKT, rdf.NewLiteral("POINT (not wkt")))
	iri := rdf.NewIRI("urn:sp:irigeom")
	g.Add(rdf.NewTriple(iri, spKind, rdf.NewLiteral("place")))
	g.Add(rdf.NewTriple(iri, spWKT, rdf.NewIRI("urn:sp:not-a-literal")))
	return g
}

const spatialJoinQuery = `PREFIX sp: <urn:sp:> PREFIX t: <urn:test:>
SELECT ?a ?b WHERE {
  ?a sp:kind "place" . ?a sp:wkt ?wa .
  ?b sp:kind "region" . ?b sp:wkt ?wb .
  FILTER(t:intersects(?wa, ?wb))
}`

func opsContainSpatialJoin(ops []op) *spatialJoinOp {
	for _, o := range ops {
		if sj, ok := o.(*spatialJoinOp); ok {
			return sj
		}
	}
	return nil
}

func compileOps(t *testing.T, query string, src Source) []op {
	t.Helper()
	q, err := Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	return compileQuery(q, src).ops
}

func TestSpatialJoinDetection(t *testing.T) {
	registerSpatialTestFn()
	restoreSpatialKnobs(t)
	g := spatialGraph(40, 40)

	sj := opsContainSpatialJoin(compileOps(t, spatialJoinQuery, g))
	if sj == nil {
		t.Fatal("spatial unit not detected on the canonical two-component query")
	}
	if sj.scan != nil {
		t.Fatal("sp:wkt build side misdetected as a geo:asWKT store scan")
	}

	// A second, non-spatial filter in the run must survive as a filterOp.
	withExtra := `PREFIX sp: <urn:sp:> PREFIX t: <urn:test:>
SELECT ?a ?b WHERE {
  ?a sp:kind "place" . ?a sp:wkt ?wa .
  ?b sp:kind "region" . ?b sp:wkt ?wb .
  FILTER(t:intersects(?wa, ?wb)) FILTER(?a != ?b)
}`
	ops := compileOps(t, withExtra, g)
	if opsContainSpatialJoin(ops) == nil {
		t.Fatal("extra trailing filter blocked detection")
	}
	hasFilter := false
	for _, o := range ops {
		if _, ok := o.(*filterOp); ok {
			hasFilter = true
		}
	}
	if !hasFilter {
		t.Fatal("non-spatial filter was swallowed by the spatial unit")
	}

	// The bare geo:asWKT build side is the store-pushdown shape.
	storeShape := `PREFIX sp: <urn:sp:> PREFIX geo: <http://www.opengis.net/ont/geosparql#> PREFIX t: <urn:test:>
SELECT ?a ?b WHERE {
  ?a sp:kind "place" . ?a geo:asWKT ?wa .
  ?b geo:asWKT ?wb .
  FILTER(t:intersects(?wa, ?wb))
}`
	sj = opsContainSpatialJoin(compileOps(t, storeShape, spatialSourceGraph(10, 20)))
	if sj == nil {
		t.Fatal("store-shape query not detected")
	}
	if sj.scan == nil {
		t.Fatal("bare geo:asWKT build side not recognized as store scan shape")
	}
}

func TestSpatialJoinNotDetected(t *testing.T) {
	registerSpatialTestFn()
	restoreSpatialKnobs(t)
	g := spatialGraph(10, 10)
	cases := map[string]string{
		"shared variable connects the components": `PREFIX sp: <urn:sp:> PREFIX t: <urn:test:>
SELECT ?a WHERE { ?a sp:wkt ?wa . ?a sp:kind ?wb . FILTER(t:intersects(?wa, ?wb)) }`,
		"unregistered relation": `PREFIX sp: <urn:sp:> PREFIX t: <urn:test:>
SELECT ?a ?b WHERE { ?a sp:kind "place" . ?a sp:wkt ?wa . ?b sp:kind "region" . ?b sp:wkt ?wb .
  FILTER(t:nosuchrel(?wa, ?wb)) }`,
		"constant argument": `PREFIX sp: <urn:sp:> PREFIX t: <urn:test:>
SELECT ?a ?b WHERE { ?a sp:kind "place" . ?a sp:wkt ?wa . ?b sp:kind "region" . ?b sp:wkt ?wb .
  FILTER(t:intersects(?wa, "POINT (1 1)")) }`,
		"argument bound before the unit": `PREFIX sp: <urn:sp:> PREFIX t: <urn:test:>
SELECT ?b WHERE { VALUES ?wa { "POINT (1 1)" } ?b sp:kind "region" . ?b sp:wkt ?wb .
  FILTER(t:intersects(?wa, ?wb)) }`,
	}
	for name, query := range cases {
		if opsContainSpatialJoin(compileOps(t, query, g)) != nil {
			t.Errorf("%s: spatial unit detected, want plain compilation", name)
		}
	}

	if err := SetSpatialJoin(SpatialJoinOff); err != nil {
		t.Fatal(err)
	}
	if opsContainSpatialJoin(compileOps(t, spatialJoinQuery, g)) != nil {
		t.Error("mode off still detected a spatial unit")
	}
}

// TestSpatialJoinMatchesFilterPath is the differential core: every
// strategy and worker count returns the canonical filter-path answer,
// and within a mode the row order is identical across worker counts.
func TestSpatialJoinMatchesFilterPath(t *testing.T) {
	registerSpatialTestFn()
	restoreSpatialKnobs(t)
	g := spatialGraph(60, 150)
	q, err := Parse(spatialJoinQuery)
	if err != nil {
		t.Fatal(err)
	}

	if err := SetSpatialJoin(SpatialJoinOff); err != nil {
		t.Fatal(err)
	}
	base, err := q.Eval(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Bindings) == 0 {
		t.Fatal("filter-path baseline returned no rows; the workload is broken")
	}
	seed, err := q.EvalSeed(g)
	if err != nil {
		t.Fatal(err)
	}
	if resultsKey(seed) != resultsKey(base) {
		t.Fatal("compiled filter path disagrees with seed evaluator")
	}

	for _, mode := range []string{SpatialJoinAuto, SpatialJoinINL, SpatialJoinCells, SpatialJoinStore} {
		for _, order := range []int{0, 3} {
			if err := SetSpatialJoin(mode); err != nil {
				t.Fatal(err)
			}
			SetSpatialCells(order)
			var firstOrdered string
			for _, workers := range []int{1, 8} {
				res, err := q.eval(g, workers, 1)
				if err != nil {
					t.Fatalf("mode=%s order=%d workers=%d: %v", mode, order, workers, err)
				}
				if resultsKey(res) != resultsKey(base) {
					t.Fatalf("mode=%s order=%d workers=%d: %d rows, filter path %d rows",
						mode, order, workers, len(res.Bindings), len(base.Bindings))
				}
				if firstOrdered == "" {
					firstOrdered = orderedKey(res)
				} else if orderedKey(res) != firstOrdered {
					t.Fatalf("mode=%s order=%d: row order differs between worker counts", mode, order)
				}
			}
		}
	}
}

// spatialSourceGraph builds a graph whose geometries hang off
// geo:asWKT, the store-pushdown shape.
func spatialSourceGraph(nRegions, nPlaces int) *rdf.Graph {
	g := rdf.NewGraph()
	asWKT := rdf.NewIRI(rdf.NSGeo + "asWKT")
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < nRegions; i++ {
		s := rdf.NewIRI(fmt.Sprintf("urn:sp:r%d", i))
		x := float64(i % 5)
		y := float64(i / 5)
		g.Add(rdf.NewTriple(s, spKind, rdf.NewLiteral("region")))
		g.Add(rdf.NewTriple(s, asWKT, rdf.NewWKT(geom.NewRect(x, y, x+1, y+1).WKT())))
	}
	for i := 0; i < nPlaces; i++ {
		s := rdf.NewIRI(fmt.Sprintf("urn:sp:p%d", i))
		g.Add(rdf.NewTriple(s, spKind, rdf.NewLiteral("place")))
		g.Add(rdf.NewTriple(s, asWKT, rdf.NewWKT(geom.NewPoint(rng.Float64()*6, rng.Float64()*6).WKT())))
	}
	return g
}

// fakeSpatialSource wraps a graph with a brute-force SpatialCandidates,
// standing in for strabon.Store's R-tree. Probes arrive from concurrent
// worker chunks, so the call counter is atomic.
type fakeSpatialSource struct {
	*rdf.Graph
	calls atomic.Int64
}

func (f *fakeSpatialSource) SpatialCandidates(env geom.Envelope) ([]rdf.Triple, bool) {
	f.calls.Add(1)
	var out []rdf.Triple
	for _, tr := range f.Graph.Match(rdf.Term{}, asWKTTerm, rdf.Term{}) {
		g, err := geom.ParseWKT(tr.O.Value)
		if err != nil {
			continue
		}
		if env.Intersects(g.Envelope()) {
			out = append(out, tr)
		}
	}
	return out, true
}

func TestSpatialJoinStorePushdown(t *testing.T) {
	registerSpatialTestFn()
	restoreSpatialKnobs(t)
	src := &fakeSpatialSource{Graph: spatialSourceGraph(25, 120)}
	query := `PREFIX sp: <urn:sp:> PREFIX geo: <http://www.opengis.net/ont/geosparql#> PREFIX t: <urn:test:>
SELECT ?a ?b WHERE {
  ?a sp:kind "place" . ?a geo:asWKT ?wa .
  ?b geo:asWKT ?wb .
  FILTER(t:intersects(?wa, ?wb))
}`
	q, err := Parse(query)
	if err != nil {
		t.Fatal(err)
	}

	if err := SetSpatialJoin(SpatialJoinOff); err != nil {
		t.Fatal(err)
	}
	base, err := q.Eval(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Bindings) == 0 {
		t.Fatal("baseline empty")
	}

	for _, mode := range []string{SpatialJoinStore, SpatialJoinAuto} {
		if err := SetSpatialJoin(mode); err != nil {
			t.Fatal(err)
		}
		src.calls.Store(0)
		var firstOrdered string
		for _, workers := range []int{1, 6} {
			res, err := q.eval(src, workers, 1)
			if err != nil {
				t.Fatalf("mode=%s workers=%d: %v", mode, workers, err)
			}
			if resultsKey(res) != resultsKey(base) {
				t.Fatalf("mode=%s workers=%d: results diverge from filter path", mode, workers)
			}
			if firstOrdered == "" {
				firstOrdered = orderedKey(res)
			} else if orderedKey(res) != firstOrdered {
				t.Fatalf("mode=%s: row order differs between worker counts", mode)
			}
		}
		if src.calls.Load() == 0 {
			t.Fatalf("mode=%s never probed the store index", mode)
		}
	}
}

// TestSpatialJoinBudgetAbort: a query killed mid-join by the
// intermediate cap reports the structured budget error for every
// strategy and worker count, like any other operator.
func TestSpatialJoinBudgetAbort(t *testing.T) {
	registerSpatialTestFn()
	restoreSpatialKnobs(t)
	g := spatialGraph(80, 400)
	q, err := Parse(spatialJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{SpatialJoinINL, SpatialJoinCells} {
		if err := SetSpatialJoin(mode); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 8} {
			b := admission.NewBudget(admission.Limits{MaxIntermediate: 60}, nil)
			ctx := admission.WithBudget(context.Background(), b)
			_, err := q.evalCtx(ctx, g, workers, 8)
			be, ok := admission.AsBudgetError(err)
			if !ok {
				t.Fatalf("mode=%s workers=%d: err = %v, want budget error", mode, workers, err)
			}
			if be.Kind != admission.KindIntermediate {
				t.Fatalf("mode=%s workers=%d: kind = %s", mode, workers, be.Kind)
			}
		}
	}
}

func TestSpatialKnobs(t *testing.T) {
	restoreSpatialKnobs(t)
	if err := SetSpatialJoin("bogus"); err == nil {
		t.Fatal("SetSpatialJoin accepted an unknown mode")
	}
	if got := SpatialJoinMode(); got != SpatialJoinAuto {
		t.Fatalf("default mode = %q", got)
	}
	if err := SetSpatialJoin(SpatialJoinCells); err != nil {
		t.Fatal(err)
	}
	if got := SpatialJoinMode(); got != SpatialJoinCells {
		t.Fatalf("mode after set = %q", got)
	}
	SetSpatialCells(5)
	if got := SpatialCellOrder(); got != 5 {
		t.Fatalf("cell order = %d", got)
	}
	SetSpatialCells(0)
	if got := SpatialCellOrder(); got != geom.DefaultCellOrder {
		t.Fatalf("default cell order = %d", got)
	}
}
