package sparql

import (
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
)

// CanonicalPlan is the cache identity of a parsed query: a key that is
// invariant under the rewrites the engine itself treats as meaningless —
// variable renaming, triple-pattern order inside one join unit, splitting
// a join unit across adjacent BGP blocks, whitespace (free via the AST),
// and constant-foldable expressions — while never assigning the same key
// to two queries the engine could answer differently. VarMap records how
// the query's variable names map onto the canonical slot names, so a
// result cached under one spelling can be served, re-labelled, to an
// isomorphic query that spells its variables differently.
type CanonicalPlan struct {
	Key    string
	VarMap map[string]string // original name -> canonical slot name ("c0", ...)
}

// PlanKey canonicalizes the query. The key is built in three steps:
// constant folding (const-only arithmetic/comparison subtrees collapse
// through the evaluator's own applyBinary/applyNeg, so folding is
// semantics-preserving by construction), slot normalization (variables
// are renamed to dense slots assigned by a canonical walk, so parser-
// chosen names never reach the key), and join-unit pattern ordering
// (triple patterns are sorted inside each coalesced adjacent-BGP run —
// exactly the unit the planner is free to reorder; filters and other
// elements keep their positions, because this engine applies them
// positionally). Pattern order and slot assignment depend on each other,
// so the order is fixed point-wise: a WL-style color refinement over the
// variable co-occurrence structure seeds the order, then number-render-
// resort iterations run until stable. Every rendered fragment is
// length-prefixed, so distinct structures can never collide.
func (q *Query) PlanKey() CanonicalPlan {
	c := &canonicalizer{query: q}
	c.build()
	c.orderUnits()
	key := c.render()
	vm := make(map[string]string, len(c.slots))
	for name, slot := range c.slots {
		vm[name] = "c" + strconv.Itoa(slot)
	}
	return CanonicalPlan{Key: key, VarMap: vm}
}

// cElem mirrors one group element after normalization: adjacent BGPs are
// coalesced into a single sortable unit, expressions are constant-folded.
type cElem struct {
	kind    byte // 'u' unit, 'f' filter, 'o' optional, 'n' union, 's' subgroup, 'e' exists, 'b' bind, 'v' values
	unit    []TriplePattern
	expr    Expr
	group   *cGroup
	groups  []*cGroup
	negated bool
	bindVar string
	values  Values
}

type cGroup struct {
	elems []*cElem
}

type canonicalizer struct {
	query *Query
	where *cGroup
	proj  []Projection // with folded exprs
	order []OrderKey   // with folded exprs

	colors map[string]uint64
	slots  map[string]int
	nextID int
}

func (c *canonicalizer) build() {
	c.where = c.buildGroup(c.query.Where)
	for _, pr := range c.query.Projection {
		np := pr
		if np.Expr != nil {
			np.Expr = foldExpr(np.Expr)
		}
		if np.Agg != nil {
			agg := *np.Agg
			if agg.Arg != nil {
				agg.Arg = foldExpr(agg.Arg)
			}
			np.Agg = &agg
		}
		c.proj = append(c.proj, np)
	}
	for _, ok := range c.query.OrderBy {
		c.order = append(c.order, OrderKey{Expr: foldExpr(ok.Expr), Desc: ok.Desc})
	}
	c.colorVariables()
}

func (c *canonicalizer) buildGroup(g *Group) *cGroup {
	out := &cGroup{}
	if g == nil {
		return out
	}
	els := g.Elements
	for i := 0; i < len(els); i++ {
		switch e := els[i].(type) {
		case BGP:
			// Mirror the compiler's join-unit coalescing (compileGroup):
			// consecutive BGP blocks form one unit the planner may reorder,
			// so pattern order inside the run must not reach the key.
			pats := append([]TriplePattern(nil), e.Patterns...)
			for i+1 < len(els) {
				nb, ok := els[i+1].(BGP)
				if !ok {
					break
				}
				pats = append(pats, nb.Patterns...)
				i++
			}
			out.elems = append(out.elems, &cElem{kind: 'u', unit: pats})
		case Filter:
			out.elems = append(out.elems, &cElem{kind: 'f', expr: foldExpr(e.Expr)})
		case Optional:
			out.elems = append(out.elems, &cElem{kind: 'o', group: c.buildGroup(e.Group)})
		case Union:
			ce := &cElem{kind: 'n'}
			for _, alt := range e.Alternatives {
				ce.groups = append(ce.groups, c.buildGroup(alt))
			}
			out.elems = append(out.elems, ce)
		case SubGroup:
			out.elems = append(out.elems, &cElem{kind: 's', group: c.buildGroup(e.Group)})
		case Exists:
			out.elems = append(out.elems, &cElem{kind: 'e', group: c.buildGroup(e.Group), negated: e.Negated})
		case Bind:
			out.elems = append(out.elems, &cElem{kind: 'b', bindVar: e.Var, expr: foldExpr(e.Expr)})
		case Values:
			out.elems = append(out.elems, &cElem{kind: 'v', values: e})
		}
	}
	return out
}

// foldExpr collapses constant-only arithmetic/comparison/logical subtrees
// through the evaluator itself (BinaryExpr.Eval needs no binding when the
// leaves are constants), so the fold cannot diverge from runtime
// semantics. Function calls are left alone: the extension registry admits
// arbitrary functions and folding one at key time would bake a possibly
// process-local answer into a shared key.
func foldExpr(e Expr) Expr {
	switch x := e.(type) {
	case BinaryExpr:
		l, r := foldExpr(x.L), foldExpr(x.R)
		f := BinaryExpr{Op: x.Op, L: l, R: r}
		if isConstExpr(l) && isConstExpr(r) {
			if v, err := f.Eval(Binding{}); err == nil {
				return ConstExpr{Term: v}
			}
		}
		return f
	case UnaryExpr:
		sub := foldExpr(x.X)
		f := UnaryExpr{Op: x.Op, X: sub}
		if isConstExpr(sub) {
			if v, err := f.Eval(Binding{}); err == nil {
				return ConstExpr{Term: v}
			}
		}
		return f
	case CallExpr:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = foldExpr(a)
		}
		return CallExpr{IRI: x.IRI, Args: args}
	default:
		return e
	}
}

func isConstExpr(e Expr) bool {
	_, ok := e.(ConstExpr)
	return ok
}

// ---- variable coloring (WL refinement) ----

// colorVariables assigns each variable an initial color from the multiset
// of structural contexts it appears in, then refines a few rounds over
// the pattern co-occurrence graph so symmetric-looking variables in
// different join roles separate. Colors only seed the unit ordering — a
// color collision can cost a cache hit, never a wrong one.
func (c *canonicalizer) colorVariables() {
	sigs := map[string][]string{}
	addSig := func(v, sig string) {
		if v != "" {
			sigs[v] = append(sigs[v], sig)
		}
	}
	var exprSig func(e Expr, path string)
	exprSig = func(e Expr, path string) {
		switch x := e.(type) {
		case VarExpr:
			addSig(x.Name, "x:"+path)
		case BinaryExpr:
			exprSig(x.L, path+"l")
			exprSig(x.R, path+"r")
		case UnaryExpr:
			exprSig(x.X, path+"u")
		case CallExpr:
			for i, a := range x.Args {
				exprSig(a, path+"a"+strconv.Itoa(i))
			}
		}
	}
	var groupSig func(g *cGroup, path string)
	groupSig = func(g *cGroup, path string) {
		for i, el := range g.elems {
			p := path + "." + strconv.Itoa(i)
			switch el.kind {
			case 'u':
				for _, tp := range el.unit {
					sk := patternSkeleton(tp)
					addSig(tp.S.Var, "p:"+p+":S:"+sk)
					addSig(tp.P.Var, "p:"+p+":P:"+sk)
					addSig(tp.O.Var, "p:"+p+":O:"+sk)
				}
			case 'f':
				exprSig(el.expr, p+":")
			case 'o', 's':
				groupSig(el.group, p)
			case 'e':
				groupSig(el.group, p+":e")
			case 'n':
				for j, alt := range el.groups {
					groupSig(alt, p+":n"+strconv.Itoa(j))
				}
			case 'b':
				addSig(el.bindVar, "b:"+p)
				exprSig(el.expr, p+":")
			case 'v':
				for col, vn := range el.values.Vars {
					addSig(vn, "v:"+p+":"+strconv.Itoa(col))
				}
			}
		}
	}
	groupSig(c.where, "w")
	for i, pr := range c.proj {
		addSig(pr.Var, "P:"+strconv.Itoa(i))
		if pr.Expr != nil {
			exprSig(pr.Expr, "P"+strconv.Itoa(i)+":")
		}
		if pr.Agg != nil && pr.Agg.Arg != nil {
			exprSig(pr.Agg.Arg, "A"+strconv.Itoa(i)+":")
		}
	}
	for _, gv := range c.query.GroupBy {
		addSig(gv, "G")
	}
	for i, ok := range c.order {
		exprSig(ok.Expr, "O"+strconv.Itoa(i)+":")
	}
	for i, tp := range c.query.Template {
		addSig(tp.S.Var, "T:"+strconv.Itoa(i)+":S")
		addSig(tp.P.Var, "T:"+strconv.Itoa(i)+":P")
		addSig(tp.O.Var, "T:"+strconv.Itoa(i)+":O")
	}

	c.colors = map[string]uint64{}
	for v, ss := range sigs {
		sort.Strings(ss)
		c.colors[v] = hash64(strings.Join(ss, "\x1f"))
	}

	// Refine over pattern co-occurrence: a variable's new color folds in
	// the colors of the variables it shares patterns with, by role.
	var collectUnits func(g *cGroup, out *[][]TriplePattern)
	collectUnits = func(g *cGroup, out *[][]TriplePattern) {
		for _, el := range g.elems {
			switch el.kind {
			case 'u':
				*out = append(*out, el.unit)
			case 'o', 's', 'e':
				collectUnits(el.group, out)
			case 'n':
				for _, alt := range el.groups {
					collectUnits(alt, out)
				}
			}
		}
	}
	var units [][]TriplePattern
	collectUnits(c.where, &units)
	for round := 0; round < 3; round++ {
		next := map[string][]string{}
		for _, unit := range units {
			for _, tp := range unit {
				sk := patternSkeleton(tp)
				terms := []struct {
					role string
					v    string
				}{{"S", tp.S.Var}, {"P", tp.P.Var}, {"O", tp.O.Var}}
				for _, t := range terms {
					if t.v == "" {
						continue
					}
					sig := "r:" + t.role + ":" + sk
					for _, u := range terms {
						if u.v != "" && u.v != t.v {
							sig += ":" + u.role + strconv.FormatUint(c.colors[u.v], 16)
						}
					}
					next[t.v] = append(next[t.v], sig)
				}
			}
		}
		updated := map[string]uint64{}
		for v, old := range c.colors {
			ss := next[v]
			sort.Strings(ss)
			updated[v] = hash64(strconv.FormatUint(old, 16) + "|" + strings.Join(ss, "\x1f"))
		}
		c.colors = updated
	}
}

// patternSkeleton renders a pattern with constants spelled out and
// variables anonymized — the shape shared by every isomorphic spelling.
func patternSkeleton(tp TriplePattern) string {
	pos := func(pt PatternTerm) string {
		if pt.IsVar() {
			return "?"
		}
		return lenPrefixed(pt.Term.Key())
	}
	return pos(tp.S) + "," + pos(tp.P) + "," + pos(tp.O)
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// ---- unit ordering ----

// orderUnits fixes the pattern order inside every join unit. A first
// pass sorts by color-rendered pattern strings; then number-render-resort
// iterations run until the order is a fixed point of its own numbering —
// this collapses rotations of symmetric cycles (where colors alone tie)
// onto a single order. The iteration cap keeps pathological inputs
// terminating; a non-converged unit just keeps its last (deterministic
// given the input) order, which can miss a cross-spelling cache hit but
// never conflates two different queries.
func (c *canonicalizer) orderUnits() {
	var colorPass func(g *cGroup)
	colorPass = func(g *cGroup) {
		for _, el := range g.elems {
			switch el.kind {
			case 'u':
				sort.SliceStable(el.unit, func(i, j int) bool {
					return c.colorRender(el.unit[i]) < c.colorRender(el.unit[j])
				})
			case 'o', 's', 'e':
				colorPass(el.group)
			case 'n':
				for _, alt := range el.groups {
					colorPass(alt)
				}
			}
		}
	}
	colorPass(c.where)

	for iter := 0; iter < 8; iter++ {
		c.slots = map[string]int{}
		c.nextID = 0
		c.assignSlots()
		changed := false
		var resort func(g *cGroup)
		resort = func(g *cGroup) {
			for _, el := range g.elems {
				switch el.kind {
				case 'u':
					keys := make([]string, len(el.unit))
					for i, tp := range el.unit {
						keys[i] = c.renderPattern(tp)
					}
					if !sort.StringsAreSorted(keys) {
						changed = true
						sort.SliceStable(el.unit, func(i, j int) bool {
							return c.renderPattern(el.unit[i]) < c.renderPattern(el.unit[j])
						})
					}
				case 'o', 's', 'e':
					resort(el.group)
				case 'n':
					for _, alt := range el.groups {
						resort(alt)
					}
				}
			}
		}
		resort(c.where)
		if !changed {
			return
		}
	}
	// Number once more so the final render reflects the final order.
	c.slots = map[string]int{}
	c.nextID = 0
	c.assignSlots()
}

func (c *canonicalizer) colorRender(tp TriplePattern) string {
	pos := func(pt PatternTerm) string {
		if pt.IsVar() {
			return "?" + strconv.FormatUint(c.colors[pt.Var], 16)
		}
		return lenPrefixed(pt.Term.Key())
	}
	return pos(tp.S) + "," + pos(tp.P) + "," + pos(tp.O)
}

// ---- slot numbering ----

func (c *canonicalizer) slotOf(v string) int {
	if s, ok := c.slots[v]; ok {
		return s
	}
	s := c.nextID
	c.slots[v] = s
	c.nextID++
	return s
}

// assignSlots numbers every variable in canonical walk order: the WHERE
// tree first (in the current unit order), then projection, group/order
// keys and the CONSTRUCT template. First use wins, so the numbering is a
// pure function of the canonical structure, never of parser names.
func (c *canonicalizer) assignSlots() {
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case VarExpr:
			c.slotOf(x.Name)
		case BinaryExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		case UnaryExpr:
			walkExpr(x.X)
		case CallExpr:
			for _, a := range x.Args {
				walkExpr(a)
			}
		}
	}
	var walkGroup func(g *cGroup)
	walkGroup = func(g *cGroup) {
		for _, el := range g.elems {
			switch el.kind {
			case 'u':
				for _, tp := range el.unit {
					for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
						if pt.IsVar() {
							c.slotOf(pt.Var)
						}
					}
				}
			case 'f':
				walkExpr(el.expr)
			case 'o', 's', 'e':
				walkGroup(el.group)
			case 'n':
				for _, alt := range el.groups {
					walkGroup(alt)
				}
			case 'b':
				walkExpr(el.expr)
				c.slotOf(el.bindVar)
			case 'v':
				for _, vn := range el.values.Vars {
					c.slotOf(vn)
				}
			}
		}
	}
	walkGroup(c.where)
	for _, pr := range c.proj {
		if pr.Expr != nil {
			walkExpr(pr.Expr)
		}
		if pr.Agg != nil && pr.Agg.Arg != nil {
			walkExpr(pr.Agg.Arg)
		}
		c.slotOf(pr.Var)
	}
	for _, gv := range c.query.GroupBy {
		c.slotOf(gv)
	}
	for _, ok := range c.order {
		walkExpr(ok.Expr)
	}
	for _, tp := range c.query.Template {
		for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
			if pt.IsVar() {
				c.slotOf(pt.Var)
			}
		}
	}
}

// ---- rendering ----

// lenPrefixed makes raw strings self-delimiting inside the key, so no
// literal content can fake structure ("no collisions" reduces to this).
func lenPrefixed(s string) string {
	return strconv.Itoa(len(s)) + ":" + s
}

func (c *canonicalizer) renderPattern(tp TriplePattern) string {
	pos := func(pt PatternTerm) string {
		if pt.IsVar() {
			if s, ok := c.slots[pt.Var]; ok {
				return "v" + strconv.Itoa(s)
			}
			return "?" // unassigned during early iterations
		}
		return "k" + lenPrefixed(pt.Term.Key())
	}
	return "t(" + pos(tp.S) + pos(tp.P) + pos(tp.O) + ")"
}

func (c *canonicalizer) renderExpr(sb *strings.Builder, e Expr) {
	switch x := e.(type) {
	case VarExpr:
		sb.WriteString("v")
		sb.WriteString(strconv.Itoa(c.slotOf(x.Name)))
	case ConstExpr:
		sb.WriteString("k")
		sb.WriteString(lenPrefixed(x.Term.Key()))
	case BinaryExpr:
		sb.WriteString("(b")
		sb.WriteString(lenPrefixed(x.Op))
		c.renderExpr(sb, x.L)
		c.renderExpr(sb, x.R)
		sb.WriteString(")")
	case UnaryExpr:
		sb.WriteString("(u")
		sb.WriteString(lenPrefixed(x.Op))
		c.renderExpr(sb, x.X)
		sb.WriteString(")")
	case CallExpr:
		sb.WriteString("(c")
		sb.WriteString(lenPrefixed(x.IRI))
		for _, a := range x.Args {
			c.renderExpr(sb, a)
		}
		sb.WriteString(")")
	default:
		sb.WriteString("(?)")
	}
}

func (c *canonicalizer) renderGroup(sb *strings.Builder, g *cGroup) {
	sb.WriteString("[")
	for _, el := range g.elems {
		switch el.kind {
		case 'u':
			sb.WriteString("U(")
			for _, tp := range el.unit {
				sb.WriteString(c.renderPattern(tp))
			}
			sb.WriteString(")")
		case 'f':
			sb.WriteString("F(")
			c.renderExpr(sb, el.expr)
			sb.WriteString(")")
		case 'o':
			sb.WriteString("O")
			c.renderGroup(sb, el.group)
		case 's':
			sb.WriteString("S")
			c.renderGroup(sb, el.group)
		case 'e':
			if el.negated {
				sb.WriteString("NE")
			} else {
				sb.WriteString("E")
			}
			c.renderGroup(sb, el.group)
		case 'n':
			sb.WriteString("N(")
			for _, alt := range el.groups {
				c.renderGroup(sb, alt)
			}
			sb.WriteString(")")
		case 'b':
			sb.WriteString("B(")
			c.renderExpr(sb, el.expr)
			sb.WriteString("v")
			sb.WriteString(strconv.Itoa(c.slotOf(el.bindVar)))
			sb.WriteString(")")
		case 'v':
			sb.WriteString("V(")
			for _, vn := range el.values.Vars {
				sb.WriteString("v")
				sb.WriteString(strconv.Itoa(c.slotOf(vn)))
			}
			sb.WriteString("|")
			for _, row := range el.values.Rows {
				sb.WriteString("r(")
				for _, t := range row {
					if t.IsZero() {
						sb.WriteString("_")
					} else {
						sb.WriteString("k")
						sb.WriteString(lenPrefixed(t.Key()))
					}
				}
				sb.WriteString(")")
			}
			sb.WriteString(")")
		}
	}
	sb.WriteString("]")
}

func (c *canonicalizer) render() string {
	var sb strings.Builder
	sb.WriteString("Q")
	sb.WriteString(strconv.Itoa(int(c.query.Type)))
	if c.query.Distinct {
		sb.WriteString("D")
	}
	sb.WriteString("P(")
	for _, pr := range c.proj {
		sb.WriteString("p(v")
		sb.WriteString(strconv.Itoa(c.slotOf(pr.Var)))
		if pr.Expr != nil {
			sb.WriteString("=")
			c.renderExpr(&sb, pr.Expr)
		}
		if pr.Agg != nil {
			sb.WriteString("a")
			sb.WriteString(lenPrefixed(pr.Agg.Func))
			if pr.Agg.Distinct {
				sb.WriteString("D")
			}
			if pr.Agg.Arg != nil {
				c.renderExpr(&sb, pr.Agg.Arg)
			} else {
				sb.WriteString("*")
			}
		}
		sb.WriteString(")")
	}
	sb.WriteString(")")
	if len(c.query.GroupBy) > 0 {
		// Grouping is a set: render in slot order so spelling order of the
		// GROUP BY list never reaches the key.
		gs := make([]int, 0, len(c.query.GroupBy))
		for _, gv := range c.query.GroupBy {
			gs = append(gs, c.slotOf(gv))
		}
		sort.Ints(gs)
		sb.WriteString("G(")
		for _, s := range gs {
			sb.WriteString("v")
			sb.WriteString(strconv.Itoa(s))
		}
		sb.WriteString(")")
	}
	sb.WriteString("W")
	c.renderGroup(&sb, c.where)
	if len(c.order) > 0 {
		sb.WriteString("Ord(")
		for _, ok := range c.order {
			if ok.Desc {
				sb.WriteString("d")
			} else {
				sb.WriteString("a")
			}
			c.renderExpr(&sb, ok.Expr)
		}
		sb.WriteString(")")
	}
	sb.WriteString("L")
	sb.WriteString(strconv.Itoa(c.query.Limit))
	sb.WriteString("Off")
	sb.WriteString(strconv.Itoa(c.query.Offset))
	if len(c.query.Template) > 0 {
		sb.WriteString("T(")
		for _, tp := range c.query.Template {
			sb.WriteString(c.renderPattern(tp))
		}
		sb.WriteString(")")
	}
	return sb.String()
}
