package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tKeyword
	tVar     // ?name or $name
	tIRI     // <...>
	tPName   // prefix:local (or bare "a")
	tString  // "..."
	tNumber  // 1, 1.5, 1e3
	tBoolean // true/false
	tLBrace
	tRBrace
	tLParen
	tRParen
	tDot
	tSemicolon
	tComma
	tStar
	tCaret // ^^
	tAt    // @lang
	tOp    // = != < > <= >= && || ! + - / (arith * is tStar)
	tAs    // AS keyword handled as keyword
	tBlank // _:label
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// sparqlKeywords is the set of reserved words recognized case-insensitively.
var sparqlKeywords = map[string]bool{
	"SELECT": true, "ASK": true, "CONSTRUCT": true, "WHERE": true,
	"PREFIX": true, "BASE": true, "DISTINCT": true, "REDUCED": true,
	"FILTER": true, "OPTIONAL": true, "UNION": true, "ORDER": true,
	"BY": true, "ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true,
	"GROUP": true, "AS": true, "COUNT": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true, "BIND": true, "VALUES": true,
	"NOT": true, "EXISTS": true, "IN": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	if err := l.run(); err != nil {
		return nil, err
	}
	l.toks = append(l.toks, token{kind: tEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: offset %d: %s", l.pos, fmt.Sprintf(format, args...))
}

func (l *lexer) emit(kind tokKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

func (l *lexer) run() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '{':
			l.emit(tLBrace, "{", l.pos)
			l.pos++
		case c == '}':
			l.emit(tRBrace, "}", l.pos)
			l.pos++
		case c == '(':
			l.emit(tLParen, "(", l.pos)
			l.pos++
		case c == ')':
			l.emit(tRParen, ")", l.pos)
			l.pos++
		case c == ';':
			l.emit(tSemicolon, ";", l.pos)
			l.pos++
		case c == ',':
			l.emit(tComma, ",", l.pos)
			l.pos++
		case c == '*':
			l.emit(tStar, "*", l.pos)
			l.pos++
		case c == '?' || c == '$':
			start := l.pos
			l.pos++
			name := l.word()
			if name == "" {
				return l.errf("empty variable name")
			}
			l.emit(tVar, name, start)
		case c == '<':
			// IRI or operators <=, <
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.emit(tOp, "<=", l.pos)
				l.pos += 2
				continue
			}
			// Heuristic: an IRI has no spaces before '>'.
			end := strings.IndexAny(l.src[l.pos+1:], "> \t\n")
			if end >= 0 && l.src[l.pos+1+end] == '>' {
				l.emit(tIRI, l.src[l.pos+1:l.pos+1+end], l.pos)
				l.pos += end + 2
				continue
			}
			l.emit(tOp, "<", l.pos)
			l.pos++
		case c == '>':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.emit(tOp, ">=", l.pos)
				l.pos += 2
			} else {
				l.emit(tOp, ">", l.pos)
				l.pos++
			}
		case c == '=':
			l.emit(tOp, "=", l.pos)
			l.pos++
		case c == '!':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.emit(tOp, "!=", l.pos)
				l.pos += 2
			} else {
				l.emit(tOp, "!", l.pos)
				l.pos++
			}
		case c == '&':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '&' {
				l.emit(tOp, "&&", l.pos)
				l.pos += 2
			} else {
				return l.errf("single '&'")
			}
		case c == '|':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '|' {
				l.emit(tOp, "||", l.pos)
				l.pos += 2
			} else {
				return l.errf("single '|'")
			}
		case c == '+':
			l.emit(tOp, "+", l.pos)
			l.pos++
		case c == '/':
			l.emit(tOp, "/", l.pos)
			l.pos++
		case c == '-':
			// Could start a negative number.
			if l.pos+1 < len(l.src) && isDigitByte(l.src[l.pos+1]) {
				l.lexNumber()
			} else {
				l.emit(tOp, "-", l.pos)
				l.pos++
			}
		case c == '^':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '^' {
				l.emit(tCaret, "^^", l.pos)
				l.pos += 2
			} else {
				return l.errf("single '^'")
			}
		case c == '@':
			start := l.pos
			l.pos++
			l.emit(tAt, l.word(), start)
		case c == '"':
			if err := l.lexString(); err != nil {
				return err
			}
		case c == '.':
			l.emit(tDot, ".", l.pos)
			l.pos++
		case c == '_':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == ':' {
				start := l.pos
				l.pos += 2
				l.emit(tBlank, l.word(), start)
				continue
			}
			return l.errf("unexpected '_'")
		case isDigitByte(c):
			l.lexNumber()
		default:
			if unicode.IsLetter(rune(c)) {
				l.lexName()
				continue
			}
			return l.errf("unexpected character %q", string(c))
		}
	}
	return nil
}

func (l *lexer) word() string {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '-' {
			l.pos++
			continue
		}
		break
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' || l.src[l.pos] == '+' {
		l.pos++
	}
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigitByte(c) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot && l.pos+1 < len(l.src) && isDigitByte(l.src[l.pos+1]) {
			seenDot = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && !seenExp {
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
			continue
		}
		break
	}
	l.emit(tNumber, l.src[start:l.pos], start)
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			l.emit(tString, b.String(), start)
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			switch l.src[l.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"', '\\':
				b.WriteByte(l.src[l.pos])
			default:
				b.WriteByte('\\')
				b.WriteByte(l.src[l.pos])
			}
			l.pos++
			continue
		}
		b.WriteByte(c)
		l.pos++
	}
	return l.errf("unterminated string")
}

// lexName scans a bare name: keyword, prefixed name, or function name like
// geof:sfIntersects.
func (l *lexer) lexName() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '-' || c == '.' {
			l.pos++
			continue
		}
		if c == ':' {
			l.pos++
			continue
		}
		break
	}
	text := strings.TrimSuffix(l.src[start:l.pos], ".")
	l.pos = start + len(text)
	if text == "true" || text == "false" {
		l.emit(tBoolean, text, start)
		return
	}
	if sparqlKeywords[strings.ToUpper(text)] && !strings.Contains(text, ":") {
		l.emit(tKeyword, strings.ToUpper(text), start)
		return
	}
	l.emit(tPName, text, start)
}

func isDigitByte(c byte) bool { return c >= '0' && c <= '9' }
