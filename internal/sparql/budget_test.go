package sparql

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"applab/internal/admission"
	"applab/internal/rdf"
)

// budgetGraph builds a graph whose two-pattern join examines well over
// budgetCheckInterval intermediate rows: n subjects with ex:p edges
// joined against n objects with ex:q edges.
func budgetGraph(n int) *rdf.Graph {
	g := rdf.NewGraph()
	p := rdf.NewIRI("http://ex.org/p")
	q := rdf.NewIRI("http://ex.org/q")
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://ex.org/s%d", i))
		o := rdf.NewIRI(fmt.Sprintf("http://ex.org/o%d", i))
		g.Add(rdf.NewTriple(s, p, o))
		g.Add(rdf.NewTriple(o, q, rdf.NewLiteral(fmt.Sprintf("v%d", i))))
	}
	return g
}

const budgetQuery = `PREFIX ex: <http://ex.org/>
SELECT ?s ?v WHERE { ?s ex:p ?o . ?o ex:q ?v }`

// TestBudgetMaxIntermediateIdenticalAcrossWorkers is the determinism
// property from the issue: a query killed mid-join by the intermediate
// cap returns the exact same structured error for 1, 2 and 8 workers.
func TestBudgetMaxIntermediateIdenticalAcrossWorkers(t *testing.T) {
	g := budgetGraph(400) // >= 800 intermediate rows through the join
	q, err := Parse(budgetQuery)
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for _, workers := range []int{1, 2, 8} {
		b := admission.NewBudget(admission.Limits{MaxIntermediate: 100}, nil)
		ctx := admission.WithBudget(context.Background(), b)
		_, err := q.evalCtx(ctx, g, workers, 8) // low threshold: force chunking
		be, ok := admission.AsBudgetError(err)
		if !ok {
			t.Fatalf("workers=%d: err = %v, want *admission.BudgetError", workers, err)
		}
		if be.Kind != admission.KindIntermediate || be.Limit != 100 {
			t.Fatalf("workers=%d: got %s limit %d", workers, be.Kind, be.Limit)
		}
		if want == "" {
			want = err.Error()
		} else if err.Error() != want {
			t.Fatalf("workers=%d: error %q differs from workers=1 error %q", workers, err.Error(), want)
		}
	}
}

// TestBudgetMaxIntermediateUnderCap checks that a budget generous
// enough for the query never trips.
func TestBudgetMaxIntermediateUnderCap(t *testing.T) {
	g := budgetGraph(50)
	b := admission.NewBudget(admission.Limits{MaxIntermediate: 1 << 20}, nil)
	ctx := admission.WithBudget(context.Background(), b)
	q, err := Parse(budgetQuery)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.EvalContext(ctx, g)
	if err != nil {
		t.Fatalf("EvalContext: %v", err)
	}
	if len(res.Bindings) != 50 {
		t.Fatalf("got %d rows, want 50", len(res.Bindings))
	}
}

// TestBudgetMaxRows checks the final-result cap: small enough result
// sets pass, one row over the cap yields the structured rows error.
func TestBudgetMaxRows(t *testing.T) {
	g := budgetGraph(20)
	q, err := Parse(budgetQuery)
	if err != nil {
		t.Fatal(err)
	}
	ok := admission.WithBudget(context.Background(), admission.NewBudget(admission.Limits{MaxRows: 20}, nil))
	if _, err := q.EvalContext(ok, g); err != nil {
		t.Fatalf("at-cap query failed: %v", err)
	}
	over := admission.WithBudget(context.Background(), admission.NewBudget(admission.Limits{MaxRows: 19}, nil))
	_, err = q.EvalContext(over, g)
	be, okErr := admission.AsBudgetError(err)
	if !okErr || be.Kind != admission.KindRows || be.Limit != 19 {
		t.Fatalf("over-cap query = %v, want rows limit 19", err)
	}
}

// blockingSource is a ContextSource whose scans park until the context
// dies, standing in for a hung upstream; no real time passes in tests
// that use it.
type blockingSource struct{}

func (blockingSource) Match(s, p, o rdf.Term) []rdf.Triple { return nil }

func (blockingSource) MatchContext(ctx context.Context, s, p, o rdf.Term) ([]rdf.Triple, error) {
	<-ctx.Done()
	return nil, admission.Check(ctx)
}

// TestBudgetDeadlineUnblocksHungScan arms a deadline with a hand-held
// After channel (zero real sleeps): firing it must cancel the blocked
// scan and surface the structured deadline error, not a hang or a bare
// context.Canceled.
func TestBudgetDeadlineUnblocksHungScan(t *testing.T) {
	b := admission.NewBudget(admission.Limits{Deadline: 2 * time.Second}, nil)
	fire := make(chan time.Time, 1)
	after := func(d time.Duration) <-chan time.Time {
		if d != 2*time.Second {
			t.Errorf("deadline watcher armed with %s, want 2s", d)
		}
		return fire
	}
	ctx := admission.WithBudget(context.Background(), b)
	ctx, stop := b.StartDeadline(ctx, after)
	defer stop()
	fire <- time.Time{} // the deadline "elapses" immediately

	q, err := Parse(budgetQuery)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := q.EvalContext(ctx, blockingSource{})
		done <- err
	}()
	select {
	case err := <-done:
		be, ok := admission.AsBudgetError(err)
		if !ok || be.Kind != admission.KindDeadline {
			t.Fatalf("err = %v, want deadline budget error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("evaluation hung past its deadline")
	}
}

// TestBudgetCancelReturnsContextError checks plain cancellation (no
// budget): the engine stops and reports ctx.Err.
func TestBudgetCancelReturnsContextError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q, err := Parse(budgetQuery)
	if err != nil {
		t.Fatal(err)
	}
	_, err = q.EvalContext(ctx, budgetGraph(200))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// flakySource is a ContextSource whose context scans fail with an
// ordinary (non-abort) upstream error.
type flakySource struct{}

func (flakySource) Match(s, p, o rdf.Term) []rdf.Triple { return nil }

func (flakySource) MatchContext(ctx context.Context, s, p, o rdf.Term) ([]rdf.Triple, error) {
	return nil, errors.New("upstream 500")
}

// TestContextSourceOrdinaryErrorReadsEmpty pins the seed semantics: a
// non-abort upstream failure during a budgeted evaluation is swallowed
// into empty results, exactly like the plain Source path.
func TestContextSourceOrdinaryErrorReadsEmpty(t *testing.T) {
	b := admission.NewBudget(admission.Limits{MaxIntermediate: 1000}, nil)
	ctx := admission.WithBudget(context.Background(), b)
	q, err := Parse(budgetQuery)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.EvalContext(ctx, flakySource{})
	if err != nil {
		t.Fatalf("EvalContext: %v", err)
	}
	if len(res.Bindings) != 0 {
		t.Fatalf("got %d rows, want 0", len(res.Bindings))
	}
}

// TestBudgetStressRace hammers budget-cancelled evaluations across
// worker counts; run with -race it proves the abort path is data-race
// free and always yields a budget error, never a partial result.
func TestBudgetStressRace(t *testing.T) {
	g := budgetGraph(300)
	q, err := Parse(budgetQuery)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for i := 0; i < 5; i++ {
			b := admission.NewBudget(admission.Limits{MaxIntermediate: 64}, nil)
			ctx := admission.WithBudget(context.Background(), b)
			res, err := q.evalCtx(ctx, g, workers, 4)
			if err == nil {
				t.Fatalf("workers=%d run %d: got %d rows, want budget error", workers, i, len(res.Bindings))
			}
			if _, ok := admission.AsBudgetError(err); !ok {
				t.Fatalf("workers=%d run %d: err = %v, want budget error", workers, i, err)
			}
		}
	}
}

// TestEvalContextUnlimitedPathUnchanged: with a background context and
// no budget the limited flag stays off, so plain Eval semantics (and
// performance) are untouched.
func TestEvalContextUnlimitedPathUnchanged(t *testing.T) {
	g := budgetGraph(30)
	q, err := Parse(budgetQuery)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := q.Eval(g)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := q.EvalContext(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Bindings) != len(ctxed.Bindings) {
		t.Fatalf("Eval %d rows, EvalContext %d rows", len(plain.Bindings), len(ctxed.Bindings))
	}
}
