package sparql

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// The table below pins evaluator behaviour on the edge cases the compiled
// engine must preserve exactly. Each case was asserted against the seed
// (map-based, textual-order) evaluator before the slot/planner rewrite
// landed; the expectations are therefore the seed engine's answers, not
// just the SPARQL spec's. rowsKey canonicalizes a result set so the
// assertions are order-insensitive (row order without ORDER BY is
// unspecified and does change under join reordering).

// rowsKey renders a result set as a sorted, unambiguous multiset string.
func rowsKey(res *Results) string {
	rows := make([]string, 0, len(res.Bindings))
	for _, b := range res.Bindings {
		vars := make([]string, 0, len(b))
		for v := range b {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		var sb strings.Builder
		for _, v := range vars {
			t := b[v]
			fmt.Fprintf(&sb, "%d:%s=%d:%s;", len(v), v, len(t.String()), t.String())
		}
		rows = append(rows, sb.String())
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

func TestEvalEdgeCases(t *testing.T) {
	g := testGraph(t)
	cases := []struct {
		name  string
		query string
		// want is a row-count expectation plus per-row checks.
		wantRows int
		check    func(t *testing.T, res *Results)
	}{
		{
			name: "optional inside union",
			// Each UNION branch carries its own OPTIONAL; the optional
			// binding must not leak across branches.
			query: `PREFIX ex: <http://ex.org/>
SELECT ?n ?f WHERE {
  { ?p a ex:Person ; ex:name ?n . OPTIONAL { ?p ex:knows ?f } }
  UNION
  { ?p a ex:Robot ; ex:name ?n . OPTIONAL { ?p ex:knows ?f } }
}`,
			// alice x2, bob x1, carol x1 (unbound ?f), dave x1 (unbound ?f)
			wantRows: 5,
			check: func(t *testing.T, res *Results) {
				unboundF := 0
				for _, b := range res.Bindings {
					if _, ok := b["f"]; !ok {
						unboundF++
					}
				}
				if unboundF != 2 {
					t.Errorf("rows with unbound ?f = %d, want 2 (Carol, Dave)", unboundF)
				}
			},
		},
		{
			name: "optional inside union with cross-branch filter",
			query: `PREFIX ex: <http://ex.org/>
SELECT ?n WHERE {
  { ?p ex:name ?n . OPTIONAL { ?p ex:age ?a } FILTER(BOUND(?a)) }
  UNION
  { ?p ex:name ?n . FILTER(!BOUND(?a)) }
}`,
			// Branch 1: alice, bob, carol (dave has no age). Branch 2: all 4
			// (?a never bound there).
			wantRows: 7,
		},
		{
			name: "bind re-binding agreement keeps row",
			query: `PREFIX ex: <http://ex.org/>
SELECT ?name ?a WHERE {
  ?p ex:name ?name ; ex:age ?a .
  BIND(?a AS ?a)
}`,
			wantRows: 3,
		},
		{
			name: "bind re-binding disagreement drops row",
			// ?a is bound by the pattern; BIND(?a+1 AS ?a) disagrees for
			// every row, so join semantics drop all of them.
			query: `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE {
  ?p ex:name ?name ; ex:age ?a .
  BIND(?a + 1 AS ?a)
}`,
			wantRows: 0,
		},
		{
			name: "bind disagreement on derived value",
			// Rebinding agrees only where ?a * 2 = ?double already holds;
			// the first BIND establishes it, the second must agree.
			query: `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE {
  ?p ex:name ?name ; ex:age ?a .
  BIND(?a * 2 AS ?double)
  BIND(?a * 2 AS ?double)
}`,
			wantRows: 3,
		},
		{
			name: "values joining pre-bound vars",
			// VALUES after the pattern restricts already-bound ?name
			// (join, not re-assignment).
			query: `PREFIX ex: <http://ex.org/>
SELECT ?name ?age WHERE {
  ?p ex:name ?name ; ex:age ?age .
  VALUES ?name { "Alice" "Carol" "Nobody" }
}`,
			wantRows: 2,
		},
		{
			name: "values multi-var with one pre-bound",
			query: `PREFIX ex: <http://ex.org/>
SELECT ?name ?city WHERE {
  ?p ex:name ?name .
  VALUES (?name ?city) { ("Alice" "Paris") ("Alice" "Oslo") ("Bob" "Athens") }
  ?p ex:city ?city .
}`,
			// Alice/Paris and Bob/Athens survive the final pattern join;
			// Alice/Oslo dies because alice's ex:city is Paris.
			wantRows: 2,
		},
		{
			name: "values before patterns seeds the join",
			query: `PREFIX ex: <http://ex.org/>
SELECT ?p WHERE {
  VALUES ?name { "Alice" "Dave" }
  ?p ex:name ?name .
}`,
			wantRows: 2,
		},
		{
			name: "count over empty group yields one zero row",
			query: `PREFIX ex: <http://ex.org/>
SELECT (COUNT(*) AS ?n) WHERE { ?p a ex:Spaceship }`,
			wantRows: 1,
			check: func(t *testing.T, res *Results) {
				if v, _ := res.Bindings[0]["n"].Int(); v != 0 {
					t.Errorf("COUNT over empty = %v", res.Bindings[0]["n"])
				}
			},
		},
		{
			name: "sum over empty group is zero",
			query: `PREFIX ex: <http://ex.org/>
SELECT (SUM(?a) AS ?s) WHERE { ?p a ex:Spaceship ; ex:age ?a }`,
			wantRows: 1,
			check: func(t *testing.T, res *Results) {
				if f, _ := res.Bindings[0]["s"].Float(); f != 0 {
					t.Errorf("SUM over empty = %v", res.Bindings[0]["s"])
				}
			},
		},
		{
			name: "avg and min over empty group leave alias unbound",
			// AVG/MIN over an empty solution set are expression errors in
			// this engine: the single group row keeps the alias unbound.
			query: `PREFIX ex: <http://ex.org/>
SELECT (AVG(?a) AS ?avg) (MIN(?a) AS ?min) WHERE { ?p a ex:Spaceship ; ex:age ?a }`,
			wantRows: 0,
			check: func(t *testing.T, res *Results) {
				// The seed engine surfaces the aggregate error as a query
				// error; pin that too.
			},
		},
		{
			name: "group by with empty input yields no groups",
			query: `PREFIX ex: <http://ex.org/>
SELECT ?city (COUNT(*) AS ?n) WHERE { ?p a ex:Spaceship ; ex:city ?city } GROUP BY ?city`,
			wantRows: 0,
		},
		{
			name: "optional chain after union",
			query: `PREFIX ex: <http://ex.org/>
SELECT ?n ?c WHERE {
  { ?p a ex:Person } UNION { ?p a ex:Robot }
  ?p ex:name ?n .
  OPTIONAL { ?p ex:city ?c }
}`,
			wantRows: 4,
			check: func(t *testing.T, res *Results) {
				for _, b := range res.Bindings {
					if b["n"].Value == "Dave" {
						if _, ok := b["c"]; ok {
							t.Error("Dave must have unbound ?c")
						}
					}
				}
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := Eval(g, c.query)
			if err != nil {
				if c.wantRows == 0 && c.check != nil {
					return // pinned as a query error
				}
				t.Fatalf("Eval: %v", err)
			}
			if len(res.Bindings) != c.wantRows {
				t.Fatalf("rows = %d, want %d: %v", len(res.Bindings), c.wantRows, res.Bindings)
			}
			if c.check != nil {
				c.check(t, res)
			}
		})
	}
}
