package sparql

import (
	"context"
	"sort"
	"strconv"

	"applab/internal/admission"
	"applab/internal/rdf"
)

// ExchangeSource is implemented by partitioned sources — the cluster
// coordinator — that can answer a pattern per data fragment (replica
// group / shard). The compiled planner routes every BGP pattern scan
// through the exchange operator for such a source: a pattern whose
// placement is provable (bound subject under subject-hash placement)
// goes to its single owning fragment, anything else fans out to every
// fragment in parallel and the partial streams are merged back into
// canonical (term-key) order with duplicates suppressed.
//
// Error semantics follow Source/ErrorSource: a fragment failure reads
// as an empty contribution (the source itself tracks partiality — see
// cluster.Coordinator), except cancellation/budget violations
// (admission.Aborted), which abort the query.
type ExchangeSource interface {
	Source
	// Fragments reports the fragment count (stable per evaluation).
	Fragments() int
	// Route returns the single fragment that holds every possible match
	// of the pattern, when placement can prove one.
	Route(s, p, o rdf.Term) (frag int, ok bool)
	// FragmentMatch answers the pattern from one fragment.
	FragmentMatch(ctx context.Context, frag int, s, p, o rdf.Term) ([]rdf.Triple, error)
}

// exchangeMatch is the exchange operator's scan: the pattern-level
// fan-out/merge every scan strategy (cross, hash, nested_loop) drives
// its probes through when the source is partitioned.
func (ec *execCtx) exchangeMatch(s, p, o rdf.Term) ([]rdf.Triple, error) {
	ex := ec.ex
	if frag, ok := ex.Route(s, p, o); ok {
		noteExchange("routed")
		ts, err := ex.FragmentMatch(ec.ctx, frag, s, p, o)
		return ts, ec.exchangeErr(err)
	}
	n := ex.Fragments()
	noteExchange("fanout")
	if n <= 1 {
		ts, err := ex.FragmentMatch(ec.ctx, 0, s, p, o)
		if err != nil {
			return nil, ec.exchangeErr(err)
		}
		return mergeFragments([][]rdf.Triple{ts}), nil
	}
	parts := make([][]rdf.Triple, n)
	errs := make([]error, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(frag int) {
			parts[frag], errs[frag] = ex.FragmentMatch(ec.ctx, frag, s, p, o)
			done <- frag
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			if aerr := ec.exchangeErr(err); aerr != nil {
				return nil, aerr
			}
		}
	}
	return mergeFragments(parts), nil
}

// exchangeErr maps a fragment error onto the engine's abort rule: only
// cancellation and budget violations abort (with the structured budget
// error preferred); anything else degrades to an empty contribution.
func (ec *execCtx) exchangeErr(err error) error {
	if err == nil || !admission.Aborted(err) {
		return nil
	}
	if ec.budget != nil {
		if berr := ec.budget.Err(); berr != nil {
			return berr
		}
	}
	return err
}

// mergeFragments concatenates per-fragment streams into one canonically
// ordered, duplicate-free stream. Placement sends each triple to one
// fragment, so duplicates only appear when fragments overlap (replica
// answers that raced a move); suppressing them here keeps the merged
// stream set-identical to a single store's answer.
func mergeFragments(parts [][]rdf.Triple) []rdf.Triple {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	out := make([]rdf.Triple, 0, total)
	seen := make(map[string]bool, total)
	for _, p := range parts {
		for _, t := range p {
			k := exchangeTripleKey(t)
			if !seen[k] {
				seen[k] = true
				out = append(out, t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if k1, k2 := a.S.Key(), b.S.Key(); k1 != k2 {
			return k1 < k2
		}
		if k1, k2 := a.P.Key(), b.P.Key(); k1 != k2 {
			return k1 < k2
		}
		if k1, k2 := a.O.Key(), b.O.Key(); k1 != k2 {
			return k1 < k2
		}
		if !a.ValidFrom.Equal(b.ValidFrom) {
			return a.ValidFrom.Before(b.ValidFrom)
		}
		return a.ValidTo.Before(b.ValidTo)
	})
	return out
}

// exchangeTripleKey is the merge identity: terms plus valid time,
// length-prefixed so concatenated keys cannot collide (the segment
// engine's rule).
func exchangeTripleKey(t rdf.Triple) string {
	sk, pk, ok := t.S.Key(), t.P.Key(), t.O.Key()
	return strconv.Itoa(len(sk)) + "," + strconv.Itoa(len(pk)) + "," + strconv.Itoa(len(ok)) + "," +
		strconv.FormatInt(t.ValidFrom.UnixNano(), 10) + "," + strconv.FormatInt(t.ValidTo.UnixNano(), 10) + ";" +
		sk + pk + ok
}
