package sparql

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"applab/internal/geom"
	"applab/internal/geom/rtree"
	"applab/internal/rdf"
)

// A FILTER(geof:sfIntersects(?wa, ?wb)) over the cross product of two
// otherwise unconnected pattern groups is a spatial θ-join that the
// per-row filter path evaluates in O(|A|·|B|) exact predicate calls.
// The compiler detects that shape (see compileSpatialUnit) and lowers
// the whole unit to a spatialJoinOp: the build side's WKT column is
// batch-decoded into a columnar geom.Arena, an envelope index prunes
// candidate pairs, and the registered exact predicate refines the
// survivors. Three interchangeable candidate generators:
//
//   - "inl":   index nested loop — STR-bulk-load an R-tree over the
//     build side, probe per probe-side row. Wins while the build side
//     is small enough that the tree stays cache-resident.
//   - "cells": Hilbert cell index (geom.CellIndex) — flat sorted
//     buckets, no pointer chasing; the cell-partitioned choice when
//     both sides are large.
//   - "store": when the build side is the bare `?g geo:asWKT ?w` scan
//     and the source has its own spatial index (strabon.Store's R-tree,
//     via SpatialSource), probe the store directly and never
//     materialize the build side at all.
//
// Every strategy emits identical rows in identical order (probe rows in
// input order, candidates in build-row order), for any worker count —
// the same determinism contract as hash join — and ticks the same
// cancellation checkpoints.

// SpatialSource is an optional extension of Source for backends with
// their own spatial index over geo:asWKT triples. The spatial-join
// operator probes it instead of materializing every geometry when the
// build side of the join is the bare WKT scan.
type SpatialSource interface {
	Source
	// SpatialCandidates returns the geo:asWKT triples whose geometry
	// envelope intersects env, and whether the index is available.
	SpatialCandidates(env geom.Envelope) ([]rdf.Triple, bool)
}

// ---- spatial relation registry ----

var (
	spatialRelMu sync.RWMutex
	spatialRels  = map[string]func(a, b geom.Geometry) bool{}
)

// RegisterSpatialRelation declares iri as a spatial predicate the
// planner may execute as a spatial join. The relation must be
// envelope-conservative — rel(a, b) implies a and b's envelopes
// intersect — which is what lets the join discard envelope-disjoint
// pairs without calling rel (geof:sfDisjoint, for example, must NOT be
// registered). geosparql.Register installs the geof:sf* family.
func RegisterSpatialRelation(iri string, rel func(a, b geom.Geometry) bool) {
	spatialRelMu.Lock()
	defer spatialRelMu.Unlock()
	spatialRels[iri] = rel
}

func spatialRelation(iri string) (func(a, b geom.Geometry) bool, bool) {
	spatialRelMu.RLock()
	defer spatialRelMu.RUnlock()
	rel, ok := spatialRels[iri]
	return rel, ok
}

// ---- configuration ----

// Spatial-join modes accepted by SetSpatialJoin.
const (
	SpatialJoinAuto  = "auto"  // pick a strategy from runtime sizes
	SpatialJoinOff   = "off"   // per-row filter path (the seed shape)
	SpatialJoinINL   = "inl"   // force index nested loop
	SpatialJoinCells = "cells" // force the Hilbert cell index
	SpatialJoinStore = "store" // force the store index (falls back to auto)
)

var (
	cfgSpatialJoin  atomic.Value // string; empty = auto
	cfgSpatialCells atomic.Int32 // grid order; 0 = geom.DefaultCellOrder
)

// SetSpatialJoin selects the spatial-join strategy ("auto", "off",
// "inl", "cells", "store"); empty restores "auto". Safe for concurrent
// use.
func SetSpatialJoin(mode string) error {
	switch mode {
	case "", SpatialJoinAuto, SpatialJoinOff, SpatialJoinINL, SpatialJoinCells, SpatialJoinStore:
	default:
		return fmt.Errorf("sparql: unknown spatial-join mode %q", mode)
	}
	if mode == "" {
		mode = SpatialJoinAuto
	}
	cfgSpatialJoin.Store(mode)
	return nil
}

// SpatialJoinMode reports the effective spatial-join mode.
func SpatialJoinMode() string {
	if v, ok := cfgSpatialJoin.Load().(string); ok && v != "" {
		return v
	}
	return SpatialJoinAuto
}

// SetSpatialCells sets the Hilbert grid order for the cells strategy
// (the grid is 2^order cells per side, clamped by internal/geom);
// n <= 0 restores the default. Safe for concurrent use.
func SetSpatialCells(order int) {
	if order < 0 {
		order = 0
	}
	cfgSpatialCells.Store(int32(order))
}

// SpatialCellOrder reports the effective grid order.
func SpatialCellOrder() int {
	if v := int(cfgSpatialCells.Load()); v > 0 {
		return v
	}
	return geom.DefaultCellOrder
}

// spatialINLMaxBuild is the build-side row count up to which auto mode
// prefers the R-tree nested loop over the cell-partitioned join.
const spatialINLMaxBuild = 1024

// ---- compile-time detection ----

// spatialFilterArgs recognizes FILTER(geof:rel(?a, ?b)) shapes.
func spatialFilterArgs(e Expr) (iri, a, b string, ok bool) {
	call, isCall := e.(CallExpr)
	if !isCall || len(call.Args) != 2 {
		return "", "", "", false
	}
	av, okA := call.Args[0].(VarExpr)
	bv, okB := call.Args[1].(VarExpr)
	if !okA || !okB || av.Name == bv.Name {
		return "", "", "", false
	}
	return call.IRI, av.Name, bv.Name, true
}

// patternVars lists a pattern's variable positions.
func patternVars(tp TriplePattern) []string {
	var vs []string
	for _, v := range []string{tp.S.Var, tp.P.Var, tp.O.Var} {
		if v != "" {
			vs = append(vs, v)
		}
	}
	return vs
}

// compileSpatialUnit tries to lower a BGP join unit plus its trailing
// FILTER run as a spatial join. It returns the unit's ops and true on
// success (the caller then skips the filter elements); nil, false keeps
// the ordinary compilation.
//
// The unit splits when one of the filters is a registered spatial
// relation over two variables bound by pattern components that share no
// variable (directly or transitively, counting variables bound by
// earlier plan ops as one shared "outer" component): the component of
// one argument becomes the operator's build side, everything else
// compiles as usual and feeds the probe side. Which side builds is
// picked from StatsSource cardinalities (smaller estimated side
// builds); a component reachable from outer bindings must stay on the
// probe side, where the incoming rows are.
func (c *compiler) compileSpatialUnit(pats []TriplePattern, filters []Element) ([]op, bool) {
	if SpatialJoinMode() == SpatialJoinOff || len(pats) < 2 || len(filters) == 0 {
		return nil, false
	}

	// Union-find over patterns; index len(pats) is the virtual "outer"
	// node for variables already bound before this unit.
	parent := make([]int, len(pats)+1)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	outer := len(pats)
	varHome := map[string]int{}
	for pi, tp := range pats {
		for _, v := range patternVars(tp) {
			if c.states[v] != varUnseen {
				union(pi, outer)
				continue
			}
			if home, ok := varHome[v]; ok {
				union(pi, home)
			} else {
				varHome[v] = pi
			}
		}
	}

	// Pick the first splittable spatial filter in the run.
	pick := -1
	var rel func(a, b geom.Geometry) bool
	var va, vb string
	var rootA, rootB int
	for fi, el := range filters {
		f, isFilter := el.(Filter)
		if !isFilter {
			return nil, false
		}
		iri, a, b, ok := spatialFilterArgs(f.Expr)
		if !ok {
			continue
		}
		r, ok := spatialRelation(iri)
		if !ok {
			continue
		}
		if c.states[a] != varUnseen || c.states[b] != varUnseen {
			continue
		}
		homeA, okA := varHome[a]
		homeB, okB := varHome[b]
		if !okA || !okB {
			continue
		}
		ra, rb := find(homeA), find(homeB)
		if ra == rb {
			continue
		}
		pick, rel, va, vb, rootA, rootB = fi, r, a, b, ra, rb
		break
	}
	if pick < 0 {
		return nil, false
	}

	// Choose the build side: never the outer-connected component (it
	// needs the incoming rows); otherwise the smaller estimated one.
	outerRoot := find(outer)
	buildRoot := rootB
	swapped := false // true when the build side binds the first argument
	switch {
	case rootB == outerRoot:
		buildRoot, swapped = rootA, true
	case rootA == outerRoot:
		// keep rootB
	default:
		estA, estB := c.componentEstimate(pats, find, rootA), c.componentEstimate(pats, find, rootB)
		if estA >= 0 && (estB < 0 || estA < estB) {
			buildRoot, swapped = rootA, true
		}
	}

	var probePats, buildPats []TriplePattern
	for pi, tp := range pats {
		if find(pi) == buildRoot {
			buildPats = append(buildPats, tp)
		} else {
			probePats = append(probePats, tp)
		}
	}
	if len(buildPats) == 0 || len(probePats) == 0 {
		return nil, false
	}

	ops := c.compileBGP(probePats)
	body := c.compileBGP(buildPats)
	probeVar, buildVar := va, vb
	if swapped {
		probeVar, buildVar = vb, va
	}
	sj := &spatialJoinOp{
		rel:       rel,
		body:      body,
		probeSlot: c.vt.slot(probeVar),
		buildSlot: c.vt.slot(buildVar),
		swapped:   swapped,
	}
	// Store-pushdown shape: the build side is exactly the bare
	// `?g geo:asWKT ?w` scan binding the filter's geometry variable.
	if len(body) == 1 {
		if sc, ok := body[0].(*scanOp); ok &&
			sc.pSlot < 0 && sc.p.Equal(asWKTTerm) &&
			sc.sSlot >= 0 && sc.oSlot == sj.buildSlot && sc.sSlot != sc.oSlot {
			sj.scan = sc
		}
	}
	ops = append(ops, sj)
	for fi, el := range filters {
		if fi == pick {
			continue
		}
		ops = append(ops, &filterOp{cond: compileExpr(el.(Filter).Expr, c.vt)})
	}
	return ops, true
}

var asWKTTerm = rdf.NewIRI(rdf.NSGeo + "asWKT")

// componentEstimate sums the constants-only cardinality estimates of a
// component's patterns; negative means unknown.
func (c *compiler) componentEstimate(pats []TriplePattern, find func(int) int, root int) int {
	if c.stats == nil {
		return -1
	}
	est := 0
	for pi, tp := range pats {
		if find(pi) != root {
			continue
		}
		e := c.stats.Cardinality(constOrWildcard(tp.S), constOrWildcard(tp.P), constOrWildcard(tp.O))
		if e < 0 {
			return -1
		}
		est += e
	}
	return est
}

// ---- batch WKT decoding ----

// geomBatch memoizes WKT decoding into a columnar arena: one parse and
// one materialized view per distinct lexical form. Not safe for
// concurrent use — each worker chunk builds its own.
type geomBatch struct {
	ar   *geom.Arena
	ids  map[string]int32 // lexical form -> arena id; -1 = undecodable
	mats []geom.Geometry  // materialized views, by arena id
}

func newGeomBatch() *geomBatch {
	return &geomBatch{ar: geom.NewArena(), ids: map[string]int32{}}
}

// decode resolves a term to its arena-backed geometry and envelope.
// Unbound slots, non-literals and unparsable WKT report ok=false — the
// rows the per-row filter path drops as expression errors.
func (gb *geomBatch) decode(t rdf.Term) (geom.Geometry, geom.Envelope, bool) {
	if t.IsZero() || !t.IsLiteral() {
		return nil, geom.EmptyEnvelope(), false
	}
	if id, ok := gb.ids[t.Value]; ok {
		if id < 0 {
			return nil, geom.EmptyEnvelope(), false
		}
		return gb.mats[id], gb.ar.Envelope(id), true
	}
	id, err := gb.ar.AddWKT(t.Value)
	if err != nil {
		gb.ids[t.Value] = -1
		return nil, geom.EmptyEnvelope(), false
	}
	gb.ids[t.Value] = id
	gb.mats = append(gb.mats, gb.ar.Geometry(id))
	return gb.mats[id], gb.ar.Envelope(id), true
}

// ---- the operator ----

type spatialJoinOp struct {
	rel  func(a, b geom.Geometry) bool
	body []op // compiled build-side plan, run from an empty seed row

	probeSlot int // WKT slot bound by incoming rows
	buildSlot int // WKT slot bound by the body
	// swapped: the build side binds the predicate's FIRST argument, so
	// exact refinement calls rel(build, probe).
	swapped bool

	// scan is non-nil when the body is the bare geo:asWKT scan — the
	// shape the store-pushdown strategy can serve straight from a
	// SpatialSource index.
	scan *scanOp
}

// chunkedRange is chunked over an index range instead of a row slice:
// fn gets [lo, hi) partitions of [0, n) and outputs are concatenated in
// partition order, so results are identical for any worker count.
func chunkedRange(ec *execCtx, n int, fn func(lo, hi int) ([]row, error)) ([]row, error) {
	if ec.workers <= 1 || n < ec.threshold {
		return fn(0, n)
	}
	w := ec.workers
	if w > n {
		w = n
	}
	size := (n + w - 1) / w
	nchunks := (n + size - 1) / size
	done := noteParallelStage(nchunks)
	defer done()
	outs := make([][]row, nchunks)
	errs := make([]error, nchunks)
	var wg sync.WaitGroup
	for i := 0; i < nchunks; i++ {
		lo := i * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			outs[i], errs[i] = fn(lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	total := 0
	var agg int
	for _, o := range outs {
		if err := ec.tick(&agg); err != nil {
			return nil, err
		}
		total += len(o)
	}
	out := make([]row, 0, total)
	for _, o := range outs {
		if err := ec.tick(&agg); err != nil {
			return nil, err
		}
		out = append(out, o...)
	}
	return out, nil
}

// mergeRow joins a probe row with a build row. The two sides bind
// disjoint slot sets by construction; the agreement check is a cheap
// guard, mirroring scanOp.extend.
func mergeRow(a, b row) (row, bool) {
	nr := a.clone()
	for s, t := range b {
		if t.IsZero() {
			continue
		}
		if cur := nr[s]; !cur.IsZero() {
			if !cur.Equal(t) {
				return nil, false
			}
			continue
		}
		nr[s] = t
	}
	return nr, true
}

func (sj *spatialJoinOp) run(ec *execCtx, in []row) ([]row, error) {
	mode := SpatialJoinMode()
	if sj.scan != nil && (mode == SpatialJoinAuto || mode == SpatialJoinStore) {
		if sp, ok := ec.src.(SpatialSource); ok {
			if _, avail := sp.SpatialCandidates(geom.EmptyEnvelope()); avail {
				return sj.runStore(ec, sp, in)
			}
		}
	}

	// Materialize and batch-decode the build side once.
	bRows, err := runOps(ec, sj.body, []row{make(row, len(in[0]))})
	if err != nil {
		return nil, err
	}
	if len(bRows) == 0 {
		return nil, nil
	}
	bg := newGeomBatch()
	bGeoms := make([]geom.Geometry, len(bRows))
	bEnvs := make([]geom.Envelope, len(bRows))
	n := 0
	for bi, br := range bRows {
		if err := ec.tick(&n); err != nil {
			return nil, err
		}
		g, env, ok := bg.decode(br[sj.buildSlot])
		if !ok {
			bEnvs[bi] = geom.EmptyEnvelope()
			continue
		}
		bGeoms[bi], bEnvs[bi] = g, env
	}

	strategy := mode
	if strategy == SpatialJoinStore || strategy == SpatialJoinAuto {
		if len(bRows) <= spatialINLMaxBuild {
			strategy = SpatialJoinINL
		} else {
			strategy = SpatialJoinCells
		}
	}

	// Build the envelope index over the build side; empty envelopes
	// (undecodable rows) are excluded from both generators.
	var tree *rtree.Tree
	var cells *geom.CellIndex
	if strategy == SpatialJoinINL {
		items := make([]rtree.Item, 0, len(bRows))
		for bi, env := range bEnvs {
			if err := ec.tick(&n); err != nil {
				return nil, err
			}
			if !env.IsEmpty() {
				items = append(items, rtree.Item{Env: env, Data: int32(bi)})
			}
		}
		tree = rtree.Bulk(items)
	} else {
		cells = geom.BuildCellIndex(bEnvs, SpatialCellOrder())
	}
	noteSpatialJoin(strategy)

	return chunkedRange(ec, len(in), func(lo, hi int) ([]row, error) {
		pb := newGeomBatch()
		var out []row
		var cand []int32
		probes := 0
		n := 0
		for i := lo; i < hi; i++ {
			if err := ec.tick(&n); err != nil {
				return nil, err
			}
			r := in[i]
			pg, env, ok := pb.decode(r[sj.probeSlot])
			if !ok {
				continue
			}
			probes++
			cand = cand[:0]
			if tree != nil {
				tree.Search(env, func(it rtree.Item) bool {
					cand = append(cand, it.Data.(int32))
					return true
				})
			} else {
				cells.Probe(env, func(id int32) bool {
					cand = append(cand, id)
					return true
				})
			}
			// Candidates come out in index order; sort by build-row index
			// so every strategy emits the same rows in the same order.
			sort.Slice(cand, func(a, b int) bool { return cand[a] < cand[b] })
			if err := ec.tickN(&n, len(cand)); err != nil {
				return nil, err
			}
			for _, bi := range cand {
				hit := false
				if sj.swapped {
					hit = sj.rel(bGeoms[bi], pg)
				} else {
					hit = sj.rel(pg, bGeoms[bi])
				}
				if !hit {
					continue
				}
				if nr, ok := mergeRow(r, bRows[bi]); ok {
					out = append(out, nr)
				}
			}
		}
		noteSpatialProbes(probes)
		return out, nil
	})
}

// runStore is the store-pushdown strategy: probe the source's own
// spatial index per row and extend rows through the build-side scan
// exactly like a nested-loop match would.
func (sj *spatialJoinOp) runStore(ec *execCtx, sp SpatialSource, in []row) ([]row, error) {
	noteSpatialJoin(SpatialJoinStore)
	return chunkedRange(ec, len(in), func(lo, hi int) ([]row, error) {
		pb := newGeomBatch()
		var ar rowArena
		var out []row
		probes := 0
		n := 0
		for i := lo; i < hi; i++ {
			if err := ec.tick(&n); err != nil {
				return nil, err
			}
			r := in[i]
			pg, env, ok := pb.decode(r[sj.probeSlot])
			if !ok {
				continue
			}
			probes++
			cands, _ := sp.SpatialCandidates(env)
			// The index returns tree order; fix a deterministic emission
			// order (the canonical triple order of the candidates).
			sort.Slice(cands, func(a, b int) bool {
				ka, kb := cands[a].S.Key(), cands[b].S.Key()
				if ka != kb {
					return ka < kb
				}
				return cands[a].O.Key() < cands[b].O.Key()
			})
			if err := ec.tickN(&n, len(cands)); err != nil {
				return nil, err
			}
			for _, t := range cands {
				bgeom, _, ok := pb.decode(t.O)
				if !ok {
					continue
				}
				hit := false
				if sj.swapped {
					hit = sj.rel(bgeom, pg)
				} else {
					hit = sj.rel(pg, bgeom)
				}
				if !hit {
					continue
				}
				if nr, ok := sj.scan.extend(r, t, &ar); ok {
					out = append(out, nr)
				}
			}
		}
		noteSpatialProbes(probes)
		return out, nil
	})
}
