package sparql

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"applab/internal/rdf"
)

// The compiled slot engine must agree with the seed map evaluator on
// every query shape the engine supports. Differential tests run both
// paths over the same sources and compare canonicalized result sets
// (plan reordering may legally permute un-ORDER-BY'd rows), and the
// parallel path must agree with the sequential one row-for-row.

// equivGraph is a synthetic graph large enough to cross the hash-join
// and parallelism thresholds: n people with name/age/city/type triples
// and a ring of knows edges.
func equivGraph(n int) *rdf.Graph {
	g := rdf.NewGraph()
	person := rdf.NewIRI("http://ex.org/Person")
	a := rdf.NewIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
	name := rdf.NewIRI("http://ex.org/name")
	age := rdf.NewIRI("http://ex.org/age")
	city := rdf.NewIRI("http://ex.org/city")
	knows := rdf.NewIRI("http://ex.org/knows")
	cities := []string{"Paris", "Athens", "Berlin", "Madrid"}
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://ex.org/p%d", i))
		g.Add(rdf.NewTriple(s, a, person))
		g.Add(rdf.NewTriple(s, name, rdf.NewLiteral(fmt.Sprintf("n%d", i))))
		g.Add(rdf.NewTriple(s, age, rdf.NewInteger(int64(20+i%50))))
		g.Add(rdf.NewTriple(s, city, rdf.NewLiteral(cities[i%len(cities)])))
		g.Add(rdf.NewTriple(s, knows, rdf.NewIRI(fmt.Sprintf("http://ex.org/p%d", (i+1)%n))))
	}
	return g
}

// equivQueries covers every evaluator feature. ORDER BY is only
// combined with LIMIT on keys that are total orders, so reordering
// cannot change which rows survive the cut.
var equivQueries = []string{
	`PREFIX ex: <http://ex.org/>
SELECT ?s ?n WHERE { ?s a ex:Person . ?s ex:name ?n }`,
	`PREFIX ex: <http://ex.org/>
SELECT ?s ?n ?c WHERE { ?s ex:city "Paris" . ?s ex:name ?n . ?s ex:age ?c }`,
	`PREFIX ex: <http://ex.org/>
SELECT ?s ?o ?n WHERE { ?s ex:knows ?o . ?o ex:name ?n }`,
	`PREFIX ex: <http://ex.org/>
SELECT ?s WHERE { ?s ex:age ?a . FILTER(?a > 60) }`,
	`PREFIX ex: <http://ex.org/>
SELECT ?s ?n WHERE { ?s ex:city "Athens" . OPTIONAL { ?s ex:name ?n } }`,
	`PREFIX ex: <http://ex.org/>
SELECT ?s ?n WHERE { { ?s ex:city "Paris" } UNION { ?s ex:city "Berlin" } . ?s ex:name ?n }`,
	`PREFIX ex: <http://ex.org/>
SELECT ?s ?b WHERE { ?s ex:age ?a . BIND(?a + 1 AS ?b) . FILTER(?b < 25) }`,
	`PREFIX ex: <http://ex.org/>
SELECT ?s ?c WHERE { ?s ex:city ?c . VALUES ?c { "Paris" "Madrid" } ?s ex:age ?a . FILTER(?a = 21) }`,
	`PREFIX ex: <http://ex.org/>
SELECT DISTINCT ?c WHERE { ?s ex:city ?c }`,
	`PREFIX ex: <http://ex.org/>
SELECT ?c (COUNT(*) AS ?n) (AVG(?a) AS ?avg) WHERE { ?s ex:city ?c . ?s ex:age ?a } GROUP BY ?c`,
	`PREFIX ex: <http://ex.org/>
SELECT ?n WHERE { ?s ex:name ?n . ?s ex:age ?a } ORDER BY ?n LIMIT 17`,
	`PREFIX ex: <http://ex.org/>
SELECT ?n WHERE { ?s ex:name ?n } ORDER BY DESC(?n) OFFSET 5 LIMIT 10`,
	`PREFIX ex: <http://ex.org/>
SELECT ?s WHERE { ?s ex:city "Paris" . FILTER EXISTS { ?s ex:knows ?o } }`,
	`PREFIX ex: <http://ex.org/>
SELECT ?s WHERE { ?s ex:city "Paris" . FILTER NOT EXISTS { ?s ex:age 21 } }`,
	`PREFIX ex: <http://ex.org/>
ASK { ?s ex:city "Athens" . ?s ex:age 22 }`,
	`PREFIX ex: <http://ex.org/>
ASK { ?s ex:city "Nowhere" }`,
	`PREFIX ex: <http://ex.org/>
CONSTRUCT { ?s ex:livesIn ?c } WHERE { ?s ex:city ?c . ?s ex:age ?a . FILTER(?a > 65) }`,
	`PREFIX ex: <http://ex.org/>
SELECT ?s ?n WHERE { { ?s ex:age 21 . OPTIONAL { ?s ex:name ?n } } UNION { ?s ex:city "Berlin" } }`,
	`PREFIX ex: <http://ex.org/>
SELECT ?s WHERE { { ?s ex:city "Paris" . ?s ex:age ?a . FILTER(?a < 30) } }`,
}

// resultsKey canonicalizes any result kind (rows as a sorted multiset,
// CONSTRUCT graphs as sorted triples, ASK as the boolean).
func resultsKey(res *Results) string {
	if res.Graph != nil {
		keys := make([]string, len(res.Graph))
		for i, t := range res.Graph {
			keys[i] = t.S.Key() + "\x00" + t.P.Key() + "\x00" + t.O.Key()
		}
		sort.Strings(keys)
		return "graph:" + strings.Join(keys, "\n")
	}
	if len(res.Vars) == 0 && res.Bindings == nil {
		return fmt.Sprintf("ask:%v", res.Bool)
	}
	return rowsKey(res)
}

// orderedKey renders rows in result order for exact comparisons.
func orderedKey(res *Results) string {
	var sb strings.Builder
	for _, b := range res.Bindings {
		vars := make([]string, 0, len(b))
		for v := range b {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		for _, v := range vars {
			fmt.Fprintf(&sb, "%s=%s;", v, b[v].Key())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestCompiledEngineMatchesSeed(t *testing.T) {
	g := equivGraph(400)
	for _, q := range equivQueries {
		parsed, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		seed, err1 := parsed.EvalSeed(g)
		comp, err2 := parsed.Eval(g)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error disagreement for %q: seed=%v compiled=%v", q, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if resultsKey(seed) != resultsKey(comp) {
			t.Errorf("result mismatch for %q:\nseed:     %d rows\ncompiled: %d rows",
				q, len(seed.Bindings), len(comp.Bindings))
		}
	}
}

func TestParallelWorkersIdenticalResults(t *testing.T) {
	g := equivGraph(600)
	for _, q := range equivQueries {
		parsed, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		// threshold 1 forces the parallel path for every stage.
		seq, err1 := parsed.eval(g, 1, 1)
		par, err2 := parsed.eval(g, 8, 1)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error disagreement for %q: seq=%v par=%v", q, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if orderedKey(seq) != orderedKey(par) || seq.Bool != par.Bool || resultsKey(seq) != resultsKey(par) {
			t.Errorf("workers=1 vs workers=8 diverge for %q", q)
		}
	}
}

func TestParallelEvalRace(t *testing.T) {
	// Concurrent evaluations sharing one source, each fanning out
	// internally; run under -race in CI.
	g := equivGraph(300)
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for _, q := range equivQueries[:8] {
				parsed, err := Parse(q)
				if err != nil {
					panic(err)
				}
				if _, err := parsed.eval(g, 4, 1); err != nil {
					panic(err)
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	close(done)
}

// countingSource wraps a graph and counts Match calls: the hash-join
// strategy must collapse per-row probes into a single build-side Match.
type countingSource struct {
	g     *rdf.Graph
	calls int
}

func (c *countingSource) Match(s, p, o rdf.Term) []rdf.Triple {
	c.calls++
	return c.g.Match(s, p, o)
}

func (c *countingSource) Cardinality(s, p, o rdf.Term) int {
	return c.g.Cardinality(s, p, o)
}

func TestHashJoinReducesMatchCalls(t *testing.T) {
	g := equivGraph(200)
	q := `PREFIX ex: <http://ex.org/>
SELECT ?s ?c WHERE { ?s a ex:Person . ?s ex:city ?c }`
	parsed, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	cs := &countingSource{g: g}
	res, err := parsed.Eval(cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 200 {
		t.Fatalf("got %d rows, want 200", len(res.Bindings))
	}
	// Seed strategy: 1 call for the first pattern + 200 per-row calls.
	// Compiled: one Match per pattern (cross-join build + hash build).
	if cs.calls > 4 {
		t.Errorf("compiled engine made %d Match calls, want <= 4", cs.calls)
	}
	ref, err := parsed.EvalSeed(g)
	if err != nil {
		t.Fatal(err)
	}
	comp, _ := parsed.Eval(g)
	if rowsKey(ref) != rowsKey(comp) {
		t.Error("hash-join results differ from seed evaluator")
	}
}
