package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"applab/internal/rdf"
)

// Parse parses a SPARQL query. The default App Lab prefixes (geo, geof,
// lai, osm, ...) are pre-bound; PREFIX declarations in the query override
// them.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: rdf.DefaultPrefixes()}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse but panics on error; for static query text.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks     []token
	pos      int
	prefixes *rdf.Prefixes
}

// cur and next clamp at the trailing EOF token: error paths may consume
// it and still need a position for their message.
func (p *parser) cur() token {
	if p.pos >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.cur()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: near offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tKeyword || t.text != kw {
		return p.errf("expected %s, got %q", kw, t.text)
	}
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tKeyword && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) accept(kind tokKind) bool {
	if p.cur().kind == kind {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{Limit: -1, Prefixes: p.prefixes}
	// Prologue
	for p.cur().kind == tKeyword && (p.cur().text == "PREFIX" || p.cur().text == "BASE") {
		kw := p.next().text
		if kw == "BASE" {
			if p.next().kind != tIRI {
				return nil, p.errf("expected IRI after BASE")
			}
			continue
		}
		name := p.next()
		if name.kind != tPName {
			return nil, p.errf("expected prefix name after PREFIX")
		}
		iri := p.next()
		if iri.kind != tIRI {
			return nil, p.errf("expected IRI after PREFIX %s", name.text)
		}
		p.prefixes.Bind(strings.TrimSuffix(name.text, ":"), iri.text)
	}
	switch {
	case p.acceptKeyword("SELECT"):
		q.Type = QuerySelect
		if err := p.parseSelectClause(q); err != nil {
			return nil, err
		}
	case p.acceptKeyword("ASK"):
		q.Type = QueryAsk
	case p.acceptKeyword("CONSTRUCT"):
		q.Type = QueryConstruct
		tmpl, err := p.parseConstructTemplate()
		if err != nil {
			return nil, err
		}
		q.Template = tmpl
	default:
		return nil, p.errf("expected SELECT, ASK or CONSTRUCT, got %q", p.cur().text)
	}
	p.acceptKeyword("WHERE")
	g, err := p.parseGroup()
	if err != nil {
		return nil, err
	}
	q.Where = g
	if err := p.parseSolutionModifiers(q); err != nil {
		return nil, err
	}
	if p.cur().kind != tEOF {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return q, nil
}

func (p *parser) parseSelectClause(q *Query) error {
	if p.acceptKeyword("DISTINCT") || p.acceptKeyword("REDUCED") {
		q.Distinct = true
	}
	if p.accept(tStar) {
		return nil // empty projection = '*'
	}
	for {
		switch p.cur().kind {
		case tVar:
			q.Projection = append(q.Projection, Projection{Var: p.next().text})
		case tLParen:
			p.next()
			proj, err := p.parseProjectionExpr()
			if err != nil {
				return err
			}
			q.Projection = append(q.Projection, proj)
		default:
			if len(q.Projection) == 0 {
				return p.errf("SELECT needs at least one variable")
			}
			return nil
		}
	}
}

// parseProjectionExpr parses "expr AS ?v )" after the opening paren.
func (p *parser) parseProjectionExpr() (Projection, error) {
	var proj Projection
	// Aggregate?
	if p.cur().kind == tKeyword {
		switch p.cur().text {
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			agg := &Aggregate{Func: p.next().text}
			if !p.accept(tLParen) {
				return proj, p.errf("expected ( after %s", agg.Func)
			}
			if p.acceptKeyword("DISTINCT") {
				agg.Distinct = true
			}
			if p.accept(tStar) {
				if agg.Func != "COUNT" {
					return proj, p.errf("* only allowed in COUNT")
				}
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return proj, err
				}
				agg.Arg = e
			}
			if !p.accept(tRParen) {
				return proj, p.errf("expected ) after aggregate")
			}
			proj.Agg = agg
		}
	}
	if proj.Agg == nil {
		e, err := p.parseExpr()
		if err != nil {
			return proj, err
		}
		proj.Expr = e
	}
	if !p.acceptKeyword("AS") {
		return proj, p.errf("expected AS in projection expression")
	}
	v := p.next()
	if v.kind != tVar {
		return proj, p.errf("expected variable after AS")
	}
	proj.Var = v.text
	if !p.accept(tRParen) {
		return proj, p.errf("expected ) after projection alias")
	}
	return proj, nil
}

func (p *parser) parseConstructTemplate() ([]TriplePattern, error) {
	if !p.accept(tLBrace) {
		return nil, p.errf("expected { after CONSTRUCT")
	}
	var out []TriplePattern
	for p.cur().kind != tRBrace {
		pats, err := p.parseTriplesBlock()
		if err != nil {
			return nil, err
		}
		out = append(out, pats...)
	}
	p.next() // }
	return out, nil
}

func (p *parser) parseGroup() (*Group, error) {
	if !p.accept(tLBrace) {
		return nil, p.errf("expected {")
	}
	g := &Group{}
	for {
		switch {
		case p.cur().kind == tRBrace:
			p.next()
			return g, nil
		case p.cur().kind == tEOF:
			return nil, p.errf("unterminated group pattern")
		case p.acceptKeyword("FILTER"):
			// FILTER EXISTS { ... } / FILTER NOT EXISTS { ... }
			if p.acceptKeyword("EXISTS") {
				sub, err := p.parseGroup()
				if err != nil {
					return nil, err
				}
				g.Elements = append(g.Elements, Exists{Group: sub})
				continue
			}
			if p.acceptKeyword("NOT") {
				if !p.acceptKeyword("EXISTS") {
					return nil, p.errf("expected EXISTS after NOT")
				}
				sub, err := p.parseGroup()
				if err != nil {
					return nil, err
				}
				g.Elements = append(g.Elements, Exists{Negated: true, Group: sub})
				continue
			}
			e, err := p.parseConstraint()
			if err != nil {
				return nil, err
			}
			g.Elements = append(g.Elements, Filter{Expr: e})
		case p.acceptKeyword("OPTIONAL"):
			sub, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			g.Elements = append(g.Elements, Optional{Group: sub})
		case p.acceptKeyword("BIND"):
			if !p.accept(tLParen) {
				return nil, p.errf("expected ( after BIND")
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if !p.acceptKeyword("AS") {
				return nil, p.errf("expected AS in BIND")
			}
			v := p.next()
			if v.kind != tVar {
				return nil, p.errf("expected variable after AS in BIND")
			}
			if !p.accept(tRParen) {
				return nil, p.errf("expected ) after BIND")
			}
			g.Elements = append(g.Elements, Bind{Var: v.text, Expr: e})
			p.accept(tDot)
		case p.acceptKeyword("VALUES"):
			vals, err := p.parseValues()
			if err != nil {
				return nil, err
			}
			g.Elements = append(g.Elements, vals)
		case p.cur().kind == tLBrace:
			first, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			if p.cur().kind == tKeyword && p.cur().text == "UNION" {
				u := Union{Alternatives: []*Group{first}}
				for p.acceptKeyword("UNION") {
					alt, err := p.parseGroup()
					if err != nil {
						return nil, err
					}
					u.Alternatives = append(u.Alternatives, alt)
				}
				g.Elements = append(g.Elements, u)
			} else {
				g.Elements = append(g.Elements, SubGroup{Group: first})
			}
			p.accept(tDot)
		default:
			pats, err := p.parseTriplesBlock()
			if err != nil {
				return nil, err
			}
			g.Elements = append(g.Elements, BGP{Patterns: pats})
		}
	}
}

// parseValues parses "?v { t1 t2 }" or "(?a ?b) { (t t) (t t) }".
func (p *parser) parseValues() (Values, error) {
	var v Values
	multi := false
	switch p.cur().kind {
	case tVar:
		v.Vars = []string{p.next().text}
	case tLParen:
		p.next()
		multi = true
		for p.cur().kind == tVar {
			v.Vars = append(v.Vars, p.next().text)
		}
		if !p.accept(tRParen) {
			return v, p.errf("expected ) after VALUES variables")
		}
		if len(v.Vars) == 0 {
			return v, p.errf("VALUES needs at least one variable")
		}
	default:
		return v, p.errf("expected variable(s) after VALUES")
	}
	if !p.accept(tLBrace) {
		return v, p.errf("expected { after VALUES variables")
	}
	for p.cur().kind != tRBrace {
		if p.cur().kind == tEOF {
			return v, p.errf("unterminated VALUES block")
		}
		if multi {
			if !p.accept(tLParen) {
				return v, p.errf("expected ( in VALUES row")
			}
			row := make([]rdf.Term, 0, len(v.Vars))
			for p.cur().kind != tRParen {
				pt, err := p.parsePatternTerm(false)
				if err != nil {
					return v, err
				}
				row = append(row, pt.Term)
			}
			p.next() // )
			if len(row) != len(v.Vars) {
				return v, p.errf("VALUES row arity %d, want %d", len(row), len(v.Vars))
			}
			v.Rows = append(v.Rows, row)
		} else {
			pt, err := p.parsePatternTerm(false)
			if err != nil {
				return v, err
			}
			v.Rows = append(v.Rows, []rdf.Term{pt.Term})
		}
	}
	p.next() // }
	return v, nil
}

// parseConstraint parses either a bracketed expression or a bare function
// call after FILTER.
func (p *parser) parseConstraint() (Expr, error) {
	if p.cur().kind == tLParen {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.accept(tRParen) {
			return nil, p.errf("expected ) after FILTER expression")
		}
		return e, nil
	}
	// FILTER geof:sfIntersects(...) form
	return p.parsePrimary()
}

// parseTriplesBlock parses subject predicate object with ';' and ','
// continuation, terminated by optional '.'.
func (p *parser) parseTriplesBlock() ([]TriplePattern, error) {
	var out []TriplePattern
	subj, err := p.parsePatternTerm(true)
	if err != nil {
		return nil, err
	}
	for {
		pred, err := p.parsePatternTerm(false)
		if err != nil {
			return nil, err
		}
		for {
			obj, err := p.parsePatternTerm(false)
			if err != nil {
				return nil, err
			}
			out = append(out, TriplePattern{S: subj, P: pred, O: obj})
			if p.accept(tComma) {
				continue
			}
			break
		}
		if p.accept(tSemicolon) {
			if p.cur().kind == tDot || p.cur().kind == tRBrace {
				p.accept(tDot)
				return out, nil
			}
			continue
		}
		p.accept(tDot)
		return out, nil
	}
}

func (p *parser) parsePatternTerm(asSubject bool) (PatternTerm, error) {
	t := p.next()
	switch t.kind {
	case tVar:
		return Vart(t.text), nil
	case tIRI:
		return Const(rdf.NewIRI(t.text)), nil
	case tBlank:
		return Const(rdf.NewBlank(t.text)), nil
	case tPName:
		if t.text == "a" && !asSubject {
			return Const(rdf.NewIRI(rdf.RDFType)), nil
		}
		iri, err := p.prefixes.Expand(t.text)
		if err != nil {
			return PatternTerm{}, p.errf("%v", err)
		}
		return Const(rdf.NewIRI(iri)), nil
	case tNumber:
		if strings.ContainsAny(t.text, ".eE") {
			return Const(rdf.NewTypedLiteral(t.text, rdf.XSDDecimal)), nil
		}
		return Const(rdf.NewTypedLiteral(t.text, rdf.XSDInteger)), nil
	case tBoolean:
		return Const(rdf.NewTypedLiteral(t.text, rdf.XSDBoolean)), nil
	case tString:
		lit, err := p.finishLiteral(t.text)
		if err != nil {
			return PatternTerm{}, err
		}
		return Const(lit), nil
	}
	return PatternTerm{}, p.errf("unexpected token %q in triple pattern", t.text)
}

// finishLiteral attaches an optional language tag or datatype to a lexed
// string.
func (p *parser) finishLiteral(lex string) (rdf.Term, error) {
	switch p.cur().kind {
	case tAt:
		lang := p.next().text
		return rdf.NewLangLiteral(lex, lang), nil
	case tCaret:
		p.next()
		dt := p.next()
		switch dt.kind {
		case tIRI:
			return rdf.NewTypedLiteral(lex, dt.text), nil
		case tPName:
			iri, err := p.prefixes.Expand(dt.text)
			if err != nil {
				return rdf.Term{}, p.errf("%v", err)
			}
			return rdf.NewTypedLiteral(lex, iri), nil
		default:
			return rdf.Term{}, p.errf("expected datatype after ^^")
		}
	}
	return rdf.NewLiteral(lex), nil
}

func (p *parser) parseSolutionModifiers(q *Query) error {
	for {
		switch {
		case p.acceptKeyword("GROUP"):
			if err := p.expectKeyword("BY"); err != nil {
				return err
			}
			for p.cur().kind == tVar {
				q.GroupBy = append(q.GroupBy, p.next().text)
			}
			if len(q.GroupBy) == 0 {
				return p.errf("GROUP BY needs at least one variable")
			}
		case p.acceptKeyword("ORDER"):
			if err := p.expectKeyword("BY"); err != nil {
				return err
			}
			for done := false; !done; {
				switch {
				case p.acceptKeyword("ASC"):
					e, err := p.parseBracketed()
					if err != nil {
						return err
					}
					q.OrderBy = append(q.OrderBy, OrderKey{Expr: e})
				case p.acceptKeyword("DESC"):
					e, err := p.parseBracketed()
					if err != nil {
						return err
					}
					q.OrderBy = append(q.OrderBy, OrderKey{Expr: e, Desc: true})
				case p.cur().kind == tVar:
					q.OrderBy = append(q.OrderBy, OrderKey{Expr: VarExpr{Name: p.next().text}})
				default:
					if len(q.OrderBy) == 0 {
						return p.errf("ORDER BY needs at least one key")
					}
					done = true
				}
			}
		case p.acceptKeyword("LIMIT"):
			n := p.next()
			if n.kind != tNumber {
				return p.errf("expected number after LIMIT")
			}
			v, err := strconv.Atoi(n.text)
			if err != nil {
				return p.errf("bad LIMIT %q: %v", n.text, err)
			}
			q.Limit = v
		case p.acceptKeyword("OFFSET"):
			n := p.next()
			if n.kind != tNumber {
				return p.errf("expected number after OFFSET")
			}
			v, err := strconv.Atoi(n.text)
			if err != nil {
				return p.errf("bad OFFSET %q: %v", n.text, err)
			}
			q.Offset = v
		default:
			return nil
		}
	}
}

func (p *parser) parseBracketed() (Expr, error) {
	if !p.accept(tLParen) {
		return nil, p.errf("expected (")
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.accept(tRParen) {
		return nil, p.errf("expected )")
	}
	return e, nil
}

// ---- expression parsing (precedence climbing) ----

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tOp && p.cur().text == "||" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tOp && p.cur().text == "&&" {
		p.next()
		r, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tOp {
		switch p.cur().text {
		case "=", "!=", "<", "<=", ">", ">=":
			op := p.next().text
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tOp && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.next().text
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for (p.cur().kind == tStar) || (p.cur().kind == tOp && p.cur().text == "/") {
		op := "*"
		if p.cur().kind == tOp {
			op = "/"
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.cur().kind == tOp && (p.cur().text == "!" || p.cur().text == "-") {
		op := p.next().text
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnaryExpr{Op: op, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.accept(tRParen) {
			return nil, p.errf("expected )")
		}
		return e, nil
	case tVar:
		return VarExpr{Name: t.text}, nil
	case tNumber:
		if strings.ContainsAny(t.text, ".eE") {
			return ConstExpr{Term: rdf.NewTypedLiteral(t.text, rdf.XSDDecimal)}, nil
		}
		return ConstExpr{Term: rdf.NewTypedLiteral(t.text, rdf.XSDInteger)}, nil
	case tBoolean:
		return ConstExpr{Term: rdf.NewTypedLiteral(t.text, rdf.XSDBoolean)}, nil
	case tString:
		lit, err := p.finishLiteral(t.text)
		if err != nil {
			return nil, err
		}
		return ConstExpr{Term: lit}, nil
	case tIRI:
		if p.cur().kind == tLParen {
			return p.parseCall(t.text)
		}
		return ConstExpr{Term: rdf.NewIRI(t.text)}, nil
	case tPName:
		if p.cur().kind == tLParen {
			// Builtin names are bare (no colon); extension functions are
			// prefixed (geof:sfIntersects) or full IRIs.
			if !strings.Contains(t.text, ":") {
				return p.parseCall(strings.ToUpper(t.text))
			}
			iri, err := p.prefixes.Expand(t.text)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			return p.parseCall(iri)
		}
		iri, err := p.prefixes.Expand(t.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return ConstExpr{Term: rdf.NewIRI(iri)}, nil
	case tKeyword:
		// Aggregate keywords usable as expression functions (MIN/MAX...).
		if p.cur().kind == tLParen {
			return p.parseCall(t.text)
		}
		return nil, p.errf("unexpected keyword %q in expression", t.text)
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}

func (p *parser) parseCall(name string) (Expr, error) {
	if !p.accept(tLParen) {
		return nil, p.errf("expected ( after function name")
	}
	call := CallExpr{IRI: name}
	if p.accept(tRParen) {
		return call, nil
	}
	for {
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, arg)
		if p.accept(tComma) {
			continue
		}
		if p.accept(tRParen) {
			return call, nil
		}
		return nil, p.errf("expected , or ) in function call")
	}
}
