package sparql

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"

	"applab/internal/rdf"
)

// Binding is one solution mapping from variable names to RDF terms.
type Binding map[string]rdf.Term

// clone returns a copy of the binding with room for one more entry.
func (b Binding) clone() Binding {
	out := make(Binding, len(b)+1)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Expr is a SPARQL expression.
type Expr interface {
	// Eval evaluates the expression under a binding. An error represents a
	// SPARQL expression error (which makes enclosing FILTERs false).
	Eval(b Binding) (rdf.Term, error)
	// String renders the expression for diagnostics.
	String() string
}

// errUnbound is the SPARQL "unbound variable" expression error.
var errUnbound = fmt.Errorf("sparql: unbound variable in expression")

// VarExpr references a variable.
type VarExpr struct{ Name string }

// Eval implements Expr.
func (e VarExpr) Eval(b Binding) (rdf.Term, error) {
	t, ok := b[e.Name]
	if !ok {
		return rdf.Term{}, errUnbound
	}
	return t, nil
}

func (e VarExpr) String() string { return "?" + e.Name }

// ConstExpr is a constant term.
type ConstExpr struct{ Term rdf.Term }

// Eval implements Expr.
func (e ConstExpr) Eval(Binding) (rdf.Term, error) { return e.Term, nil }

func (e ConstExpr) String() string { return e.Term.String() }

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   string // || && = != < <= > >= + - * /
	L, R Expr
}

// Eval implements Expr.
func (e BinaryExpr) Eval(b Binding) (rdf.Term, error) {
	switch e.Op {
	case "||":
		lv, lerr := ebv(e.L, b)
		if lerr == nil && lv {
			return rdf.NewBool(true), nil
		}
		rv, rerr := ebv(e.R, b)
		if rerr == nil && rv {
			return rdf.NewBool(true), nil
		}
		if lerr != nil {
			return rdf.Term{}, lerr
		}
		if rerr != nil {
			return rdf.Term{}, rerr
		}
		return rdf.NewBool(false), nil
	case "&&":
		lv, lerr := ebv(e.L, b)
		if lerr == nil && !lv {
			return rdf.NewBool(false), nil
		}
		rv, rerr := ebv(e.R, b)
		if rerr == nil && !rv {
			return rdf.NewBool(false), nil
		}
		if lerr != nil {
			return rdf.Term{}, lerr
		}
		if rerr != nil {
			return rdf.Term{}, rerr
		}
		return rdf.NewBool(true), nil
	}
	l, err := e.L.Eval(b)
	if err != nil {
		return rdf.Term{}, err
	}
	r, err := e.R.Eval(b)
	if err != nil {
		return rdf.Term{}, err
	}
	return applyBinary(e.Op, l, r)
}

// applyBinary applies a non-short-circuiting binary operator to two
// evaluated operands. Shared by the tree-walking Eval above and the
// compiled (slot-based) expression closures, so both engines agree on
// operator semantics by construction.
func applyBinary(op string, l, r rdf.Term) (rdf.Term, error) {
	switch op {
	case "=", "!=":
		eq, err := termsEqual(l, r)
		if err != nil {
			return rdf.Term{}, err
		}
		if op == "!=" {
			eq = !eq
		}
		return rdf.NewBool(eq), nil
	case "<", "<=", ">", ">=":
		c, err := compareTerms(l, r)
		if err != nil {
			return rdf.Term{}, err
		}
		var v bool
		switch op {
		case "<":
			v = c < 0
		case "<=":
			v = c <= 0
		case ">":
			v = c > 0
		case ">=":
			v = c >= 0
		}
		return rdf.NewBool(v), nil
	case "+", "-", "*", "/":
		lf, lok := l.Float()
		rf, rok := r.Float()
		if !lok || !rok {
			return rdf.Term{}, fmt.Errorf("sparql: non-numeric operand for %q", op)
		}
		var v float64
		switch op {
		case "+":
			v = lf + rf
		case "-":
			v = lf - rf
		case "*":
			v = lf * rf
		case "/":
			if rf == 0 {
				return rdf.Term{}, fmt.Errorf("sparql: division by zero")
			}
			v = lf / rf
		}
		if l.Datatype == rdf.XSDInteger && r.Datatype == rdf.XSDInteger && op != "/" {
			return rdf.NewInteger(int64(v)), nil
		}
		return rdf.NewDouble(v), nil
	}
	return rdf.Term{}, fmt.Errorf("sparql: unknown operator %q", op)
}

func (e BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

// UnaryExpr applies ! or unary -.
type UnaryExpr struct {
	Op string
	X  Expr
}

// Eval implements Expr.
func (e UnaryExpr) Eval(b Binding) (rdf.Term, error) {
	switch e.Op {
	case "!":
		v, err := ebv(e.X, b)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewBool(!v), nil
	case "-":
		v, err := e.X.Eval(b)
		if err != nil {
			return rdf.Term{}, err
		}
		return applyNeg(v)
	}
	return rdf.Term{}, fmt.Errorf("sparql: unknown unary operator %q", e.Op)
}

// applyNeg negates a numeric operand (shared with the compiled engine).
func applyNeg(v rdf.Term) (rdf.Term, error) {
	f, ok := v.Float()
	if !ok {
		return rdf.Term{}, fmt.Errorf("sparql: unary minus on non-number")
	}
	if v.Datatype == rdf.XSDInteger {
		return rdf.NewInteger(-int64(f)), nil
	}
	return rdf.NewDouble(-f), nil
}

func (e UnaryExpr) String() string { return e.Op + e.X.String() }

// CallExpr is a function call: a builtin (BOUND, STR, REGEX, ...) or a
// registered extension function such as geof:sfIntersects.
type CallExpr struct {
	// IRI is the resolved function IRI for extension functions, or the
	// upper-cased builtin name.
	IRI  string
	Args []Expr
}

// Eval implements Expr.
func (e CallExpr) Eval(b Binding) (rdf.Term, error) {
	// BOUND must see the raw variable, not its evaluation error.
	if e.IRI == "BOUND" {
		if len(e.Args) != 1 {
			return rdf.Term{}, fmt.Errorf("sparql: BOUND takes one variable")
		}
		v, ok := e.Args[0].(VarExpr)
		if !ok {
			return rdf.Term{}, fmt.Errorf("sparql: BOUND argument must be a variable")
		}
		_, bound := b[v.Name]
		return rdf.NewBool(bound), nil
	}
	args := make([]rdf.Term, len(e.Args))
	for i, a := range e.Args {
		v, err := a.Eval(b)
		if err != nil {
			return rdf.Term{}, err
		}
		args[i] = v
	}
	return applyCall(e.IRI, args)
}

// applyCall dispatches an already-evaluated argument list to a builtin
// or registered extension function (shared with the compiled engine).
func applyCall(iri string, args []rdf.Term) (rdf.Term, error) {
	if fn, ok := builtins[iri]; ok {
		return fn(args)
	}
	if fn, ok := LookupFunction(iri); ok {
		return fn(args)
	}
	return rdf.Term{}, fmt.Errorf("sparql: unknown function %q", iri)
}

func (e CallExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.IRI + "(" + strings.Join(parts, ", ") + ")"
}

// ebv computes the SPARQL effective boolean value of an expression.
func ebv(e Expr, b Binding) (bool, error) {
	v, err := e.Eval(b)
	if err != nil {
		return false, err
	}
	return TermEBV(v)
}

// TermEBV returns the effective boolean value of a term.
func TermEBV(v rdf.Term) (bool, error) {
	if !v.IsLiteral() {
		return false, fmt.Errorf("sparql: no boolean value for %s", v)
	}
	if bv, ok := v.Bool(); ok {
		return bv, nil
	}
	if v.IsNumeric() {
		f, _ := v.Float()
		return f != 0, nil
	}
	if v.Datatype == rdf.XSDString || v.Datatype == "" || v.Lang != "" {
		return v.Value != "", nil
	}
	return false, fmt.Errorf("sparql: no boolean value for %s", v)
}

// termsEqual implements SPARQL "=": numeric comparison by value, otherwise
// term equality for compatible kinds.
func termsEqual(l, r rdf.Term) (bool, error) {
	if l.IsNumeric() && r.IsNumeric() {
		lf, _ := l.Float()
		rf, _ := r.Float()
		return lf == rf, nil
	}
	if lt, ok := l.Time(); ok {
		if rt, ok2 := r.Time(); ok2 {
			return lt.Equal(rt), nil
		}
	}
	return l.Equal(r), nil
}

// compareTerms orders two literals: numerically, temporally or lexically.
func compareTerms(l, r rdf.Term) (int, error) {
	if l.IsNumeric() && r.IsNumeric() {
		lf, _ := l.Float()
		rf, _ := r.Float()
		switch {
		case lf < rf:
			return -1, nil
		case lf > rf:
			return 1, nil
		}
		return 0, nil
	}
	if lt, ok := l.Time(); ok {
		if rt, ok2 := r.Time(); ok2 {
			switch {
			case lt.Before(rt):
				return -1, nil
			case lt.After(rt):
				return 1, nil
			}
			return 0, nil
		}
	}
	if l.IsLiteral() && r.IsLiteral() {
		return strings.Compare(l.Value, r.Value), nil
	}
	return 0, fmt.Errorf("sparql: cannot compare %s and %s", l, r)
}

// ---- builtin functions ----

type termFunc func(args []rdf.Term) (rdf.Term, error)

var builtins = map[string]termFunc{
	"STR": func(args []rdf.Term) (rdf.Term, error) {
		if len(args) != 1 {
			return rdf.Term{}, fmt.Errorf("STR takes 1 argument")
		}
		return rdf.NewLiteral(args[0].Value), nil
	},
	"LANG": func(args []rdf.Term) (rdf.Term, error) {
		if len(args) != 1 {
			return rdf.Term{}, fmt.Errorf("LANG takes 1 argument")
		}
		return rdf.NewLiteral(args[0].Lang), nil
	},
	"DATATYPE": func(args []rdf.Term) (rdf.Term, error) {
		if len(args) != 1 {
			return rdf.Term{}, fmt.Errorf("DATATYPE takes 1 argument")
		}
		return rdf.NewIRI(args[0].Datatype), nil
	},
	"ISIRI": func(args []rdf.Term) (rdf.Term, error) {
		return rdf.NewBool(len(args) == 1 && args[0].IsIRI()), nil
	},
	"ISLITERAL": func(args []rdf.Term) (rdf.Term, error) {
		return rdf.NewBool(len(args) == 1 && args[0].IsLiteral()), nil
	},
	"ISBLANK": func(args []rdf.Term) (rdf.Term, error) {
		return rdf.NewBool(len(args) == 1 && args[0].IsBlank()), nil
	},
	"ISNUMERIC": func(args []rdf.Term) (rdf.Term, error) {
		return rdf.NewBool(len(args) == 1 && args[0].IsNumeric()), nil
	},
	"REGEX": func(args []rdf.Term) (rdf.Term, error) {
		if len(args) < 2 || len(args) > 3 {
			return rdf.Term{}, fmt.Errorf("REGEX takes 2 or 3 arguments")
		}
		pat := args[1].Value
		if len(args) == 3 && strings.Contains(args[2].Value, "i") {
			pat = "(?i)" + pat
		}
		re, err := compileRegex(pat)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewBool(re.MatchString(args[0].Value)), nil
	},
	"STRSTARTS": func(args []rdf.Term) (rdf.Term, error) {
		if len(args) != 2 {
			return rdf.Term{}, fmt.Errorf("STRSTARTS takes 2 arguments")
		}
		return rdf.NewBool(strings.HasPrefix(args[0].Value, args[1].Value)), nil
	},
	"STRENDS": func(args []rdf.Term) (rdf.Term, error) {
		if len(args) != 2 {
			return rdf.Term{}, fmt.Errorf("STRENDS takes 2 arguments")
		}
		return rdf.NewBool(strings.HasSuffix(args[0].Value, args[1].Value)), nil
	},
	"CONTAINS": func(args []rdf.Term) (rdf.Term, error) {
		if len(args) != 2 {
			return rdf.Term{}, fmt.Errorf("CONTAINS takes 2 arguments")
		}
		return rdf.NewBool(strings.Contains(args[0].Value, args[1].Value)), nil
	},
	"STRLEN": func(args []rdf.Term) (rdf.Term, error) {
		if len(args) != 1 {
			return rdf.Term{}, fmt.Errorf("STRLEN takes 1 argument")
		}
		return rdf.NewInteger(int64(len([]rune(args[0].Value)))), nil
	},
	"UCASE": func(args []rdf.Term) (rdf.Term, error) {
		if len(args) != 1 {
			return rdf.Term{}, fmt.Errorf("UCASE takes 1 argument")
		}
		return rdf.NewLiteral(strings.ToUpper(args[0].Value)), nil
	},
	"LCASE": func(args []rdf.Term) (rdf.Term, error) {
		if len(args) != 1 {
			return rdf.Term{}, fmt.Errorf("LCASE takes 1 argument")
		}
		return rdf.NewLiteral(strings.ToLower(args[0].Value)), nil
	},
	"ABS": func(args []rdf.Term) (rdf.Term, error) {
		if len(args) != 1 {
			return rdf.Term{}, fmt.Errorf("ABS takes 1 argument")
		}
		f, ok := args[0].Float()
		if !ok {
			return rdf.Term{}, fmt.Errorf("ABS on non-number")
		}
		if f < 0 {
			f = -f
		}
		if args[0].Datatype == rdf.XSDInteger {
			return rdf.NewInteger(int64(f)), nil
		}
		return rdf.NewDouble(f), nil
	},
	"YEAR": func(args []rdf.Term) (rdf.Term, error) {
		if len(args) != 1 {
			return rdf.Term{}, fmt.Errorf("YEAR takes 1 argument")
		}
		tm, ok := args[0].Time()
		if !ok {
			return rdf.Term{}, fmt.Errorf("YEAR on non-dateTime")
		}
		return rdf.NewInteger(int64(tm.Year())), nil
	},
	"MONTH": func(args []rdf.Term) (rdf.Term, error) {
		if len(args) != 1 {
			return rdf.Term{}, fmt.Errorf("MONTH takes 1 argument")
		}
		tm, ok := args[0].Time()
		if !ok {
			return rdf.Term{}, fmt.Errorf("MONTH on non-dateTime")
		}
		return rdf.NewInteger(int64(tm.Month())), nil
	},
	"XSD:DOUBLE": func(args []rdf.Term) (rdf.Term, error) {
		f, ok := args[0].Float()
		if !ok {
			v, err := strconv.ParseFloat(args[0].Value, 64)
			if err != nil {
				return rdf.Term{}, err
			}
			f = v
		}
		return rdf.NewDouble(f), nil
	},
}

var regexCache sync.Map // string -> *regexp.Regexp

func compileRegex(pat string) (*regexp.Regexp, error) {
	if re, ok := regexCache.Load(pat); ok {
		return re.(*regexp.Regexp), nil
	}
	re, err := regexp.Compile(pat)
	if err != nil {
		return nil, err
	}
	regexCache.Store(pat, re)
	return re, nil
}

// ---- extension function registry ----

var (
	extMu sync.RWMutex
	exts  = map[string]termFunc{}
)

// RegisterFunction installs an extension function under its IRI (e.g. the
// geof:* functions). Later registrations replace earlier ones.
func RegisterFunction(iri string, fn func(args []rdf.Term) (rdf.Term, error)) {
	extMu.Lock()
	defer extMu.Unlock()
	exts[iri] = fn
}

// LookupFunction returns the extension function registered under iri.
func LookupFunction(iri string) (func(args []rdf.Term) (rdf.Term, error), bool) {
	extMu.RLock()
	defer extMu.RUnlock()
	fn, ok := exts[iri]
	return fn, ok
}
