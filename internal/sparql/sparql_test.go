package sparql

import (
	"strings"
	"testing"

	"applab/internal/rdf"
)

// testGraph builds a small social/geo graph for the evaluator tests.
func testGraph(t *testing.T) *rdf.Graph {
	t.Helper()
	src := `
@prefix ex: <http://ex.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:alice a ex:Person ; ex:name "Alice" ; ex:age 30 ; ex:knows ex:bob, ex:carol .
ex:bob a ex:Person ; ex:name "Bob" ; ex:age 25 ; ex:knows ex:carol .
ex:carol a ex:Person ; ex:name "Carol" ; ex:age 35 .
ex:dave a ex:Robot ; ex:name "Dave" .
ex:alice ex:city "Paris" .
ex:bob ex:city "Athens" .
ex:carol ex:city "Paris" .
`
	triples, _, err := rdf.ParseTurtleString(src)
	if err != nil {
		t.Fatal(err)
	}
	g := rdf.NewGraph()
	g.AddAll(triples)
	return g
}

func evalQ(t *testing.T, g *rdf.Graph, q string) *Results {
	t.Helper()
	res, err := Eval(g, q)
	if err != nil {
		t.Fatalf("Eval(%q): %v", q, err)
	}
	return res
}

func TestSelectBasic(t *testing.T) {
	g := testGraph(t)
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE { ?p a ex:Person . ?p ex:name ?name }`)
	if len(res.Bindings) != 3 {
		t.Fatalf("got %d rows: %v", len(res.Bindings), res.Bindings)
	}
	names := map[string]bool{}
	for _, b := range res.Bindings {
		names[b["name"].Value] = true
	}
	for _, n := range []string{"Alice", "Bob", "Carol"} {
		if !names[n] {
			t.Errorf("missing %s", n)
		}
	}
	if names["Dave"] {
		t.Error("Dave is not a Person")
	}
}

func TestSelectStar(t *testing.T) {
	g := testGraph(t)
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT * WHERE { ?p ex:knows ?q }`)
	if len(res.Bindings) != 3 {
		t.Fatalf("rows = %d", len(res.Bindings))
	}
	if len(res.Vars) != 2 {
		t.Fatalf("vars = %v", res.Vars)
	}
}

func TestJoinAcrossPatterns(t *testing.T) {
	g := testGraph(t)
	// Friends-of-friends: alice knows bob, bob knows carol.
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?fof WHERE { ex:alice ex:knows ?f . ?f ex:knows ?fof }`)
	if len(res.Bindings) != 1 || !strings.HasSuffix(res.Bindings[0]["fof"].Value, "carol") {
		t.Fatalf("fof = %v", res.Bindings)
	}
}

func TestFilterComparison(t *testing.T) {
	g := testGraph(t)
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE { ?p ex:age ?a . ?p ex:name ?name . FILTER(?a > 26) }`)
	if len(res.Bindings) != 2 {
		t.Fatalf("rows = %v", res.Bindings)
	}
	res = evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE { ?p ex:age ?a . ?p ex:name ?name . FILTER(?a >= 25 && ?a < 31) }`)
	if len(res.Bindings) != 2 {
		t.Fatalf("range rows = %v", res.Bindings)
	}
	res = evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE { ?p ex:name ?name . FILTER(?name = "Alice" || ?name = "Bob") }`)
	if len(res.Bindings) != 2 {
		t.Fatalf("or rows = %v", res.Bindings)
	}
	res = evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE { ?p ex:name ?name . FILTER(!(?name = "Alice")) }`)
	if len(res.Bindings) != 3 {
		t.Fatalf("negation rows = %v", res.Bindings)
	}
}

func TestFilterRegexAndStrings(t *testing.T) {
	g := testGraph(t)
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE { ?p ex:name ?name . FILTER regex(?name, "^A") }`)
	if len(res.Bindings) != 1 || res.Bindings[0]["name"].Value != "Alice" {
		t.Fatalf("regex rows = %v", res.Bindings)
	}
	res = evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE { ?p ex:name ?name . FILTER(STRSTARTS(?name, "C")) }`)
	if len(res.Bindings) != 1 || res.Bindings[0]["name"].Value != "Carol" {
		t.Fatalf("strstarts rows = %v", res.Bindings)
	}
	res = evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE { ?p ex:name ?name . FILTER(CONTAINS(LCASE(?name), "o")) }`)
	if len(res.Bindings) != 2 {
		t.Fatalf("contains rows = %v", res.Bindings)
	}
}

func TestOptional(t *testing.T) {
	g := testGraph(t)
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name ?friend WHERE {
  ?p a ex:Person ; ex:name ?name .
  OPTIONAL { ?p ex:knows ?friend }
}`)
	// alice x2, bob x1, carol x1 (no friends -> row without ?friend)
	if len(res.Bindings) != 4 {
		t.Fatalf("rows = %v", res.Bindings)
	}
	carolHasFriend := false
	for _, b := range res.Bindings {
		if b["name"].Value == "Carol" {
			if _, ok := b["friend"]; ok {
				carolHasFriend = true
			}
		}
	}
	if carolHasFriend {
		t.Error("Carol must have an unbound ?friend")
	}
	// BOUND filter over optional
	res = evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE {
  ?p a ex:Person ; ex:name ?name .
  OPTIONAL { ?p ex:knows ?friend }
  FILTER(!BOUND(?friend))
}`)
	if len(res.Bindings) != 1 || res.Bindings[0]["name"].Value != "Carol" {
		t.Fatalf("!BOUND rows = %v", res.Bindings)
	}
}

func TestUnion(t *testing.T) {
	g := testGraph(t)
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?n WHERE {
  { ?p a ex:Person . ?p ex:name ?n } UNION { ?p a ex:Robot . ?p ex:name ?n }
}`)
	if len(res.Bindings) != 4 {
		t.Fatalf("union rows = %v", res.Bindings)
	}
}

func TestDistinctOrderLimitOffset(t *testing.T) {
	g := testGraph(t)
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT DISTINCT ?city WHERE { ?p ex:city ?city }`)
	if len(res.Bindings) != 2 {
		t.Fatalf("distinct rows = %v", res.Bindings)
	}
	res = evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name ?age WHERE { ?p ex:name ?name ; ex:age ?age } ORDER BY DESC(?age)`)
	if res.Bindings[0]["name"].Value != "Carol" || res.Bindings[2]["name"].Value != "Bob" {
		t.Fatalf("order rows = %v", res.Bindings)
	}
	res = evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE { ?p ex:name ?name ; ex:age ?age } ORDER BY ?age LIMIT 1`)
	if len(res.Bindings) != 1 || res.Bindings[0]["name"].Value != "Bob" {
		t.Fatalf("limit rows = %v", res.Bindings)
	}
	res = evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE { ?p ex:name ?name ; ex:age ?age } ORDER BY ?age LIMIT 1 OFFSET 1`)
	if len(res.Bindings) != 1 || res.Bindings[0]["name"].Value != "Alice" {
		t.Fatalf("offset rows = %v", res.Bindings)
	}
	// ORDER BY a non-projected variable.
	res = evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE { ?p ex:name ?name ; ex:age ?age } ORDER BY DESC(?age)`)
	if res.Bindings[0]["name"].Value != "Carol" {
		t.Fatalf("order by non-projected = %v", res.Bindings)
	}
	if _, ok := res.Bindings[0]["age"]; ok {
		t.Error("age must not leak into projected bindings")
	}
}

func TestAsk(t *testing.T) {
	g := testGraph(t)
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/> ASK { ex:alice ex:knows ex:bob }`)
	if !res.Bool {
		t.Error("ASK should be true")
	}
	res = evalQ(t, g, `PREFIX ex: <http://ex.org/> ASK { ex:bob ex:knows ex:alice }`)
	if res.Bool {
		t.Error("ASK should be false")
	}
}

func TestConstruct(t *testing.T) {
	g := testGraph(t)
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
CONSTRUCT { ?p ex:friendName ?n } WHERE { ?x ex:knows ?p . ?p ex:name ?n }`)
	if len(res.Graph) != 2 { // bob, carol (carol appears twice, deduped)
		t.Fatalf("construct graph = %v", res.Graph)
	}
	for _, tr := range res.Graph {
		if tr.P.Value != "http://ex.org/friendName" {
			t.Errorf("bad predicate %v", tr.P)
		}
	}
}

func TestAggregates(t *testing.T) {
	g := testGraph(t)
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT (COUNT(*) AS ?n) WHERE { ?p a ex:Person }`)
	if v, _ := res.Bindings[0]["n"].Int(); v != 3 {
		t.Fatalf("count = %v", res.Bindings)
	}
	res = evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT (AVG(?a) AS ?avg) (MAX(?a) AS ?max) (MIN(?a) AS ?min) (SUM(?a) AS ?sum)
WHERE { ?p ex:age ?a }`)
	b := res.Bindings[0]
	if f, _ := b["avg"].Float(); f != 30 {
		t.Errorf("avg = %v", b["avg"])
	}
	if f, _ := b["max"].Float(); f != 35 {
		t.Errorf("max = %v", b["max"])
	}
	if f, _ := b["min"].Float(); f != 25 {
		t.Errorf("min = %v", b["min"])
	}
	if f, _ := b["sum"].Float(); f != 90 {
		t.Errorf("sum = %v", b["sum"])
	}
	// GROUP BY
	res = evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?city (COUNT(*) AS ?n) WHERE { ?p ex:city ?city } GROUP BY ?city ORDER BY DESC(?n)`)
	if len(res.Bindings) != 2 {
		t.Fatalf("group rows = %v", res.Bindings)
	}
	if res.Bindings[0]["city"].Value != "Paris" {
		t.Fatalf("group order = %v", res.Bindings)
	}
	if v, _ := res.Bindings[0]["n"].Int(); v != 2 {
		t.Fatalf("paris count = %v", res.Bindings[0]["n"])
	}
	// COUNT(DISTINCT ?x)
	res = evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT (COUNT(DISTINCT ?city) AS ?n) WHERE { ?p ex:city ?city }`)
	if v, _ := res.Bindings[0]["n"].Int(); v != 2 {
		t.Fatalf("count distinct = %v", res.Bindings)
	}
}

func TestExpressionProjection(t *testing.T) {
	g := testGraph(t)
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name (?a * 2 AS ?double) WHERE { ?p ex:name ?name ; ex:age ?a } ORDER BY ?a`)
	if len(res.Bindings) != 3 {
		t.Fatalf("rows = %v", res.Bindings)
	}
	if v, _ := res.Bindings[0]["double"].Float(); v != 50 {
		t.Fatalf("double = %v", res.Bindings[0]["double"])
	}
}

func TestExtensionFunctionRegistry(t *testing.T) {
	RegisterFunction("http://ex.org/fn/always42", func(args []rdf.Term) (rdf.Term, error) {
		return rdf.NewInteger(42), nil
	})
	g := testGraph(t)
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/> PREFIX fn: <http://ex.org/fn/>
SELECT ?name WHERE { ?p ex:name ?name . FILTER(fn:always42() = 42) }`)
	if len(res.Bindings) != 4 {
		t.Fatalf("extension fn rows = %v", res.Bindings)
	}
	if _, ok := LookupFunction("http://ex.org/fn/always42"); !ok {
		t.Error("LookupFunction failed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT ?x`,
		`SELECT ?x WHERE`,
		`SELECT ?x WHERE { ?x ex:p ?y }`, // unbound prefix
		`FOO ?x WHERE { ?x ?p ?y }`,
		`SELECT ?x WHERE { ?x ?p ?y } LIMIT abc`,
		`SELECT ?x WHERE { ?x ?p ?y extra`,
		`SELECT (COUNT(*) AS ?n WHERE { ?x ?p ?y }`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("expected parse error for %q", q)
		}
	}
}

func TestParseListing1Shape(t *testing.T) {
	// The paper's Listing 1 query (prefixes pre-bound by DefaultPrefixes).
	q := `SELECT DISTINCT ?geoA ?geoB ?lai WHERE
{ ?areaA osm:poiType osm:park .
  ?areaA geo:hasGeometry ?geomA .
  ?geomA geo:asWKT ?geoA .
  ?areaA osm:hasName "Bois de Boulogne"^^xsd:string .
  ?areaB lai:lai ?lai .
  ?areaB geo:hasGeometry ?geomB .
  ?geomB geo:asWKT ?geoB .
  FILTER(geof:sfIntersects(?geoA , ?geoB))
}`
	parsed, err := Parse(q)
	if err != nil {
		t.Fatalf("Listing 1 parse: %v", err)
	}
	if parsed.Type != QuerySelect || !parsed.Distinct {
		t.Error("Listing 1 must be SELECT DISTINCT")
	}
	if len(parsed.Projection) != 3 {
		t.Errorf("projection = %v", parsed.Projection)
	}
	nFilters := 0
	for _, el := range parsed.Where.Elements {
		if _, ok := el.(Filter); ok {
			nFilters++
		}
	}
	if nFilters != 1 {
		t.Errorf("filters = %d", nFilters)
	}
}

func TestEmptyGraphQueries(t *testing.T) {
	g := rdf.NewGraph()
	res := evalQ(t, g, `SELECT ?s WHERE { ?s ?p ?o }`)
	if len(res.Bindings) != 0 {
		t.Error("empty graph must yield no rows")
	}
	res = evalQ(t, g, `SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }`)
	if v, _ := res.Bindings[0]["n"].Int(); v != 0 {
		t.Errorf("count over empty graph = %v", res.Bindings)
	}
	res = evalQ(t, g, `ASK { ?s ?p ?o }`)
	if res.Bool {
		t.Error("ASK over empty graph must be false")
	}
}
