package sparql

import (
	"testing"

	"applab/internal/rdf"
)

// collisionGraph holds two subjects whose (?x, ?y) pairs collide under
// naive '|'-joined keys: ("a|", "b") and ("a", "|b") concatenate to the
// same string unless positions are length-prefixed.
func collisionGraph() *rdf.Graph {
	g := rdf.NewGraph()
	p1, p2 := rdf.NewIRI("http://ex.org/p1"), rdf.NewIRI("http://ex.org/p2")
	s1, s2 := rdf.NewIRI("http://ex.org/s1"), rdf.NewIRI("http://ex.org/s2")
	g.Add(rdf.NewTriple(s1, p1, rdf.NewLiteral("a|")))
	g.Add(rdf.NewTriple(s1, p2, rdf.NewLiteral("b")))
	g.Add(rdf.NewTriple(s2, p1, rdf.NewLiteral("a")))
	g.Add(rdf.NewTriple(s2, p2, rdf.NewLiteral("|b")))
	return g
}

func TestDistinctKeyNoPipeCollision(t *testing.T) {
	g := collisionGraph()
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT DISTINCT ?x ?y WHERE { ?s ex:p1 ?x ; ex:p2 ?y }`)
	if len(res.Bindings) != 2 {
		t.Fatalf("DISTINCT collapsed colliding rows: got %d rows %v", len(res.Bindings), res.Bindings)
	}
}

func TestGroupByKeyNoPipeCollision(t *testing.T) {
	g := collisionGraph()
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?x ?y (COUNT(*) AS ?n) WHERE { ?s ex:p1 ?x ; ex:p2 ?y } GROUP BY ?x ?y`)
	if len(res.Bindings) != 2 {
		t.Fatalf("GROUP BY merged colliding groups: got %d groups %v", len(res.Bindings), res.Bindings)
	}
	for _, b := range res.Bindings {
		if v, _ := b["n"].Int(); v != 1 {
			t.Errorf("group count = %v, want 1", b["n"])
		}
	}
}

func TestDistinctUnboundVsEmptyNoCollision(t *testing.T) {
	// An unbound position must not collide with any bound literal,
	// including the empty string.
	g := rdf.NewGraph()
	p1, p2 := rdf.NewIRI("http://ex.org/p1"), rdf.NewIRI("http://ex.org/p2")
	s1, s2 := rdf.NewIRI("http://ex.org/s1"), rdf.NewIRI("http://ex.org/s2")
	g.Add(rdf.NewTriple(s1, p1, rdf.NewLiteral("k")))
	g.Add(rdf.NewTriple(s1, p2, rdf.NewLiteral("")))
	g.Add(rdf.NewTriple(s2, p1, rdf.NewLiteral("k")))
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT DISTINCT ?x ?y WHERE { ?s ex:p1 ?x . OPTIONAL { ?s ex:p2 ?y } }`)
	if len(res.Bindings) != 2 {
		t.Fatalf("unbound vs empty collapsed: %v", res.Bindings)
	}
}
