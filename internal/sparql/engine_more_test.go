package sparql

import (
	"fmt"
	"testing"
	"testing/quick"

	"applab/internal/rdf"
)

func TestUnionThreeAlternatives(t *testing.T) {
	g := testGraph(t)
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?n WHERE {
  { ?p ex:name ?n . FILTER(?n = "Alice") }
  UNION { ?p ex:name ?n . FILTER(?n = "Bob") }
  UNION { ?p ex:name ?n . FILTER(?n = "Dave") }
}`)
	if len(res.Bindings) != 3 {
		t.Fatalf("rows = %v", res.Bindings)
	}
}

func TestNestedGroups(t *testing.T) {
	g := testGraph(t)
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?n WHERE {
  ?p a ex:Person .
  { ?p ex:name ?n . FILTER(?n != "Bob") }
}`)
	if len(res.Bindings) != 2 {
		t.Fatalf("rows = %v", res.Bindings)
	}
}

func TestOptionalChain(t *testing.T) {
	g := testGraph(t)
	// Two optionals; second depends on the first's binding.
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?n ?fn WHERE {
  ?p a ex:Person ; ex:name ?n .
  OPTIONAL { ?p ex:knows ?f . OPTIONAL { ?f ex:name ?fn } }
} ORDER BY ?n ?fn`)
	if len(res.Bindings) != 4 {
		t.Fatalf("rows = %v", res.Bindings)
	}
	// Alice's first friend (bob) must carry a name binding.
	found := false
	for _, b := range res.Bindings {
		if b["n"].Value == "Alice" {
			if fn, ok := b["fn"]; ok && fn.Value == "Bob" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("nested optional lost friend name: %v", res.Bindings)
	}
}

func TestConstructWithBlankTemplate(t *testing.T) {
	g := testGraph(t)
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
CONSTRUCT { ?p ex:profile _:b . _:b ex:profileName ?n }
WHERE { ?p a ex:Person ; ex:name ?n }`)
	if len(res.Graph) != 6 { // 2 triples per person
		t.Fatalf("graph = %v", res.Graph)
	}
	// Blank nodes must be distinct per solution.
	blanks := map[string]bool{}
	for _, tr := range res.Graph {
		if tr.O.IsBlank() {
			blanks[tr.O.Value] = true
		}
	}
	if len(blanks) != 3 {
		t.Errorf("distinct blanks = %d, want 3", len(blanks))
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	g := rdf.NewGraph()
	add := func(s string, grp int64, rank int64) {
		g.Add(rdf.NewTriple(rdf.NewIRI(s), rdf.NewIRI("http://g"), rdf.NewInteger(grp)))
		g.Add(rdf.NewTriple(rdf.NewIRI(s), rdf.NewIRI("http://r"), rdf.NewInteger(rank)))
	}
	add("a", 2, 1)
	add("b", 1, 2)
	add("c", 1, 1)
	add("d", 2, 0)
	res := evalQ(t, g, `SELECT ?s WHERE { ?s <http://g> ?g ; <http://r> ?r } ORDER BY ?g DESC(?r)`)
	want := []string{"b", "c", "a", "d"}
	for i, b := range res.Bindings {
		if b["s"].Value != want[i] {
			t.Fatalf("order = %v, want %v", res.Bindings, want)
		}
	}
}

func TestLimitZero(t *testing.T) {
	g := testGraph(t)
	res := evalQ(t, g, `SELECT ?s WHERE { ?s ?p ?o } LIMIT 0`)
	if len(res.Bindings) != 0 {
		t.Errorf("LIMIT 0 rows = %d", len(res.Bindings))
	}
}

func TestOffsetBeyondEnd(t *testing.T) {
	g := testGraph(t)
	res := evalQ(t, g, `SELECT ?s WHERE { ?s ?p ?o } OFFSET 100000`)
	if len(res.Bindings) != 0 {
		t.Errorf("huge OFFSET rows = %d", len(res.Bindings))
	}
}

func TestMinMaxOverDates(t *testing.T) {
	g := rdf.NewGraph()
	for i, d := range []string{"2018-03-01", "2018-01-01", "2018-12-01"} {
		g.Add(rdf.NewTriple(rdf.NewIRI(fmt.Sprintf("e%d", i)), rdf.NewIRI("http://when"),
			rdf.NewTypedLiteral(d, rdf.XSDDate)))
	}
	res := evalQ(t, g, `SELECT (MIN(?d) AS ?min) (MAX(?d) AS ?max) WHERE { ?e <http://when> ?d }`)
	b := res.Bindings[0]
	if b["min"].Value != "2018-01-01" || b["max"].Value != "2018-12-01" {
		t.Errorf("min/max = %v / %v", b["min"], b["max"])
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	g := testGraph(t)
	res := evalQ(t, g, `prefix ex: <http://ex.org/>
select distinct ?city where { ?p ex:city ?city } order by ?city limit 10`)
	if len(res.Bindings) != 2 || res.Bindings[0]["city"].Value != "Athens" {
		t.Fatalf("rows = %v", res.Bindings)
	}
}

func TestFilterPlacementWithinGroup(t *testing.T) {
	g := testGraph(t)
	// FILTER before the pattern that binds the variable still works at
	// group granularity in standard SPARQL; our engine applies elements
	// in order, so the idiomatic post-pattern placement is required.
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?n WHERE { ?p ex:age ?a . FILTER(?a > 26) ?p ex:name ?n }`)
	if len(res.Bindings) != 2 {
		t.Fatalf("rows = %v", res.Bindings)
	}
}

func TestComparisonTypeErrorsDropRows(t *testing.T) {
	g := testGraph(t)
	// ?p is an IRI: comparing it numerically is an expression error; all
	// rows drop but the query succeeds.
	res := evalQ(t, g, `SELECT ?p WHERE { ?p ?pred ?o . FILTER(?p > 5) }`)
	if len(res.Bindings) != 0 {
		t.Errorf("rows = %v", res.Bindings)
	}
}

func TestArithmetic(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.NewTriple(rdf.NewIRI("x"), rdf.NewIRI("http://v"), rdf.NewInteger(10)))
	res := evalQ(t, g, `SELECT (?v + 5 AS ?a) (?v - 3 AS ?b) (?v * 2 AS ?c) (?v / 4 AS ?d) (-?v AS ?e)
WHERE { ?x <http://v> ?v }`)
	b := res.Bindings[0]
	checks := map[string]float64{"a": 15, "b": 7, "c": 20, "d": 2.5, "e": -10}
	for k, want := range checks {
		if f, _ := b[k].Float(); f != want {
			t.Errorf("%s = %v, want %v", k, b[k], want)
		}
	}
	// Integer ops stay integers (except division).
	if b["a"].Datatype != rdf.XSDInteger {
		t.Errorf("a datatype = %s", b["a"].Datatype)
	}
	if b["d"].Datatype != rdf.XSDDouble {
		t.Errorf("d datatype = %s", b["d"].Datatype)
	}
	// Division by zero is an expression error (unbound alias).
	res = evalQ(t, g, `SELECT (?v / 0 AS ?bad) WHERE { ?x <http://v> ?v }`)
	if _, ok := res.Bindings[0]["bad"]; ok {
		t.Error("division by zero must leave the alias unbound")
	}
}

// Property: DISTINCT never returns more rows than the undistinct query,
// and LIMIT n never returns more than n.
func TestModifierProperty(t *testing.T) {
	g := testGraph(t)
	f := func(limit uint8) bool {
		n := int(limit % 10)
		q := fmt.Sprintf(`SELECT ?s WHERE { ?s ?p ?o } LIMIT %d`, n)
		res, err := Eval(g, q)
		if err != nil {
			return false
		}
		if len(res.Bindings) > n {
			return false
		}
		all, _ := Eval(g, `SELECT ?s WHERE { ?s ?p ?o }`)
		dis, _ := Eval(g, `SELECT DISTINCT ?s WHERE { ?s ?p ?o }`)
		return len(dis.Bindings) <= len(all.Bindings)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
