package sparql

import (
	"sync/atomic"

	"applab/internal/telemetry"
)

// The compiled engine is configured package-wide (like SetQueryWorkers),
// so its registry hookup is too: SetMetrics installs the registry all
// query evaluations report into. Every sparql metric name literal lives
// in this file, one call site each (enforced by the applab-lint
// telemetry checker), and everything no-ops while no registry is set.

var engineMetrics atomic.Pointer[telemetry.Registry]

// SetMetrics installs (or, with nil, removes) the registry the query
// engine reports planning and execution metrics into. Safe for
// concurrent use with running queries.
func SetMetrics(r *telemetry.Registry) {
	engineMetrics.Store(r)
}

func metricsReg() *telemetry.Registry {
	return engineMetrics.Load()
}

// notePatternsPlanned counts triple patterns lowered through the BGP
// planner.
func notePatternsPlanned(n int) {
	metricsReg().Counter("sparql_patterns_planned_total").Add(int64(n))
}

// noteJoinStrategy counts one scan operator execution by the join
// strategy its run chose: "cross" (cross-join materialization), "hash"
// (hash join) or "nested_loop" (per-row index probes).
func noteJoinStrategy(strategy string) {
	metricsReg().Counter("sparql_join_strategy_total", "strategy", strategy).Inc()
}

// noteRows counts solution rows produced by WHERE-clause evaluation
// (before projection/aggregation).
func noteRows(n int) {
	metricsReg().Counter("sparql_rows_total").Add(int64(n))
}

// noteSpatialJoin counts one spatial-join operator execution by the
// candidate-generation strategy its run chose: "inl" (R-tree index
// nested loop), "cells" (Hilbert cell-partitioned join) or "store"
// (SpatialSource index pushdown).
func noteSpatialJoin(strategy string) {
	metricsReg().Counter("spatial_join_total", "strategy", strategy).Inc()
}

// noteSpatialProbes counts probe-side rows driven through a spatial
// candidate index (rows whose geometry decoded; empty batches are free).
func noteSpatialProbes(n int) {
	if n == 0 {
		return
	}
	metricsReg().Counter("spatial_index_probes_total").Add(int64(n))
}

// noteExchange counts one exchange-operator pattern scan by how it was
// dispatched: "routed" (placement proved a single owning fragment) or
// "fanout" (broadcast to every fragment and merged).
func noteExchange(mode string) {
	metricsReg().Counter("sparql_exchange_scans_total", "mode", mode).Inc()
}

// noteParallelStage tracks worker-pool occupancy around one parallel
// stage: the chunk counter records fan-out volume, the busy gauge holds
// the number of in-flight chunk goroutines.
func noteParallelStage(chunks int) func() {
	reg := metricsReg()
	reg.Counter("sparql_parallel_chunks_total").Add(int64(chunks))
	busy := reg.Gauge("sparql_workers_busy")
	busy.Add(float64(chunks))
	return func() { busy.Add(-float64(chunks)) }
}
