package sparql

import (
	"testing"

	"applab/internal/rdf"
)

// FuzzParse drives the SPARQL parser with mutated query strings. The
// invariants are crash freedom and that anything the parser accepts can
// be evaluated by both engines without panicking — the compiler
// (slots/planner) must cope with every AST the parser can produce.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT ?s WHERE { ?s ?p ?o }`,
		`PREFIX ex: <http://ex.org/> SELECT * WHERE { ?s a ex:Person . ?s ex:name ?n }`,
		`SELECT ?s WHERE { ?s <p> ?o . FILTER(?o > 3 && BOUND(?s)) }`,
		`SELECT ?s ?n WHERE { ?s <p> ?o . OPTIONAL { ?s <name> ?n } }`,
		`SELECT ?s WHERE { { ?s <a> ?x } UNION { ?s <b> ?x } }`,
		`SELECT ?s WHERE { ?s <p> ?o . BIND(?o + 1 AS ?q) FILTER(?q != 0) }`,
		`SELECT ?s WHERE { VALUES ?s { <x> <y> } ?s <p> ?o }`,
		`SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?p`,
		`SELECT DISTINCT ?o WHERE { ?s ?p ?o } ORDER BY DESC(?o) LIMIT 3 OFFSET 1`,
		`ASK { ?s ?p "lit"@en }`,
		`CONSTRUCT { ?s <q> ?o } WHERE { ?s <p> ?o }`,
		`SELECT ?s WHERE { ?s <p> ?o . FILTER NOT EXISTS { ?s <q> ?o } }`,
		`SELECT ?s WHERE { ?s <p> "1"^^<http://www.w3.org/2001/XMLSchema#integer> }`,
		"SELECT ?s WHERE { ?s <p> ?o } \x00",
		`SELECT`,
		`{{{`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	g := rdf.NewGraph()
	p := rdf.NewIRI("p")
	q := rdf.NewIRI("q")
	for _, s := range []string{"x", "y", "z"} {
		g.Add(rdf.NewTriple(rdf.NewIRI(s), p, rdf.NewLiteral("v"+s)))
		g.Add(rdf.NewTriple(rdf.NewIRI(s), q, rdf.NewInteger(int64(len(s)))))
	}

	f.Fuzz(func(t *testing.T, query string) {
		parsed, err := Parse(query)
		if err != nil {
			return // rejection is fine; crashing is not
		}
		// Accepted queries must evaluate on both engines without
		// panicking. Results may legally differ in row order only.
		if _, err := parsed.Eval(g); err != nil {
			_ = err // evaluation errors (e.g. AVG over empty) are legal
		}
		if _, err := parsed.EvalSeed(g); err != nil {
			_ = err
		}
	})
}
