package sparql

import (
	"fmt"

	"applab/internal/rdf"
)

// The compiled engine runs solutions as flat []rdf.Term rows instead of
// map[string]rdf.Term bindings: the query compiler assigns every variable
// a slot in a per-query variable table, row extension is a single slice
// copy, and variable lookup is an array index. The zero rdf.Term marks an
// unbound slot — the same convention Source.Match already uses for
// wildcards, so a term that IsZero can never be produced by data.

// varTable assigns query variables to row slots.
type varTable struct {
	index map[string]int
	names []string
}

func newVarTable() *varTable {
	return &varTable{index: map[string]int{}}
}

// slot returns the slot for name, assigning the next free one on first
// use. All slots are assigned at compile time, before any row exists.
func (vt *varTable) slot(name string) int {
	if s, ok := vt.index[name]; ok {
		return s
	}
	s := len(vt.names)
	vt.index[name] = s
	vt.names = append(vt.names, name)
	return s
}

// lookup returns the slot for name without assigning one.
func (vt *varTable) lookup(name string) (int, bool) {
	s, ok := vt.index[name]
	return s, ok
}

func (vt *varTable) size() int { return len(vt.names) }

// row is one solution: term-per-slot, zero term = unbound.
type row []rdf.Term

// bound reports whether the slot carries a binding.
func (r row) bound(slot int) bool { return !r[slot].IsZero() }

// clone copies the row so it can be extended without mutating shared
// ancestors (rows fan out through UNION and OPTIONAL).
func (r row) clone() row {
	c := make(row, len(r))
	copy(c, r)
	return c
}

// asBinding converts a row back to the public map representation.
func (r row) asBinding(vt *varTable) Binding {
	b := make(Binding, len(r))
	for s, t := range r {
		if !t.IsZero() {
			b[vt.names[s]] = t
		}
	}
	return b
}

// rowsToBindings converts an executed solution set to map bindings for
// the (unchanged) projection / aggregation / ordering machinery.
func rowsToBindings(rows []row, vt *varTable) []Binding {
	out := make([]Binding, len(rows))
	for i, r := range rows {
		out[i] = r.asBinding(vt)
	}
	return out
}

// compiledExpr is a slot-resolved expression evaluator: variable lookups
// are array indexes fixed at compile time, and the operator semantics are
// shared with the tree-walking Expr.Eval via applyBinary/applyNeg/
// applyCall, so both paths agree by construction.
type compiledExpr func(r row) (rdf.Term, error)

// compileExpr lowers an expression tree onto the slot table. Expression
// types the compiler does not know (external Expr implementations) fall
// back to building a map binding per evaluation — correct, just slower.
func compileExpr(e Expr, vt *varTable) compiledExpr {
	switch x := e.(type) {
	case VarExpr:
		s := vt.slot(x.Name)
		return func(r row) (rdf.Term, error) {
			if t := r[s]; !t.IsZero() {
				return t, nil
			}
			return rdf.Term{}, errUnbound
		}
	case ConstExpr:
		t := x.Term
		return func(row) (rdf.Term, error) { return t, nil }
	case UnaryExpr:
		sub := compileExpr(x.X, vt)
		switch x.Op {
		case "!":
			return func(r row) (rdf.Term, error) {
				v, err := sub(r)
				if err != nil {
					return rdf.Term{}, err
				}
				bv, err := TermEBV(v)
				if err != nil {
					return rdf.Term{}, err
				}
				return rdf.NewBool(!bv), nil
			}
		case "-":
			return func(r row) (rdf.Term, error) {
				v, err := sub(r)
				if err != nil {
					return rdf.Term{}, err
				}
				return applyNeg(v)
			}
		}
		op := x.Op
		return func(row) (rdf.Term, error) {
			return rdf.Term{}, fmt.Errorf("sparql: unknown unary operator %q", op)
		}
	case BinaryExpr:
		l := compileExpr(x.L, vt)
		r := compileExpr(x.R, vt)
		switch x.Op {
		case "||":
			return func(rw row) (rdf.Term, error) {
				lv, lerr := compiledEBV(l, rw)
				if lerr == nil && lv {
					return rdf.NewBool(true), nil
				}
				rv, rerr := compiledEBV(r, rw)
				if rerr == nil && rv {
					return rdf.NewBool(true), nil
				}
				if lerr != nil {
					return rdf.Term{}, lerr
				}
				if rerr != nil {
					return rdf.Term{}, rerr
				}
				return rdf.NewBool(false), nil
			}
		case "&&":
			return func(rw row) (rdf.Term, error) {
				lv, lerr := compiledEBV(l, rw)
				if lerr == nil && !lv {
					return rdf.NewBool(false), nil
				}
				rv, rerr := compiledEBV(r, rw)
				if rerr == nil && !rv {
					return rdf.NewBool(false), nil
				}
				if lerr != nil {
					return rdf.Term{}, lerr
				}
				if rerr != nil {
					return rdf.Term{}, rerr
				}
				return rdf.NewBool(true), nil
			}
		}
		op := x.Op
		return func(rw row) (rdf.Term, error) {
			lv, err := l(rw)
			if err != nil {
				return rdf.Term{}, err
			}
			rv, err := r(rw)
			if err != nil {
				return rdf.Term{}, err
			}
			return applyBinary(op, lv, rv)
		}
	case CallExpr:
		// BOUND inspects the raw variable, not its evaluation.
		if x.IRI == "BOUND" {
			if len(x.Args) != 1 {
				return func(row) (rdf.Term, error) {
					return rdf.Term{}, fmt.Errorf("sparql: BOUND takes one variable")
				}
			}
			v, ok := x.Args[0].(VarExpr)
			if !ok {
				return func(row) (rdf.Term, error) {
					return rdf.Term{}, fmt.Errorf("sparql: BOUND argument must be a variable")
				}
			}
			s := vt.slot(v.Name)
			return func(r row) (rdf.Term, error) {
				return rdf.NewBool(r.bound(s)), nil
			}
		}
		args := make([]compiledExpr, len(x.Args))
		for i, a := range x.Args {
			args[i] = compileExpr(a, vt)
		}
		iri := x.IRI
		return func(r row) (rdf.Term, error) {
			vals := make([]rdf.Term, len(args))
			for i, a := range args {
				v, err := a(r)
				if err != nil {
					return rdf.Term{}, err
				}
				vals[i] = v
			}
			return applyCall(iri, vals)
		}
	default:
		// Unknown Expr implementation: bridge through a map binding.
		return func(r row) (rdf.Term, error) {
			return e.Eval(r.asBinding(vt))
		}
	}
}

// compiledEBV is ebv over a compiled expression.
func compiledEBV(ce compiledExpr, r row) (bool, error) {
	v, err := ce(r)
	if err != nil {
		return false, err
	}
	return TermEBV(v)
}
