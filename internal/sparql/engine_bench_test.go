package sparql

import (
	"testing"
)

// BenchmarkEngine_* compares the compiled slot engine against the seed
// map evaluator on the workloads the tentpole targets: multi-pattern
// BGP joins over a 5k-subject graph (25k triples). The acceptance bar
// is >=3x fewer allocs/op and >=2x lower ns/op on the join benchmark;
// cmd/applab-bench -json records the numbers into BENCH_PR3.json.

const benchSubjects = 5000

var benchJoinQuery = `PREFIX ex: <http://ex.org/>
SELECT ?s ?n ?a WHERE { ?s a ex:Person . ?s ex:city "Paris" . ?s ex:name ?n . ?s ex:age ?a }`

var benchStarQuery = `PREFIX ex: <http://ex.org/>
SELECT ?s ?o ?n WHERE { ?s ex:city "Athens" . ?s ex:knows ?o . ?o ex:name ?n }`

var benchFilterQuery = `PREFIX ex: <http://ex.org/>
SELECT ?s ?b WHERE { ?s ex:age ?a . FILTER(?a > 40) BIND(?a + 1 AS ?b) }`

func benchEval(b *testing.B, query string, workers int, seed bool) {
	b.Helper()
	g := equivGraph(benchSubjects)
	if workers == 0 {
		workers = QueryWorkers()
	}
	q, err := Parse(query)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var res *Results
		var err error
		if seed {
			res, err = q.EvalSeed(g)
		} else {
			res, err = q.eval(g, workers, ParallelThreshold())
		}
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Bindings) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkEngine_BGPJoinSeed(b *testing.B)     { benchEval(b, benchJoinQuery, 1, true) }
func BenchmarkEngine_BGPJoinCompiled(b *testing.B) { benchEval(b, benchJoinQuery, 1, false) }
func BenchmarkEngine_BGPJoinParallel(b *testing.B) { benchEval(b, benchJoinQuery, 0, false) }

func BenchmarkEngine_StarJoinSeed(b *testing.B)     { benchEval(b, benchStarQuery, 1, true) }
func BenchmarkEngine_StarJoinCompiled(b *testing.B) { benchEval(b, benchStarQuery, 1, false) }

func BenchmarkEngine_FilterBindSeed(b *testing.B)     { benchEval(b, benchFilterQuery, 1, true) }
func BenchmarkEngine_FilterBindCompiled(b *testing.B) { benchEval(b, benchFilterQuery, 1, false) }
