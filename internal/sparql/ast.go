// Package sparql implements the SPARQL subset used by the App Lab stack:
// SELECT / ASK / CONSTRUCT queries with basic graph patterns, FILTER,
// OPTIONAL, UNION, DISTINCT, ORDER BY, LIMIT/OFFSET, GROUP BY with the
// standard aggregates, a full expression language, and an extension-function
// registry through which the geosparql package contributes the geof:*
// functions of the paper's Listing 1.
//
// The engine evaluates against any Source (the rdf.Graph, the Strabon store,
// or an OBDA virtual graph).
package sparql

import (
	"applab/internal/rdf"
)

// QueryType discriminates the supported query forms.
type QueryType uint8

// Query forms.
const (
	QuerySelect QueryType = iota
	QueryAsk
	QueryConstruct
)

// Query is a parsed SPARQL query.
type Query struct {
	Type     QueryType
	Distinct bool
	// Projection holds the selected expressions; empty means '*'.
	Projection []Projection
	// GroupBy holds grouping variable names (without '?').
	GroupBy []string
	// Template holds the CONSTRUCT template patterns.
	Template []TriplePattern
	Where    *Group
	OrderBy  []OrderKey
	Limit    int // -1 when absent
	Offset   int
	Prefixes *rdf.Prefixes
}

// Projection is one SELECT item: a plain variable or an expression with an
// alias (including aggregates).
type Projection struct {
	Var  string // result column name (without '?')
	Expr Expr   // nil for plain variables
	Agg  *Aggregate
}

// Aggregate describes an aggregate call in the projection.
type Aggregate struct {
	Func     string // COUNT, SUM, AVG, MIN, MAX
	Distinct bool
	Arg      Expr // nil for COUNT(*)
}

// OrderKey is one ORDER BY criterion.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// PatternTerm is a triple-pattern position: either a variable or a constant
// term.
type PatternTerm struct {
	Var  string // non-empty when this position is a variable
	Term rdf.Term
}

// IsVar reports whether the position is a variable.
func (p PatternTerm) IsVar() bool { return p.Var != "" }

// Vart returns a variable pattern term.
func Vart(name string) PatternTerm { return PatternTerm{Var: name} }

// Const returns a constant pattern term.
func Const(t rdf.Term) PatternTerm { return PatternTerm{Term: t} }

// TriplePattern is a triple with variables allowed in any position.
type TriplePattern struct {
	S, P, O PatternTerm
}

// Group is a SPARQL group graph pattern: an ordered list of elements.
type Group struct {
	Elements []Element
}

// Element is one member of a group pattern.
type Element interface{ isElement() }

// BGP is a basic graph pattern (a run of triple patterns joined together).
type BGP struct {
	Patterns []TriplePattern
}

// Filter is a FILTER constraint.
type Filter struct {
	Expr Expr
}

// Optional is an OPTIONAL sub-pattern (left outer join).
type Optional struct {
	Group *Group
}

// Union is a UNION of two or more alternatives.
type Union struct {
	Alternatives []*Group
}

// SubGroup is a nested group graph pattern.
type SubGroup struct {
	Group *Group
}

// Exists is a FILTER EXISTS / FILTER NOT EXISTS constraint.
type Exists struct {
	Negated bool
	Group   *Group
}

func (Exists) isElement() {}

// Bind is a BIND(expr AS ?var) assignment.
type Bind struct {
	Var  string
	Expr Expr
}

// Values is an inline VALUES block: variables plus rows of terms
// (zero terms mean UNDEF).
type Values struct {
	Vars []string
	Rows [][]rdf.Term
}

func (BGP) isElement()      {}
func (Filter) isElement()   {}
func (Optional) isElement() {}
func (Union) isElement()    {}
func (SubGroup) isElement() {}
func (Bind) isElement()     {}
func (Values) isElement()   {}

// Vars returns the variables mentioned in the pattern, in first-seen order.
func (g *Group) Vars() []string {
	seen := map[string]bool{}
	var out []string
	add := func(v string) {
		if v != "" && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	var walk func(g *Group)
	walk = func(g *Group) {
		for _, el := range g.Elements {
			switch e := el.(type) {
			case BGP:
				for _, tp := range e.Patterns {
					add(tp.S.Var)
					add(tp.P.Var)
					add(tp.O.Var)
				}
			case Optional:
				walk(e.Group)
			case Union:
				for _, alt := range e.Alternatives {
					walk(alt)
				}
			case SubGroup:
				walk(e.Group)
			}
		}
	}
	walk(g)
	return out
}
