package sparql

import (
	"strings"
	"testing"

	"applab/internal/rdf"
)

func TestExprStringRendering(t *testing.T) {
	q := MustParse(`SELECT ?x WHERE {
	  ?x <http://p> ?y .
	  FILTER(!(?y > 3 + 1) || REGEX(STR(?x), "a"))
	}`)
	var f Filter
	for _, el := range q.Where.Elements {
		if ff, ok := el.(Filter); ok {
			f = ff
		}
	}
	s := f.Expr.String()
	for _, want := range []string{"?y", ">", "+", "REGEX", "STR", "||", "!"} {
		if !strings.Contains(s, want) {
			t.Errorf("expression String %q missing %q", s, want)
		}
	}
	// ConstExpr string
	c := ConstExpr{Term: rdf.NewInteger(5)}
	if c.String() == "" {
		t.Error("const expr String empty")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse must panic on bad input")
		}
	}()
	MustParse("NOT A QUERY")
}

func TestTermEBVCases(t *testing.T) {
	cases := []struct {
		term    rdf.Term
		want    bool
		wantErr bool
	}{
		{rdf.NewBool(true), true, false},
		{rdf.NewBool(false), false, false},
		{rdf.NewInteger(0), false, false},
		{rdf.NewInteger(7), true, false},
		{rdf.NewDouble(0.0), false, false},
		{rdf.NewLiteral(""), false, false},
		{rdf.NewLiteral("x"), true, false},
		{rdf.NewLangLiteral("", "en"), false, false},
		{rdf.NewLangLiteral("y", "en"), true, false},
		{rdf.NewIRI("http://x"), false, true},
		{rdf.NewTypedLiteral("2018-01-01", rdf.XSDDate), false, true},
	}
	for _, c := range cases {
		got, err := TermEBV(c.term)
		if c.wantErr {
			if err == nil {
				t.Errorf("TermEBV(%v): expected error", c.term)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("TermEBV(%v) = %v, %v; want %v", c.term, got, err, c.want)
		}
	}
}

func TestLexerStringEscapes(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.NewTriple(rdf.NewIRI("s"), rdf.NewIRI("p"),
		rdf.NewLiteral("line1\nline2\t\"q\"\\s")))
	res := evalQ(t, g, `SELECT ?o WHERE { ?s ?p ?o . FILTER(?o = "line1\nline2\t\"q\"\\s") }`)
	if len(res.Bindings) != 1 {
		t.Fatalf("escaped string filter rows = %v", res.Bindings)
	}
	// Unknown escape passes through verbatim.
	res = evalQ(t, g, `SELECT ?o WHERE { ?s ?p ?o . FILTER(STRSTARTS(?o, "li\ne1")) }`)
	_ = res // parse path exercised; semantic result irrelevant
	if _, err := Parse(`SELECT ?x WHERE { ?x ?p "unterminated }`); err == nil {
		t.Error("unterminated string must error")
	}
}

func TestLexerNumberForms(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.NewTriple(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewDouble(1500)))
	for _, q := range []string{
		`SELECT ?o WHERE { ?s ?p ?o . FILTER(?o = 1.5e3) }`,
		`SELECT ?o WHERE { ?s ?p ?o . FILTER(?o = 1500.0) }`,
		`SELECT ?o WHERE { ?s ?p ?o . FILTER(?o = 15e2) }`,
		`SELECT ?o WHERE { ?s ?p ?o . FILTER(?o > -1) }`,
		`SELECT ?o WHERE { ?s ?p ?o . FILTER(?o = 3e+3 / 2) }`,
	} {
		res := evalQ(t, g, q)
		if len(res.Bindings) != 1 {
			t.Errorf("%s: rows = %v", q, res.Bindings)
		}
	}
}

func TestBuiltinFunctionsCoverage(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.NewTriple(rdf.NewIRI("s"), rdf.NewIRI("p"),
		rdf.NewTypedLiteral("2018-06-15T12:00:00Z", rdf.XSDDateTime)))
	res := evalQ(t, g, `SELECT (YEAR(?o) AS ?y) (MONTH(?o) AS ?m) WHERE { ?s ?p ?o }`)
	b := res.Bindings[0]
	if y, _ := b["y"].Int(); y != 2018 {
		t.Errorf("YEAR = %v", b["y"])
	}
	if m, _ := b["m"].Int(); m != 6 {
		t.Errorf("MONTH = %v", b["m"])
	}
	g2 := rdf.NewGraph()
	g2.Add(rdf.NewTriple(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewInteger(-42)))
	res = evalQ(t, g2, `SELECT (ABS(?o) AS ?a) (STRLEN(STR(?o)) AS ?l) WHERE { ?s ?p ?o }`)
	b = res.Bindings[0]
	if a, _ := b["a"].Int(); a != 42 {
		t.Errorf("ABS = %v", b["a"])
	}
	if l, _ := b["l"].Int(); l != 3 {
		t.Errorf("STRLEN = %v", b["l"])
	}
	// Type predicates
	res = evalQ(t, g2, `SELECT ?s WHERE { ?s ?p ?o .
	  FILTER(ISIRI(?s) && ISLITERAL(?o) && ISNUMERIC(?o) && !ISBLANK(?s)) }`)
	if len(res.Bindings) != 1 {
		t.Errorf("type predicates rows = %v", res.Bindings)
	}
	// DATATYPE and LANG
	g3 := rdf.NewGraph()
	g3.Add(rdf.NewTriple(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewLangLiteral("x", "fr")))
	res = evalQ(t, g3, `SELECT ?o WHERE { ?s ?p ?o . FILTER(LANG(?o) = "fr") }`)
	if len(res.Bindings) != 1 {
		t.Errorf("LANG rows = %v", res.Bindings)
	}
	res = evalQ(t, g2, `SELECT ?o WHERE { ?s ?p ?o .
	  FILTER(DATATYPE(?o) = <http://www.w3.org/2001/XMLSchema#integer>) }`)
	if len(res.Bindings) != 1 {
		t.Errorf("DATATYPE rows = %v", res.Bindings)
	}
	// STRENDS + UCASE
	g4 := rdf.NewGraph()
	g4.Add(rdf.NewTriple(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewLiteral("hello")))
	res = evalQ(t, g4, `SELECT ?o WHERE { ?s ?p ?o . FILTER(STRENDS(UCASE(?o), "LLO")) }`)
	if len(res.Bindings) != 1 {
		t.Errorf("STRENDS rows = %v", res.Bindings)
	}
}

func TestRegexCaseInsensitiveFlag(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.NewTriple(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewLiteral("Paris")))
	res := evalQ(t, g, `SELECT ?o WHERE { ?s ?p ?o . FILTER(REGEX(?o, "^paris$", "i")) }`)
	if len(res.Bindings) != 1 {
		t.Errorf("regex i-flag rows = %v", res.Bindings)
	}
	// Bad regex is an expression error, not a query failure.
	res = evalQ(t, g, `SELECT ?o WHERE { ?s ?p ?o . FILTER(REGEX(?o, "([")) }`)
	if len(res.Bindings) != 0 {
		t.Errorf("bad regex rows = %v", res.Bindings)
	}
}
