package sparql

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"applab/internal/admission"
	"applab/internal/rdf"
)

// Source is the data interface the evaluator queries. rdf.Graph, the
// Strabon store and OBDA virtual graphs all implement it.
type Source interface {
	// Match returns all triples matching the pattern; zero terms are
	// wildcards.
	Match(s, p, o rdf.Term) []rdf.Triple
}

// ErrorSource is an optional extension of Source for backends whose
// Match can fail (remote endpoints, OBDA virtual graphs over live
// OPeNDAP calls). Match's signature has no error channel, so plain
// sources swallow failures into empty results; callers that care —
// the federation engine's per-member error reports, resilience tests —
// type-assert for ErrorSource and use MatchErr instead.
type ErrorSource interface {
	Source
	// MatchErr is Match with the upstream error surfaced.
	MatchErr(s, p, o rdf.Term) ([]rdf.Triple, error)
}

// ContextSource is an optional extension of Source for backends that
// honor cancellation and query budgets mid-scan (remote endpoints,
// federations, OBDA virtual graphs). EvalContext routes pattern scans
// through MatchContext when the evaluation carries a deadline or
// budget. The engine aborts the query only on cancellation/budget
// errors (admission.Aborted); other upstream failures keep the plain
// Source semantics and read as empty results.
type ContextSource interface {
	Source
	// MatchContext is Match under a context.
	MatchContext(ctx context.Context, s, p, o rdf.Term) ([]rdf.Triple, error)
}

// Results is the outcome of query evaluation.
type Results struct {
	// Vars is the projection in order.
	Vars []string
	// Bindings holds one row per solution.
	Bindings []Binding
	// Bool is the ASK answer.
	Bool bool
	// Graph holds CONSTRUCT output triples.
	Graph []rdf.Triple
}

// Eval parses and evaluates a query string against src.
func Eval(src Source, query string) (*Results, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return q.Eval(src)
}

// Eval evaluates the query against src with the compiled slot engine:
// the WHERE clause is lowered onto a per-query variable table and run as
// flat []rdf.Term rows, BGPs are reordered by estimated selectivity when
// src provides statistics (StatsSource), patterns may be joined by hash
// join or cross-join materialization, and large solution sets are
// partitioned across a worker pool (see SetQueryWorkers). Results are
// identical to the original evaluator up to the order of un-ORDER-BY'd
// rows; EvalSeed retains the original path.
func (q *Query) Eval(src Source) (*Results, error) {
	return q.EvalContext(context.Background(), src)
}

// EvalContext is Eval with cooperative cancellation and resource
// governance: plan operators poll ctx and the attached
// *admission.Budget (admission.WithBudget) every budgetCheckInterval
// rows, pattern scans go through MatchContext when src supports it,
// and an over-budget query returns the structured *admission.BudgetError
// instead of hanging. A background context with no budget evaluates on
// the exact unlimited path Eval always used.
func (q *Query) EvalContext(ctx context.Context, src Source) (*Results, error) {
	return q.evalCtx(ctx, src, QueryWorkers(), ParallelThreshold())
}

func (q *Query) eval(src Source, workers, threshold int) (*Results, error) {
	return q.evalCtx(context.Background(), src, workers, threshold)
}

func (q *Query) evalCtx(ctx context.Context, src Source, workers, threshold int) (*Results, error) {
	if _, remote := src.(ErrorSource); remote {
		// Remote-backed sources keep sequential, single-flight Match
		// calls: error reporting and federation deadlines depend on it.
		workers = 1
	}
	budget := admission.FromContext(ctx)
	ec := &execCtx{
		src: src, ctx: ctx, budget: budget,
		limited: budget != nil || ctx.Done() != nil,
		workers: workers, threshold: threshold,
	}
	if ec.limited {
		if cs, ok := src.(ContextSource); ok {
			ec.csrc = cs
		}
	}
	if ex, ok := src.(ExchangeSource); ok {
		ec.ex = ex
	}
	prog := compileQuery(q, src)
	rows, err := runOps(ec, prog.ops, []row{make(row, prog.vt.size())})
	if err != nil {
		return nil, err
	}
	// Final checkpoint: a small result set may finish between ticks, but
	// a violated budget or dead context must still surface (this is what
	// bounds "terminates within one check interval").
	if err := ec.checkpoint(0); err != nil {
		return nil, err
	}
	noteRows(len(rows))
	sols := rowsToBindings(rows, prog.vt)
	var res *Results
	switch q.Type {
	case QueryAsk:
		res = &Results{Bool: len(sols) > 0}
	case QueryConstruct:
		res, err = q.construct(sols)
	default:
		res, err = q.project(sols)
	}
	if err != nil {
		return nil, err
	}
	// MaxRows bounds what leaves the engine: final bindings or
	// constructed triples, after projection/LIMIT.
	out := len(res.Bindings)
	if len(res.Graph) > out {
		out = len(res.Graph)
	}
	if err := budget.CheckRows(out); err != nil {
		return nil, err
	}
	return res, nil
}

func (q *Query) construct(sols []Binding) (*Results, error) {
	g := rdf.NewGraph()
	bseq := 0
	for _, b := range sols {
		bseq++
		ok := true
		var ts []rdf.Triple
		for _, tp := range q.Template {
			s, okS := resolveTemplate(tp.S, b, bseq)
			p, okP := resolveTemplate(tp.P, b, bseq)
			o, okO := resolveTemplate(tp.O, b, bseq)
			if !okS || !okP || !okO {
				ok = false
				break
			}
			ts = append(ts, rdf.NewTriple(s, p, o))
		}
		if ok {
			g.AddAll(ts)
		}
	}
	return &Results{Graph: g.Triples()}, nil
}

func resolveTemplate(pt PatternTerm, b Binding, seq int) (rdf.Term, bool) {
	if pt.IsVar() {
		t, ok := b[pt.Var]
		return t, ok
	}
	if pt.Term.IsBlank() {
		// Blank nodes in templates are scoped per solution.
		return rdf.NewBlank(fmt.Sprintf("%s_%d", pt.Term.Value, seq)), true
	}
	return pt.Term, true
}

func (q *Query) project(sols []Binding) (*Results, error) {
	res := &Results{}
	// Determine projected variables.
	if len(q.Projection) == 0 {
		res.Vars = q.Where.Vars()
	} else {
		for _, pr := range q.Projection {
			res.Vars = append(res.Vars, pr.Var)
		}
	}

	hasAgg := false
	for _, pr := range q.Projection {
		if pr.Agg != nil {
			hasAgg = true
		}
	}
	if hasAgg || len(q.GroupBy) > 0 {
		var err error
		sols, err = q.aggregate(sols)
		if err != nil {
			return nil, err
		}
	} else if len(q.Projection) > 0 {
		// Evaluate expression projections into the binding (ORDER BY may
		// still reference non-projected variables, so keep the originals
		// until after sorting).
		out := make([]Binding, 0, len(sols))
		for _, b := range sols {
			nb := b
			for _, pr := range q.Projection {
				if pr.Expr != nil {
					if v, err := pr.Expr.Eval(b); err == nil {
						nb = nb.clone()
						nb[pr.Var] = v
					}
				}
			}
			out = append(out, nb)
		}
		sols = out
	}

	if len(q.OrderBy) > 0 {
		sortSolutions(sols, q.OrderBy)
	}
	if q.Distinct {
		sols = distinct(sols, res.Vars)
	}
	// OFFSET / LIMIT
	if q.Offset > 0 {
		if q.Offset >= len(sols) {
			sols = nil
		} else {
			sols = sols[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(sols) {
		sols = sols[:q.Limit]
	}
	// Restrict bindings to projected vars. A binding that carries only
	// projected vars is kept as-is rather than rebuilt.
	if len(q.Projection) > 0 {
		restricted := make([]Binding, len(sols))
		for i, b := range sols {
			present := 0
			for _, v := range res.Vars {
				if _, ok := b[v]; ok {
					present++
				}
			}
			if present == len(b) {
				restricted[i] = b
				continue
			}
			nb := make(Binding, len(res.Vars))
			for _, v := range res.Vars {
				if t, ok := b[v]; ok {
					nb[v] = t
				}
			}
			restricted[i] = nb
		}
		sols = restricted
	}
	res.Bindings = sols
	return res, nil
}

// aggregate implements GROUP BY + aggregates over the solution set.
func (q *Query) aggregate(sols []Binding) ([]Binding, error) {
	type groupState struct {
		key  Binding
		rows []Binding
	}
	groups := map[string]*groupState{}
	var order []string
	for _, b := range sols {
		var sb strings.Builder
		key := Binding{}
		for _, v := range q.GroupBy {
			t, ok := b[v]
			if ok {
				key[v] = t
			}
			appendSolutionKey(&sb, t, ok)
		}
		k := sb.String()
		g, ok := groups[k]
		if !ok {
			g = &groupState{key: key}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, b)
	}
	if len(groups) == 0 && len(q.GroupBy) == 0 {
		// Aggregates over an empty solution set yield a single group.
		groups[""] = &groupState{key: Binding{}}
		order = append(order, "")
	}
	var out []Binding
	for _, k := range order {
		g := groups[k]
		row := Binding{}
		for v, t := range g.key {
			row[v] = t
		}
		for _, pr := range q.Projection {
			switch {
			case pr.Agg != nil:
				v, err := evalAggregate(pr.Agg, g.rows)
				if err != nil {
					return nil, err
				}
				row[pr.Var] = v
			case pr.Expr != nil:
				if len(g.rows) > 0 {
					if v, err := pr.Expr.Eval(g.rows[0]); err == nil {
						row[pr.Var] = v
					}
				}
			default:
				// Plain variable must be a grouping variable.
				if t, ok := g.key[pr.Var]; ok {
					row[pr.Var] = t
				} else if len(g.rows) > 0 {
					if t, ok := g.rows[0][pr.Var]; ok {
						row[pr.Var] = t
					}
				}
			}
		}
		out = append(out, row)
	}
	return out, nil
}

func evalAggregate(agg *Aggregate, rows []Binding) (rdf.Term, error) {
	var vals []rdf.Term
	for _, b := range rows {
		if agg.Arg == nil { // COUNT(*)
			vals = append(vals, rdf.NewInteger(1))
			continue
		}
		v, err := agg.Arg.Eval(b)
		if err != nil {
			continue // unbound rows are skipped per SPARQL semantics
		}
		vals = append(vals, v)
	}
	if agg.Distinct {
		seen := map[string]bool{}
		var dd []rdf.Term
		for _, v := range vals {
			if !seen[v.Key()] {
				seen[v.Key()] = true
				dd = append(dd, v)
			}
		}
		vals = dd
	}
	switch agg.Func {
	case "COUNT":
		return rdf.NewInteger(int64(len(vals))), nil
	case "SUM", "AVG":
		sum := 0.0
		n := 0
		for _, v := range vals {
			if f, ok := v.Float(); ok {
				sum += f
				n++
			}
		}
		if agg.Func == "SUM" {
			return rdf.NewDouble(sum), nil
		}
		if n == 0 {
			return rdf.Term{}, fmt.Errorf("sparql: AVG over empty group")
		}
		return rdf.NewDouble(sum / float64(n)), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return rdf.Term{}, fmt.Errorf("sparql: %s over empty group", agg.Func)
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := compareTerms(v, best)
			if err != nil {
				continue
			}
			if (agg.Func == "MIN" && c < 0) || (agg.Func == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return rdf.Term{}, fmt.Errorf("sparql: unknown aggregate %q", agg.Func)
}

func sortSolutions(sols []Binding, keys []OrderKey) {
	sort.SliceStable(sols, func(i, j int) bool {
		for _, k := range keys {
			vi, ei := k.Expr.Eval(sols[i])
			vj, ej := k.Expr.Eval(sols[j])
			if ei != nil && ej != nil {
				continue
			}
			if ei != nil {
				return !k.Desc // unbound sorts first ascending
			}
			if ej != nil {
				return k.Desc
			}
			c, err := compareTerms(vi, vj)
			if err != nil {
				c = strings.Compare(vi.Key(), vj.Key())
			}
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

func distinct(sols []Binding, vars []string) []Binding {
	seen := map[string]bool{}
	var out []Binding
	for _, b := range sols {
		var sb strings.Builder
		for _, v := range vars {
			t, ok := b[v]
			appendSolutionKey(&sb, t, ok)
		}
		k := sb.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, b)
		}
	}
	return out
}

// appendSolutionKey writes one solution position into a composite group
// key. Bound positions are length-prefixed so no literal content — '|',
// digits, NULs — can make two different solutions collide; unbound
// positions write a marker that no length-prefixed entry can produce.
func appendSolutionKey(sb *strings.Builder, t rdf.Term, bound bool) {
	if !bound {
		sb.WriteString("u;")
		return
	}
	k := t.Key()
	sb.WriteString(strconv.Itoa(len(k)))
	sb.WriteByte(':')
	sb.WriteString(k)
}
