package sparql

import (
	"fmt"
	"sort"
	"strings"

	"applab/internal/rdf"
)

// Source is the data interface the evaluator queries. rdf.Graph, the
// Strabon store and OBDA virtual graphs all implement it.
type Source interface {
	// Match returns all triples matching the pattern; zero terms are
	// wildcards.
	Match(s, p, o rdf.Term) []rdf.Triple
}

// ErrorSource is an optional extension of Source for backends whose
// Match can fail (remote endpoints, OBDA virtual graphs over live
// OPeNDAP calls). Match's signature has no error channel, so plain
// sources swallow failures into empty results; callers that care —
// the federation engine's per-member error reports, resilience tests —
// type-assert for ErrorSource and use MatchErr instead.
type ErrorSource interface {
	Source
	// MatchErr is Match with the upstream error surfaced.
	MatchErr(s, p, o rdf.Term) ([]rdf.Triple, error)
}

// Results is the outcome of query evaluation.
type Results struct {
	// Vars is the projection in order.
	Vars []string
	// Bindings holds one row per solution.
	Bindings []Binding
	// Bool is the ASK answer.
	Bool bool
	// Graph holds CONSTRUCT output triples.
	Graph []rdf.Triple
}

// Eval parses and evaluates a query string against src.
func Eval(src Source, query string) (*Results, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return q.Eval(src)
}

// Eval evaluates the query against src.
func (q *Query) Eval(src Source) (*Results, error) {
	sols := evalGroup(src, q.Where, []Binding{{}})
	switch q.Type {
	case QueryAsk:
		return &Results{Bool: len(sols) > 0}, nil
	case QueryConstruct:
		return q.construct(sols)
	}
	return q.project(sols)
}

func (q *Query) construct(sols []Binding) (*Results, error) {
	g := rdf.NewGraph()
	bseq := 0
	for _, b := range sols {
		bseq++
		ok := true
		var ts []rdf.Triple
		for _, tp := range q.Template {
			s, okS := resolveTemplate(tp.S, b, bseq)
			p, okP := resolveTemplate(tp.P, b, bseq)
			o, okO := resolveTemplate(tp.O, b, bseq)
			if !okS || !okP || !okO {
				ok = false
				break
			}
			ts = append(ts, rdf.NewTriple(s, p, o))
		}
		if ok {
			g.AddAll(ts)
		}
	}
	return &Results{Graph: g.Triples()}, nil
}

func resolveTemplate(pt PatternTerm, b Binding, seq int) (rdf.Term, bool) {
	if pt.IsVar() {
		t, ok := b[pt.Var]
		return t, ok
	}
	if pt.Term.IsBlank() {
		// Blank nodes in templates are scoped per solution.
		return rdf.NewBlank(fmt.Sprintf("%s_%d", pt.Term.Value, seq)), true
	}
	return pt.Term, true
}

func (q *Query) project(sols []Binding) (*Results, error) {
	res := &Results{}
	// Determine projected variables.
	if len(q.Projection) == 0 {
		res.Vars = q.Where.Vars()
	} else {
		for _, pr := range q.Projection {
			res.Vars = append(res.Vars, pr.Var)
		}
	}

	hasAgg := false
	for _, pr := range q.Projection {
		if pr.Agg != nil {
			hasAgg = true
		}
	}
	if hasAgg || len(q.GroupBy) > 0 {
		var err error
		sols, err = q.aggregate(sols)
		if err != nil {
			return nil, err
		}
	} else if len(q.Projection) > 0 {
		// Evaluate expression projections into the binding (ORDER BY may
		// still reference non-projected variables, so keep the originals
		// until after sorting).
		out := make([]Binding, 0, len(sols))
		for _, b := range sols {
			nb := b
			for _, pr := range q.Projection {
				if pr.Expr != nil {
					if v, err := pr.Expr.Eval(b); err == nil {
						nb = nb.clone()
						nb[pr.Var] = v
					}
				}
			}
			out = append(out, nb)
		}
		sols = out
	}

	if len(q.OrderBy) > 0 {
		sortSolutions(sols, q.OrderBy)
	}
	if q.Distinct {
		sols = distinct(sols, res.Vars)
	}
	// OFFSET / LIMIT
	if q.Offset > 0 {
		if q.Offset >= len(sols) {
			sols = nil
		} else {
			sols = sols[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(sols) {
		sols = sols[:q.Limit]
	}
	// Restrict bindings to projected vars.
	if len(q.Projection) > 0 {
		restricted := make([]Binding, len(sols))
		for i, b := range sols {
			nb := make(Binding, len(res.Vars))
			for _, v := range res.Vars {
				if t, ok := b[v]; ok {
					nb[v] = t
				}
			}
			restricted[i] = nb
		}
		sols = restricted
	}
	res.Bindings = sols
	return res, nil
}

// aggregate implements GROUP BY + aggregates over the solution set.
func (q *Query) aggregate(sols []Binding) ([]Binding, error) {
	type groupState struct {
		key  Binding
		rows []Binding
	}
	groups := map[string]*groupState{}
	var order []string
	for _, b := range sols {
		var sb strings.Builder
		key := Binding{}
		for _, v := range q.GroupBy {
			if t, ok := b[v]; ok {
				sb.WriteString(t.Key())
				key[v] = t
			}
			sb.WriteByte('|')
		}
		k := sb.String()
		g, ok := groups[k]
		if !ok {
			g = &groupState{key: key}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, b)
	}
	if len(groups) == 0 && len(q.GroupBy) == 0 {
		// Aggregates over an empty solution set yield a single group.
		groups[""] = &groupState{key: Binding{}}
		order = append(order, "")
	}
	var out []Binding
	for _, k := range order {
		g := groups[k]
		row := Binding{}
		for v, t := range g.key {
			row[v] = t
		}
		for _, pr := range q.Projection {
			switch {
			case pr.Agg != nil:
				v, err := evalAggregate(pr.Agg, g.rows)
				if err != nil {
					return nil, err
				}
				row[pr.Var] = v
			case pr.Expr != nil:
				if len(g.rows) > 0 {
					if v, err := pr.Expr.Eval(g.rows[0]); err == nil {
						row[pr.Var] = v
					}
				}
			default:
				// Plain variable must be a grouping variable.
				if t, ok := g.key[pr.Var]; ok {
					row[pr.Var] = t
				} else if len(g.rows) > 0 {
					if t, ok := g.rows[0][pr.Var]; ok {
						row[pr.Var] = t
					}
				}
			}
		}
		out = append(out, row)
	}
	return out, nil
}

func evalAggregate(agg *Aggregate, rows []Binding) (rdf.Term, error) {
	var vals []rdf.Term
	for _, b := range rows {
		if agg.Arg == nil { // COUNT(*)
			vals = append(vals, rdf.NewInteger(1))
			continue
		}
		v, err := agg.Arg.Eval(b)
		if err != nil {
			continue // unbound rows are skipped per SPARQL semantics
		}
		vals = append(vals, v)
	}
	if agg.Distinct {
		seen := map[string]bool{}
		var dd []rdf.Term
		for _, v := range vals {
			if !seen[v.Key()] {
				seen[v.Key()] = true
				dd = append(dd, v)
			}
		}
		vals = dd
	}
	switch agg.Func {
	case "COUNT":
		return rdf.NewInteger(int64(len(vals))), nil
	case "SUM", "AVG":
		sum := 0.0
		n := 0
		for _, v := range vals {
			if f, ok := v.Float(); ok {
				sum += f
				n++
			}
		}
		if agg.Func == "SUM" {
			return rdf.NewDouble(sum), nil
		}
		if n == 0 {
			return rdf.Term{}, fmt.Errorf("sparql: AVG over empty group")
		}
		return rdf.NewDouble(sum / float64(n)), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return rdf.Term{}, fmt.Errorf("sparql: %s over empty group", agg.Func)
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := compareTerms(v, best)
			if err != nil {
				continue
			}
			if (agg.Func == "MIN" && c < 0) || (agg.Func == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return rdf.Term{}, fmt.Errorf("sparql: unknown aggregate %q", agg.Func)
}

func sortSolutions(sols []Binding, keys []OrderKey) {
	sort.SliceStable(sols, func(i, j int) bool {
		for _, k := range keys {
			vi, ei := k.Expr.Eval(sols[i])
			vj, ej := k.Expr.Eval(sols[j])
			if ei != nil && ej != nil {
				continue
			}
			if ei != nil {
				return !k.Desc // unbound sorts first ascending
			}
			if ej != nil {
				return k.Desc
			}
			c, err := compareTerms(vi, vj)
			if err != nil {
				c = strings.Compare(vi.Key(), vj.Key())
			}
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

func distinct(sols []Binding, vars []string) []Binding {
	seen := map[string]bool{}
	var out []Binding
	for _, b := range sols {
		var sb strings.Builder
		for _, v := range vars {
			if t, ok := b[v]; ok {
				sb.WriteString(t.Key())
			}
			sb.WriteByte('|')
		}
		k := sb.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, b)
		}
	}
	return out
}

// evalGroup evaluates a group graph pattern, extending each input binding.
func evalGroup(src Source, g *Group, input []Binding) []Binding {
	cur := input
	for _, el := range g.Elements {
		switch e := el.(type) {
		case BGP:
			for _, tp := range e.Patterns {
				cur = evalPattern(src, tp, cur)
				if len(cur) == 0 {
					return nil
				}
			}
		case Filter:
			var out []Binding
			for _, b := range cur {
				if v, err := ebv(e.Expr, b); err == nil && v {
					out = append(out, b)
				}
			}
			cur = out
		case Optional:
			var out []Binding
			for _, b := range cur {
				ext := evalGroup(src, e.Group, []Binding{b})
				if len(ext) == 0 {
					out = append(out, b)
				} else {
					out = append(out, ext...)
				}
			}
			cur = out
		case Union:
			var out []Binding
			for _, alt := range e.Alternatives {
				out = append(out, evalGroup(src, alt, cur)...)
			}
			cur = out
		case SubGroup:
			cur = evalGroup(src, e.Group, cur)
		case Exists:
			var out []Binding
			for _, b := range cur {
				matched := len(evalGroup(src, e.Group, []Binding{b})) > 0
				if matched != e.Negated {
					out = append(out, b)
				}
			}
			cur = out
		case Bind:
			var out []Binding
			for _, b := range cur {
				if v, err := e.Expr.Eval(b); err == nil {
					if old, exists := b[e.Var]; exists {
						// Re-binding must agree (join semantics).
						if !old.Equal(v) {
							continue
						}
						out = append(out, b)
						continue
					}
					nb := b.clone()
					nb[e.Var] = v
					out = append(out, nb)
				} else {
					out = append(out, b) // expression error leaves var unbound
				}
			}
			cur = out
		case Values:
			var out []Binding
			for _, b := range cur {
				for _, row := range e.Rows {
					nb := b
					cloned := false
					ok := true
					for i, vn := range e.Vars {
						val := row[i]
						if old, exists := nb[vn]; exists {
							if !old.Equal(val) {
								ok = false
								break
							}
							continue
						}
						if !cloned {
							nb = nb.clone()
							cloned = true
						}
						nb[vn] = val
					}
					if ok {
						out = append(out, nb)
					}
				}
			}
			cur = out
		}
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

// evalPattern extends every binding with matches of a triple pattern.
func evalPattern(src Source, tp TriplePattern, input []Binding) []Binding {
	var out []Binding
	for _, b := range input {
		s := resolvePos(tp.S, b)
		p := resolvePos(tp.P, b)
		o := resolvePos(tp.O, b)
		for _, t := range src.Match(s, p, o) {
			nb := b
			cloned := false
			bindVar := func(name string, val rdf.Term) bool {
				if name == "" {
					return true
				}
				if old, ok := nb[name]; ok {
					return old.Equal(val)
				}
				if !cloned {
					nb = nb.clone()
					cloned = true
				}
				nb[name] = val
				return true
			}
			if !bindVar(tp.S.Var, t.S) || !bindVar(tp.P.Var, t.P) || !bindVar(tp.O.Var, t.O) {
				continue
			}
			out = append(out, nb)
		}
	}
	return out
}

// resolvePos returns the constant to match at a pattern position: the bound
// value of a variable, the constant term, or the zero-term wildcard.
func resolvePos(pt PatternTerm, b Binding) rdf.Term {
	if pt.IsVar() {
		if t, ok := b[pt.Var]; ok {
			return t
		}
		return rdf.Term{}
	}
	return pt.Term
}
