package sparql

import (
	"applab/internal/rdf"
)

// This file keeps the original binding-at-a-time map evaluator. The
// compiled slot engine (plan.go, join.go, slots.go) replaced it behind
// Eval; the seed path stays as the differential-testing oracle (see
// engine_equiv_test.go) and as the baseline for the BenchmarkEngine_*
// comparisons recorded in BENCH_PR3.json.

// EvalSeed parses and evaluates a query with the original map-based
// evaluator: no plan reordering, no hash joins, no parallelism.
func EvalSeed(src Source, query string) (*Results, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return q.EvalSeed(src)
}

// EvalSeed evaluates the query with the original map-based evaluator.
func (q *Query) EvalSeed(src Source) (*Results, error) {
	sols := seedEvalGroup(src, q.Where, []Binding{{}})
	switch q.Type {
	case QueryAsk:
		return &Results{Bool: len(sols) > 0}, nil
	case QueryConstruct:
		return q.construct(sols)
	}
	return q.project(sols)
}

// seedEvalGroup evaluates a group graph pattern, extending each input binding.
func seedEvalGroup(src Source, g *Group, input []Binding) []Binding {
	cur := input
	for _, el := range g.Elements {
		switch e := el.(type) {
		case BGP:
			for _, tp := range e.Patterns {
				cur = seedEvalPattern(src, tp, cur)
				if len(cur) == 0 {
					return nil
				}
			}
		case Filter:
			var out []Binding
			for _, b := range cur {
				if v, err := ebv(e.Expr, b); err == nil && v {
					out = append(out, b)
				}
			}
			cur = out
		case Optional:
			var out []Binding
			for _, b := range cur {
				ext := seedEvalGroup(src, e.Group, []Binding{b})
				if len(ext) == 0 {
					out = append(out, b)
				} else {
					out = append(out, ext...)
				}
			}
			cur = out
		case Union:
			var out []Binding
			for _, alt := range e.Alternatives {
				out = append(out, seedEvalGroup(src, alt, cur)...)
			}
			cur = out
		case SubGroup:
			cur = seedEvalGroup(src, e.Group, cur)
		case Exists:
			var out []Binding
			for _, b := range cur {
				matched := len(seedEvalGroup(src, e.Group, []Binding{b})) > 0
				if matched != e.Negated {
					out = append(out, b)
				}
			}
			cur = out
		case Bind:
			var out []Binding
			for _, b := range cur {
				if v, err := e.Expr.Eval(b); err == nil {
					if old, exists := b[e.Var]; exists {
						// Re-binding must agree (join semantics).
						if !old.Equal(v) {
							continue
						}
						out = append(out, b)
						continue
					}
					nb := b.clone()
					nb[e.Var] = v
					out = append(out, nb)
				} else {
					out = append(out, b) // expression error leaves var unbound
				}
			}
			cur = out
		case Values:
			var out []Binding
			for _, b := range cur {
				for _, row := range e.Rows {
					nb := b
					cloned := false
					ok := true
					for i, vn := range e.Vars {
						val := row[i]
						if old, exists := nb[vn]; exists {
							if !old.Equal(val) {
								ok = false
								break
							}
							continue
						}
						if !cloned {
							nb = nb.clone()
							cloned = true
						}
						nb[vn] = val
					}
					if ok {
						out = append(out, nb)
					}
				}
			}
			cur = out
		}
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

// seedEvalPattern extends every binding with matches of a triple pattern.
func seedEvalPattern(src Source, tp TriplePattern, input []Binding) []Binding {
	var out []Binding
	for _, b := range input {
		s := seedResolvePos(tp.S, b)
		p := seedResolvePos(tp.P, b)
		o := seedResolvePos(tp.O, b)
		for _, t := range src.Match(s, p, o) {
			nb := b
			cloned := false
			bindVar := func(name string, val rdf.Term) bool {
				if name == "" {
					return true
				}
				if old, ok := nb[name]; ok {
					return old.Equal(val)
				}
				if !cloned {
					nb = nb.clone()
					cloned = true
				}
				nb[name] = val
				return true
			}
			if !bindVar(tp.S.Var, t.S) || !bindVar(tp.P.Var, t.P) || !bindVar(tp.O.Var, t.O) {
				continue
			}
			out = append(out, nb)
		}
	}
	return out
}

// seedResolvePos returns the constant to match at a pattern position: the
// bound value of a variable, the constant term, or the zero-term wildcard.
func seedResolvePos(pt PatternTerm, b Binding) rdf.Term {
	if pt.IsVar() {
		if t, ok := b[pt.Var]; ok {
			return t
		}
		return rdf.Term{}
	}
	return pt.Term
}
