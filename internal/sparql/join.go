package sparql

import (
	"strconv"
	"strings"

	"applab/internal/rdf"
)

// scanOp joins the solution set with one triple pattern. Three
// strategies, chosen per pattern at compile/run time:
//
//   - indexed nested loop (the seed strategy): one Match call per row
//     with the row's bindings substituted into the pattern. Default.
//   - cross-join materialization: when no pattern position can be bound
//     by incoming rows, every per-row Match would be the same call;
//     issue it once and extend each row from the shared result.
//   - hash join: when the pattern shares definitely-bound variables
//     with the rows and the estimated build side is small relative to
//     the probe side, Match once with constants only, hash the result
//     on the shared positions, and probe per row.
//
// All strategies extend rows through the same extend method, so they
// produce identical rows in identical per-row order; only the number of
// Source.Match calls differs.
type scanOp struct {
	sSlot, pSlot, oSlot int      // slot (>= 0) or -1 with the constant below
	s, p, o             rdf.Term // constants; zero when the position is a slot

	keys    []int // slots definitely bound by earlier ops (dedup'd)
	canHash bool  // no pattern position is only maybe-bound
	est     int   // constants-only cardinality estimate, < 0 unknown
}

// hashJoinMinRows is the probe-side size below which per-row index
// lookups beat building a hash table.
const hashJoinMinRows = 32

// newScanOp lowers one triple pattern using the compiler's current
// variable-state knowledge.
func (c *compiler) newScanOp(tp TriplePattern) *scanOp {
	sc := &scanOp{sSlot: -1, pSlot: -1, oSlot: -1, est: -1, canHash: true}
	keySeen := map[int]bool{}
	lower := func(pt PatternTerm, slot *int, constant *rdf.Term) {
		if !pt.IsVar() {
			*constant = pt.Term
			return
		}
		s := c.vt.slot(pt.Var)
		*slot = s
		switch c.states[pt.Var] {
		case varDef:
			if !keySeen[s] {
				keySeen[s] = true
				sc.keys = append(sc.keys, s)
			}
		case varMaybe:
			sc.canHash = false
		}
	}
	lower(tp.S, &sc.sSlot, &sc.s)
	lower(tp.P, &sc.pSlot, &sc.p)
	lower(tp.O, &sc.oSlot, &sc.o)
	if c.stats != nil {
		sc.est = c.stats.Cardinality(sc.s, sc.p, sc.o)
	}
	return sc
}

// rowArena block-allocates result rows so a scan producing thousands of
// rows costs a handful of slice allocations instead of one per row.
// Arena rows follow the same discipline as cloned rows: extended
// copy-on-write, never mutated in place. Arenas are per goroutine
// (created inside each chunk closure), so they need no locking.
type rowArena struct {
	buf   []rdf.Term
	block int // rows per block, grows geometrically
}

// arenaMaxBlockRows caps arena block growth so small result sets never
// pay for large blocks.
const arenaMaxBlockRows = 512

// clone copies src into arena-backed storage.
func (a *rowArena) clone(src row) row {
	n := len(src)
	if len(a.buf) < n {
		switch {
		case a.block == 0:
			a.block = 8
		case a.block < arenaMaxBlockRows:
			a.block *= 4
			if a.block > arenaMaxBlockRows {
				a.block = arenaMaxBlockRows
			}
		}
		a.buf = make([]rdf.Term, n*a.block)
	}
	dst := a.buf[:n:n]
	a.buf = a.buf[n:]
	copy(dst, src)
	return dst
}

// extend binds the pattern's variable positions from a matched triple,
// copying the row (into the arena) on the first new binding. Repeated
// variables and already-bound slots are checked for agreement. Written
// straight-line so a no-new-binding extension is allocation free.
func (sc *scanOp) extend(r row, t rdf.Triple, ar *rowArena) (row, bool) {
	nr := r
	cloned := false
	if sc.sSlot >= 0 {
		if cur := nr[sc.sSlot]; !cur.IsZero() {
			if !cur.Equal(t.S) {
				return nil, false
			}
		} else {
			nr = ar.clone(nr)
			cloned = true
			nr[sc.sSlot] = t.S
		}
	}
	if sc.pSlot >= 0 {
		if cur := nr[sc.pSlot]; !cur.IsZero() {
			if !cur.Equal(t.P) {
				return nil, false
			}
		} else {
			if !cloned {
				nr = ar.clone(nr)
				cloned = true
			}
			nr[sc.pSlot] = t.P
		}
	}
	if sc.oSlot >= 0 {
		if cur := nr[sc.oSlot]; !cur.IsZero() {
			if !cur.Equal(t.O) {
				return nil, false
			}
		} else {
			if !cloned {
				nr = ar.clone(nr)
			}
			nr[sc.oSlot] = t.O
		}
	}
	return nr, true
}

// resolve substitutes a row's binding into a pattern position (zero =
// wildcard for unbound slots, like the seed evaluator).
func resolve(slot int, constant rdf.Term, r row) rdf.Term {
	if slot < 0 {
		return constant
	}
	return r[slot]
}

func (sc *scanOp) run(ec *execCtx, in []row) ([]row, error) {
	if sc.canHash && len(sc.keys) == 0 {
		// No position can be bound by incoming rows: one Match serves
		// every row (cross-join materialization).
		noteJoinStrategy("cross")
		matches, err := ec.match(sc.s, sc.p, sc.o)
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			return nil, nil
		}
		return chunked(ec, in, func(rows []row) ([]row, error) {
			var out []row
			var ar rowArena
			n := 0
			for _, r := range rows {
				if err := ec.tickN(&n, len(matches)); err != nil {
					return nil, err
				}
				for _, t := range matches {
					if nr, ok := sc.extend(r, t, &ar); ok {
						out = append(out, nr)
					}
				}
			}
			return out, nil
		})
	}
	// Hash join only pays when the build side (constants-only match) is
	// no larger than the probe side: per-row index probes are cheap, so
	// materializing and keying a big build set loses outright.
	if sc.canHash && len(in) >= hashJoinMinRows && sc.est >= 0 && sc.est <= len(in) {
		noteJoinStrategy("hash")
		return sc.hashJoin(ec, in)
	}
	noteJoinStrategy("nested_loop")
	return chunked(ec, in, func(rows []row) ([]row, error) {
		var out []row
		var ar rowArena
		n := 0
		for _, r := range rows {
			if err := ec.tick(&n); err != nil {
				return nil, err
			}
			s := resolve(sc.sSlot, sc.s, r)
			p := resolve(sc.pSlot, sc.p, r)
			o := resolve(sc.oSlot, sc.o, r)
			matches, err := ec.match(s, p, o)
			if err != nil {
				return nil, err
			}
			if err := ec.tickN(&n, len(matches)); err != nil {
				return nil, err
			}
			for _, t := range matches {
				if nr, ok := sc.extend(r, t, &ar); ok {
					out = append(out, nr)
				}
			}
		}
		return out, nil
	})
}

// hashJoin matches the pattern once with constants only, hashes the
// result on the shared (definitely-bound) slots, and probes per row.
// Buckets keep Match order, so each row's extensions come out in the
// same order the nested-loop strategy would produce them; extend
// re-checks every bound position, so the key only has to be sound, not
// exact.
func (sc *scanOp) hashJoin(ec *execCtx, in []row) ([]row, error) {
	build, err := ec.match(sc.s, sc.p, sc.o)
	if err != nil {
		return nil, err
	}
	if len(build) == 0 {
		return nil, nil
	}
	table := make(map[string][]rdf.Triple, len(build))
	var sb strings.Builder
	tripleKey := func(t rdf.Triple) string {
		sb.Reset()
		for _, slot := range sc.keys {
			appendSolutionKey(&sb, sc.tripleAt(t, slot), true)
		}
		return sb.String()
	}
	n := 0
	for _, t := range build {
		if err := ec.tick(&n); err != nil {
			return nil, err
		}
		k := tripleKey(t)
		table[k] = append(table[k], t)
	}
	return chunked(ec, in, func(rows []row) ([]row, error) {
		var out []row
		var ar rowArena
		var kb []byte
		n := 0
		for _, r := range rows {
			if err := ec.tick(&n); err != nil {
				return nil, err
			}
			kb = kb[:0]
			for _, slot := range sc.keys {
				k := r[slot].Key()
				kb = strconv.AppendInt(kb, int64(len(k)), 10)
				kb = append(kb, ':')
				kb = append(kb, k...)
			}
			// map lookup on string(kb) does not allocate.
			bucket := table[string(kb)]
			if err := ec.tickN(&n, len(bucket)); err != nil {
				return nil, err
			}
			for _, t := range bucket {
				if nr, ok := sc.extend(r, t, &ar); ok {
					out = append(out, nr)
				}
			}
		}
		return out, nil
	})
}

// tripleAt returns the triple's term at the first pattern position
// carrying the given slot.
func (sc *scanOp) tripleAt(t rdf.Triple, slot int) rdf.Term {
	switch {
	case sc.sSlot == slot:
		return t.S
	case sc.pSlot == slot:
		return t.P
	default:
		return t.O
	}
}
