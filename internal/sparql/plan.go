package sparql

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"applab/internal/admission"
	"applab/internal/rdf"
)

// StatsSource is an optional extension of Source for backends that can
// estimate pattern cardinalities. The BGP planner uses it to reorder
// triple patterns most-selective-first and to size hash-join builds.
// rdf.Graph, strabon.Store, strabon.ShardedStore, obda.VirtualGraph and
// federation.Federation implement it; sources without statistics are
// evaluated in textual pattern order, exactly like the seed engine.
// A disk-backed strabon.Store answers from the per-term index footers
// of its segment files, so the planner gets statistics without the
// store materializing anything.
type StatsSource interface {
	Source
	// Cardinality estimates how many triples match the pattern (zero
	// terms are wildcards). Negative means unknown.
	Cardinality(s, p, o rdf.Term) int
}

// ---- parallel-execution configuration ----

// Parallel execution partitions large intermediate solution sets across
// a bounded worker pool. It is disabled for ErrorSource-backed sources
// (remote endpoints, OBDA virtual graphs, federations) so error
// semantics and federation deadlines are untouched, and partition
// results are concatenated in partition order, so query results are
// identical for any worker count.
var (
	cfgQueryWorkers      atomic.Int32 // 0 = GOMAXPROCS
	cfgParallelThreshold atomic.Int32 // 0 = defaultParallelThreshold
)

// defaultParallelThreshold is the minimum intermediate-solution count
// before a pipeline stage fans out to the worker pool.
const defaultParallelThreshold = 256

// SetQueryWorkers sets the evaluator worker-pool size. Values above
// GOMAXPROCS are capped at evaluation time; n <= 0 restores the default
// (GOMAXPROCS). Safe for concurrent use.
func SetQueryWorkers(n int) {
	if n < 0 {
		n = 0
	}
	cfgQueryWorkers.Store(int32(n))
}

// QueryWorkers reports the effective worker-pool size.
func QueryWorkers() int {
	maxProcs := runtime.GOMAXPROCS(0)
	if v := int(cfgQueryWorkers.Load()); v > 0 {
		if v > maxProcs {
			return maxProcs
		}
		return v
	}
	return maxProcs
}

// SetParallelThreshold sets the minimum intermediate-solution count for
// parallel stages; n <= 0 restores the default. Safe for concurrent use.
func SetParallelThreshold(n int) {
	if n < 0 {
		n = 0
	}
	cfgParallelThreshold.Store(int32(n))
}

// ParallelThreshold reports the effective parallel threshold.
func ParallelThreshold() int {
	if v := int(cfgParallelThreshold.Load()); v > 0 {
		return v
	}
	return defaultParallelThreshold
}

// ---- execution ----

// execCtx carries the per-evaluation runtime state.
type execCtx struct {
	src       Source
	csrc      ContextSource  // non-nil only when limited and src supports it
	ex        ExchangeSource // non-nil for partitioned sources: routes scans through the exchange operator
	ctx       context.Context
	budget    *admission.Budget
	limited   bool // ctx can be cancelled or a budget is attached
	workers   int
	threshold int
}

// budgetCheckInterval is how many rows an operator loop may process
// between cancellation/budget checkpoints. Small enough that an
// over-budget or cancelled query stops within one interval, large
// enough that the per-row cost is one local increment (the
// applab-bench budget mode holds the Engine_BGPJoin overhead < 5%).
const budgetCheckInterval = 64

// tick is the per-row checkpoint every operator loop calls (the
// applab-lint ctxcheck rule enforces it). It counts locally and, every
// budgetCheckInterval rows, charges the interval to the intermediate
// budget and polls cancellation. Free when the evaluation is unlimited.
func (ec *execCtx) tick(n *int) error {
	if !ec.limited {
		return nil
	}
	*n++
	if *n < budgetCheckInterval {
		return nil
	}
	rows := *n
	*n = 0
	return ec.checkpoint(rows)
}

// tickN charges k rows in one step — a probe's whole match bucket —
// so hot inner loops pay one checkpoint per bucket instead of one
// function call per element.
func (ec *execCtx) tickN(n *int, k int) error {
	if !ec.limited || k == 0 {
		return nil
	}
	*n += k
	if *n < budgetCheckInterval {
		return nil
	}
	rows := *n
	*n = 0
	return ec.checkpoint(rows)
}

// checkpoint charges rows intermediate rows and polls the budget and
// the context. A deadline expiry is reported as the structured budget
// error rather than the bare context error.
func (ec *execCtx) checkpoint(rows int) error {
	if !ec.limited {
		return nil
	}
	if rows > 0 {
		if err := ec.budget.AddIntermediate(rows); err != nil {
			return err
		}
	} else if err := ec.budget.Err(); err != nil {
		return err
	}
	if err := ec.ctx.Err(); err != nil {
		if berr := ec.budget.Err(); berr != nil {
			return berr
		}
		return err
	}
	return nil
}

// match issues one pattern scan, through the context-aware path when
// the source supports it. Only cancellation and budget violations abort
// the query; ordinary upstream errors keep the seed Source semantics
// (they read as empty results — federation partial answers and the
// error-report machinery depend on that).
func (ec *execCtx) match(s, p, o rdf.Term) ([]rdf.Triple, error) {
	if ec.ex != nil {
		return ec.exchangeMatch(s, p, o)
	}
	if ec.csrc != nil {
		ts, err := ec.csrc.MatchContext(ec.ctx, s, p, o)
		if err != nil {
			if admission.Aborted(err) {
				if berr := ec.budget.Err(); berr != nil {
					return nil, berr
				}
				return nil, err
			}
			return nil, nil
		}
		return ts, nil
	}
	return ec.src.Match(s, p, o), nil
}

// op is one step of a compiled query plan.
type op interface {
	run(ec *execCtx, in []row) ([]row, error)
}

// runOps threads a solution set through a plan, short-circuiting on
// empty intermediates like the seed evaluator.
func runOps(ec *execCtx, ops []op, in []row) ([]row, error) {
	cur := in
	for _, o := range ops {
		if len(cur) == 0 {
			return nil, nil
		}
		var err error
		cur, err = o.run(ec, cur)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// chunked applies fn to in, fanning out to the worker pool when the
// solution set is large enough. Chunk outputs are concatenated in
// partition order: the result is identical to fn(in) row-for-row.
// fn must not mutate its input rows (rows are shared across UNION
// branches and with the caller). On error the lowest-indexed failing
// chunk wins, and budgets record only their first violation, so an
// aborted stage reports the same error for any worker count.
func chunked(ec *execCtx, in []row, fn func([]row) ([]row, error)) ([]row, error) {
	if ec.workers <= 1 || len(in) < ec.threshold {
		return fn(in)
	}
	w := ec.workers
	if w > len(in) {
		w = len(in)
	}
	size := (len(in) + w - 1) / w
	nchunks := (len(in) + size - 1) / size
	done := noteParallelStage(nchunks)
	defer done()
	outs := make([][]row, nchunks)
	errs := make([]error, nchunks)
	var wg sync.WaitGroup
	for i := 0; i < nchunks; i++ {
		lo := i * size
		hi := lo + size
		if hi > len(in) {
			hi = len(in)
		}
		wg.Add(1)
		go func(i int, part []row) {
			defer wg.Done()
			outs[i], errs[i] = fn(part)
		}(i, in[lo:hi])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Post-barrier aggregation ticks like any operator loop: the chunk
	// workers polled per row, but a cancelled query should not pay for
	// the concat either.
	total := 0
	var agg int
	for _, o := range outs {
		if err := ec.tick(&agg); err != nil {
			return nil, err
		}
		total += len(o)
	}
	out := make([]row, 0, total)
	for _, o := range outs {
		if err := ec.tick(&agg); err != nil {
			return nil, err
		}
		out = append(out, o...)
	}
	return out, nil
}

// filterOp drops rows whose condition is false or errors.
type filterOp struct {
	cond compiledExpr
}

func (f *filterOp) run(ec *execCtx, in []row) ([]row, error) {
	return chunked(ec, in, func(rows []row) ([]row, error) {
		var out []row
		n := 0
		for _, r := range rows {
			if err := ec.tick(&n); err != nil {
				return nil, err
			}
			if v, err := compiledEBV(f.cond, r); err == nil && v {
				out = append(out, r)
			}
		}
		return out, nil
	})
}

// bindOp implements BIND(expr AS ?var): a fresh binding on success,
// join-style agreement when the variable is already bound, and the row
// kept unchanged (variable unbound) on expression error.
type bindOp struct {
	slot int
	expr compiledExpr
}

func (b *bindOp) run(ec *execCtx, in []row) ([]row, error) {
	return chunked(ec, in, func(rows []row) ([]row, error) {
		var out []row
		n := 0
		for _, r := range rows {
			if err := ec.tick(&n); err != nil {
				return nil, err
			}
			v, err := b.expr(r)
			if err != nil {
				out = append(out, r)
				continue
			}
			if old := r[b.slot]; !old.IsZero() {
				if old.Equal(v) {
					out = append(out, r)
				}
				continue
			}
			nr := r.clone()
			nr[b.slot] = v
			out = append(out, nr)
		}
		return out, nil
	})
}

// valuesOp joins the solution set with an inline VALUES table.
type valuesOp struct {
	slots []int
	rows  [][]rdf.Term
}

func (v *valuesOp) run(ec *execCtx, in []row) ([]row, error) {
	return chunked(ec, in, func(rows []row) ([]row, error) {
		var out []row
		n := 0
		for _, r := range rows {
			if err := ec.tick(&n); err != nil {
				return nil, err
			}
			for _, vr := range v.rows {
				nr := r
				cloned := false
				ok := true
				for i, slot := range v.slots {
					val := vr[i]
					if val.IsZero() {
						continue // UNDEF joins with anything
					}
					if old := nr[slot]; !old.IsZero() {
						if !old.Equal(val) {
							ok = false
							break
						}
						continue
					}
					if !cloned {
						nr = nr.clone()
						cloned = true
					}
					nr[slot] = val
				}
				if ok {
					out = append(out, nr)
				}
			}
		}
		return out, nil
	})
}

// optionalOp is a left outer join against a sub-plan.
type optionalOp struct {
	body []op
}

func (o *optionalOp) run(ec *execCtx, in []row) ([]row, error) {
	return chunked(ec, in, func(rows []row) ([]row, error) {
		var out []row
		n := 0
		for _, r := range rows {
			if err := ec.tick(&n); err != nil {
				return nil, err
			}
			ext, err := runOps(ec, o.body, []row{r})
			if err != nil {
				return nil, err
			}
			if len(ext) == 0 {
				out = append(out, r)
			} else {
				out = append(out, ext...)
			}
		}
		return out, nil
	})
}

// unionOp concatenates the alternatives' extensions of the input set.
type unionOp struct {
	alts [][]op
}

func (u *unionOp) run(ec *execCtx, in []row) ([]row, error) {
	var out []row
	for _, alt := range u.alts {
		ext, err := runOps(ec, alt, in)
		if err != nil {
			return nil, err
		}
		out = append(out, ext...)
	}
	return out, nil
}

// existsOp keeps rows for which the sub-plan has (no) solutions.
type existsOp struct {
	body    []op
	negated bool
}

func (e *existsOp) run(ec *execCtx, in []row) ([]row, error) {
	return chunked(ec, in, func(rows []row) ([]row, error) {
		var out []row
		n := 0
		for _, r := range rows {
			if err := ec.tick(&n); err != nil {
				return nil, err
			}
			ext, err := runOps(ec, e.body, []row{r})
			if err != nil {
				return nil, err
			}
			if (len(ext) > 0) != e.negated {
				out = append(out, r)
			}
		}
		return out, nil
	})
}

// ---- compilation ----

// varState tracks what the compiler knows about a variable at a point in
// the plan: never bound yet, bound on some control-flow paths only, or
// bound in every surviving row.
type varState uint8

const (
	varUnseen varState = iota
	varMaybe
	varDef
)

// program is a compiled query body.
type program struct {
	ops []op
	vt  *varTable
}

type compiler struct {
	vt     *varTable
	stats  StatsSource
	states map[string]varState
}

// compileQuery lowers the WHERE clause onto a slot table and a plan.
// Compilation is per-evaluation: the planner consults the source's
// statistics as they are now.
func compileQuery(q *Query, src Source) *program {
	c := &compiler{vt: newVarTable(), states: map[string]varState{}}
	if st, ok := src.(StatsSource); ok {
		c.stats = st
	}
	ops := c.compileGroup(q.Where)
	return &program{ops: ops, vt: c.vt}
}

func (c *compiler) cloneStates() map[string]varState {
	out := make(map[string]varState, len(c.states))
	for k, v := range c.states {
		out[k] = v
	}
	return out
}

// weaken downgrades every variable newly touched since base to "maybe":
// used after OPTIONAL and EXISTS bodies whose bindings are conditional
// or discarded.
func (c *compiler) weaken(base map[string]varState) {
	for k, v := range c.states {
		if base[k] != varDef && v == varDef {
			c.states[k] = varMaybe
		}
	}
}

func (c *compiler) compileGroup(g *Group) []op {
	var ops []op
	els := g.Elements
	for i := 0; i < len(els); i++ {
		switch e := els[i].(type) {
		case BGP:
			// Coalesce adjacent BGP elements into one join unit: the
			// parser emits one BGP per triples block, but consecutive
			// blocks are a single join the planner may reorder.
			pats := append([]TriplePattern(nil), e.Patterns...)
			for i+1 < len(els) {
				nb, ok := els[i+1].(BGP)
				if !ok {
					break
				}
				pats = append(pats, nb.Patterns...)
				i++
			}
			// A spatial FILTER in the trailing filter run may lower the
			// whole unit to a spatial join instead of filter-after-cross.
			var filters []Element
			for j := i + 1; j < len(els); j++ {
				if _, ok := els[j].(Filter); !ok {
					break
				}
				filters = append(filters, els[j])
			}
			if sops, ok := c.compileSpatialUnit(pats, filters); ok {
				ops = append(ops, sops...)
				i += len(filters)
				continue
			}
			ops = append(ops, c.compileBGP(pats)...)
		case Filter:
			ops = append(ops, &filterOp{cond: compileExpr(e.Expr, c.vt)})
		case Optional:
			base := c.cloneStates()
			body := c.compileGroup(e.Group)
			c.weaken(base)
			ops = append(ops, &optionalOp{body: body})
		case Union:
			base := c.cloneStates()
			u := &unionOp{}
			branchStates := make([]map[string]varState, 0, len(e.Alternatives))
			for _, alt := range e.Alternatives {
				c.states = cloneStateMap(base)
				u.alts = append(u.alts, c.compileGroup(alt))
				branchStates = append(branchStates, c.states)
			}
			c.states = mergeUnionStates(base, branchStates)
			ops = append(ops, u)
		case SubGroup:
			// A nested group extends the same solution set in place;
			// inlining its plan is equivalent to the seed recursion.
			ops = append(ops, c.compileGroup(e.Group)...)
		case Exists:
			base := c.cloneStates()
			body := c.compileGroup(e.Group)
			c.states = base // EXISTS binds nothing
			ops = append(ops, &existsOp{body: body, negated: e.Negated})
		case Bind:
			ce := compileExpr(e.Expr, c.vt)
			slot := c.vt.slot(e.Var)
			ops = append(ops, &bindOp{slot: slot, expr: ce})
			// Errors leave the variable unbound, so it is only maybe-bound.
			if c.states[e.Var] == varUnseen {
				c.states[e.Var] = varMaybe
			}
		case Values:
			vo := &valuesOp{rows: e.Rows}
			for _, vn := range e.Vars {
				vo.slots = append(vo.slots, c.vt.slot(vn))
			}
			ops = append(ops, vo)
			for col, vn := range e.Vars {
				allBound := true
				for _, vr := range e.Rows {
					if vr[col].IsZero() {
						allBound = false
						break
					}
				}
				switch {
				case allBound && len(e.Rows) > 0:
					c.states[vn] = varDef
				case c.states[vn] == varUnseen:
					c.states[vn] = varMaybe
				}
			}
		}
	}
	return ops
}

func cloneStateMap(m map[string]varState) map[string]varState {
	out := make(map[string]varState, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// mergeUnionStates combines branch outcomes: a variable is definitely
// bound after a UNION only if every branch definitely binds it (or it
// was already); anything any branch touched is at least maybe-bound.
func mergeUnionStates(base map[string]varState, branches []map[string]varState) map[string]varState {
	out := cloneStateMap(base)
	seen := map[string]bool{}
	for _, br := range branches {
		for k := range br {
			seen[k] = true
		}
	}
	for k := range seen {
		if out[k] == varDef {
			continue
		}
		def := len(branches) > 0
		for _, br := range branches {
			if br[k] != varDef {
				def = false
				break
			}
		}
		if def {
			out[k] = varDef
		} else if out[k] == varUnseen {
			out[k] = varMaybe
		}
	}
	return out
}

// compileBGP plans a join unit (selectivity order) and lowers each
// pattern to a scan operator.
func (c *compiler) compileBGP(pats []TriplePattern) []op {
	ordered := c.plan(pats)
	notePatternsPlanned(len(ordered))
	ops := make([]op, 0, len(ordered))
	for _, tp := range ordered {
		ops = append(ops, c.newScanOp(tp))
		for _, v := range []string{tp.S.Var, tp.P.Var, tp.O.Var} {
			if v != "" {
				c.states[v] = varDef
			}
		}
	}
	return ops
}

// plan orders a BGP's patterns by estimated selectivity, preferring
// patterns connected to already-bound variables (index-driven joins)
// over disconnected ones (hash/cross joins). Without statistics the
// textual order is kept — the seed engine's behaviour.
func (c *compiler) plan(pats []TriplePattern) []TriplePattern {
	if c.stats == nil || len(pats) < 2 {
		return pats
	}
	bound := map[string]bool{}
	for v, st := range c.states {
		if st != varUnseen {
			bound[v] = true
		}
	}
	remaining := make([]TriplePattern, len(pats))
	copy(remaining, pats)
	out := make([]TriplePattern, 0, len(pats))
	for len(remaining) > 0 {
		best := -1
		bestConnected := false
		bestEst := 0
		for i, tp := range remaining {
			connected := patternConnected(tp, bound)
			est := c.adjustedEstimate(tp, bound)
			if best == -1 ||
				(connected && !bestConnected) ||
				(connected == bestConnected && est < bestEst) {
				best, bestConnected, bestEst = i, connected, est
			}
		}
		tp := remaining[best]
		out = append(out, tp)
		remaining = append(remaining[:best], remaining[best+1:]...)
		for _, v := range []string{tp.S.Var, tp.P.Var, tp.O.Var} {
			if v != "" {
				bound[v] = true
			}
		}
	}
	return out
}

// patternConnected reports whether the pattern shares a variable with
// the bound set, or has no variables at all (pure existence check).
func patternConnected(tp TriplePattern, bound map[string]bool) bool {
	nvars := 0
	for _, v := range []string{tp.S.Var, tp.P.Var, tp.O.Var} {
		if v == "" {
			continue
		}
		nvars++
		if bound[v] {
			return true
		}
	}
	return nvars == 0
}

// unknownCardinality stands in for "no estimate" so unplanned patterns
// sort last deterministically.
const unknownCardinality = int(1) << 40

// adjustedEstimate is the constants-only cardinality estimate, damped
// for each variable position that will already be bound at runtime (a
// bound position turns the scan into an index probe).
func (c *compiler) adjustedEstimate(tp TriplePattern, bound map[string]bool) int {
	est := c.stats.Cardinality(constOrWildcard(tp.S), constOrWildcard(tp.P), constOrWildcard(tp.O))
	if est < 0 {
		return unknownCardinality
	}
	for _, v := range []string{tp.S.Var, tp.P.Var, tp.O.Var} {
		if v != "" && bound[v] {
			est /= 8
		}
	}
	return est
}

func constOrWildcard(pt PatternTerm) rdf.Term {
	if pt.IsVar() {
		return rdf.Term{}
	}
	return pt.Term
}
