package sparql

import (
	"testing"
)

func TestBind(t *testing.T) {
	g := testGraph(t)
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name ?double WHERE {
  ?p ex:name ?name ; ex:age ?a .
  BIND(?a * 2 AS ?double)
} ORDER BY ?double`)
	if len(res.Bindings) != 3 {
		t.Fatalf("rows = %v", res.Bindings)
	}
	if v, _ := res.Bindings[0]["double"].Float(); v != 50 {
		t.Errorf("first double = %v", res.Bindings[0]["double"])
	}
	// BIND usable in later filters.
	res = evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE {
  ?p ex:name ?name ; ex:age ?a .
  BIND(?a * 2 AS ?double)
  FILTER(?double > 55)
}`)
	if len(res.Bindings) != 2 {
		t.Fatalf("filtered rows = %v", res.Bindings)
	}
	// BIND with an erroring expression leaves the variable unbound, row kept.
	res = evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name ?x WHERE {
  ?p ex:name ?name .
  BIND(?missing * 2 AS ?x)
}`)
	if len(res.Bindings) != 4 {
		t.Fatalf("error-bind rows = %v", res.Bindings)
	}
	for _, b := range res.Bindings {
		if _, ok := b["x"]; ok {
			t.Error("?x must be unbound on expression error")
		}
	}
}

func TestBindStringFunctions(t *testing.T) {
	g := testGraph(t)
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?up WHERE {
  ?p ex:name ?name .
  BIND(UCASE(?name) AS ?up)
  FILTER(?up = "ALICE")
}`)
	if len(res.Bindings) != 1 || res.Bindings[0]["up"].Value != "ALICE" {
		t.Fatalf("rows = %v", res.Bindings)
	}
}

func TestValuesSingleVar(t *testing.T) {
	g := testGraph(t)
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name ?age WHERE {
  VALUES ?name { "Alice" "Bob" }
  ?p ex:name ?name ; ex:age ?age .
}`)
	if len(res.Bindings) != 2 {
		t.Fatalf("rows = %v", res.Bindings)
	}
}

func TestValuesMultiVar(t *testing.T) {
	g := testGraph(t)
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?p WHERE {
  VALUES (?name ?city) { ("Alice" "Paris") ("Bob" "Paris") }
  ?p ex:name ?name ; ex:city ?city .
}`)
	// Alice/Paris matches; Bob lives in Athens so only one row.
	if len(res.Bindings) != 1 {
		t.Fatalf("rows = %v", res.Bindings)
	}
}

func TestValuesAfterPatterns(t *testing.T) {
	g := testGraph(t)
	// VALUES can also restrict already-bound variables (join semantics).
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE {
  ?p ex:name ?name .
  VALUES ?name { "Carol" "Dave" "Nobody" }
}`)
	if len(res.Bindings) != 2 {
		t.Fatalf("rows = %v", res.Bindings)
	}
}

func TestValuesParseErrors(t *testing.T) {
	bad := []string{
		`SELECT ?x WHERE { VALUES { "a" } ?s ?p ?x }`,
		`SELECT ?x WHERE { VALUES ?x { "a" `,
		`SELECT ?x WHERE { VALUES (?x ?y) { ("a") } ?s ?p ?x }`,
		`SELECT ?x WHERE { VALUES () { } ?s ?p ?x }`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
}

func TestBindParseErrors(t *testing.T) {
	bad := []string{
		`SELECT ?x WHERE { BIND(1 + 2) }`,
		`SELECT ?x WHERE { BIND(1 AS x) }`,
		`SELECT ?x WHERE { BIND 1 AS ?x }`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
}

func TestFilterExists(t *testing.T) {
	g := testGraph(t)
	// People who know someone.
	res := evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE {
  ?p a ex:Person ; ex:name ?name .
  FILTER EXISTS { ?p ex:knows ?someone }
}`)
	if len(res.Bindings) != 2 {
		t.Fatalf("EXISTS rows = %v", res.Bindings)
	}
	// People nobody knows and who know nobody: only query by NOT EXISTS.
	res = evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE {
  ?p a ex:Person ; ex:name ?name .
  FILTER NOT EXISTS { ?p ex:knows ?someone }
}`)
	if len(res.Bindings) != 1 || res.Bindings[0]["name"].Value != "Carol" {
		t.Fatalf("NOT EXISTS rows = %v", res.Bindings)
	}
	// EXISTS correlates with outer bindings (uses ?p).
	res = evalQ(t, g, `PREFIX ex: <http://ex.org/>
SELECT ?name WHERE {
  ?p ex:name ?name .
  FILTER EXISTS { ?q ex:knows ?p . ?q ex:city "Paris" }
}`)
	// Alice (Paris) knows bob+carol; carol also known by bob (Athens).
	names := map[string]bool{}
	for _, b := range res.Bindings {
		names[b["name"].Value] = true
	}
	if !names["Bob"] || !names["Carol"] || names["Alice"] {
		t.Fatalf("correlated EXISTS = %v", names)
	}
}

func TestFilterNotExistsParseError(t *testing.T) {
	if _, err := Parse(`SELECT ?x WHERE { ?x ?p ?o . FILTER NOT { ?x ?p ?o } }`); err == nil {
		t.Error("NOT without EXISTS must error")
	}
}
