// Package schemaorg implements the dataset-discoverability contribution of
// the paper's §5: schema.org Dataset annotations in JSON-LD (the markup
// Google dataset search indexes), extended with the paper's proposed EO
// vocabulary (OGC 17-003-style product metadata: platform, instrument,
// processing level, acquisition window), plus a small keyword search index
// that answers queries like the paper's motivating example — "Is there a
// land cover dataset produced by the European Environmental Agency
// covering the area of Torino, Italy?".
package schemaorg

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"applab/internal/geom"
)

// EODataset describes one EO dataset with schema.org core fields plus the
// EO extension.
type EODataset struct {
	ID          string
	Name        string
	Description string
	Publisher   string
	License     string
	Keywords    []string
	// SpatialCoverage is the dataset footprint.
	SpatialCoverage geom.Envelope
	// TemporalStart/End bound the acquisition window.
	TemporalStart   time.Time
	TemporalEnd     time.Time
	DistributionURL string

	// EO extension (eo: namespace, following OGC 17-003).
	Platform        string // e.g. "PROBA-V"
	Instrument      string // e.g. "VEGETATION"
	ProcessingLevel string // e.g. "L3"
	ProductType     string // e.g. "LAI"
}

// EONamespace is the namespace of the schema.org EO extension.
const EONamespace = "http://www.app-lab.eu/schema-eo/"

// JSONLD renders the dataset annotation as a JSON-LD document.
func JSONLD(d EODataset) (string, error) {
	doc := map[string]any{
		"@context": map[string]any{
			"@vocab": "http://schema.org/",
			"eo":     EONamespace,
		},
		"@type": "Dataset",
		"@id":   d.ID,
		"name":  d.Name,
	}
	if d.Description != "" {
		doc["description"] = d.Description
	}
	if d.Publisher != "" {
		doc["publisher"] = map[string]any{"@type": "Organization", "name": d.Publisher}
	}
	if d.License != "" {
		doc["license"] = d.License
	}
	if len(d.Keywords) > 0 {
		doc["keywords"] = strings.Join(d.Keywords, ", ")
	}
	if !d.SpatialCoverage.IsEmpty() {
		doc["spatialCoverage"] = map[string]any{
			"@type": "Place",
			"geo": map[string]any{
				"@type": "GeoShape",
				// schema.org box: "minLat minLon maxLat maxLon"
				"box": fmt.Sprintf("%g %g %g %g",
					d.SpatialCoverage.MinY, d.SpatialCoverage.MinX,
					d.SpatialCoverage.MaxY, d.SpatialCoverage.MaxX),
			},
		}
	}
	if !d.TemporalStart.IsZero() {
		cov := d.TemporalStart.Format("2006-01-02")
		if !d.TemporalEnd.IsZero() {
			cov += "/" + d.TemporalEnd.Format("2006-01-02")
		}
		doc["temporalCoverage"] = cov
	}
	if d.DistributionURL != "" {
		doc["distribution"] = map[string]any{
			"@type":      "DataDownload",
			"contentUrl": d.DistributionURL,
		}
	}
	eo := map[string]any{}
	if d.Platform != "" {
		eo["eo:platform"] = d.Platform
	}
	if d.Instrument != "" {
		eo["eo:instrument"] = d.Instrument
	}
	if d.ProcessingLevel != "" {
		eo["eo:processingLevel"] = d.ProcessingLevel
	}
	if d.ProductType != "" {
		eo["eo:productType"] = d.ProductType
	}
	for k, v := range eo {
		doc[k] = v
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("schemaorg: %v", err)
	}
	return string(b), nil
}

// ParseJSONLD reads an annotation produced by JSONLD back into an
// EODataset (used by the search index harvester).
func ParseJSONLD(doc string) (EODataset, error) {
	var raw map[string]any
	if err := json.Unmarshal([]byte(doc), &raw); err != nil {
		return EODataset{}, fmt.Errorf("schemaorg: %v", err)
	}
	if raw["@type"] != "Dataset" {
		return EODataset{}, fmt.Errorf("schemaorg: @type %v is not Dataset", raw["@type"])
	}
	d := EODataset{
		ID:          str(raw["@id"]),
		Name:        str(raw["name"]),
		Description: str(raw["description"]),
		License:     str(raw["license"]),
	}
	if p, ok := raw["publisher"].(map[string]any); ok {
		d.Publisher = str(p["name"])
	}
	if kw := str(raw["keywords"]); kw != "" {
		for _, k := range strings.Split(kw, ",") {
			d.Keywords = append(d.Keywords, strings.TrimSpace(k))
		}
	}
	if sc, ok := raw["spatialCoverage"].(map[string]any); ok {
		if g, ok := sc["geo"].(map[string]any); ok {
			var minLat, minLon, maxLat, maxLon float64
			if _, err := fmt.Sscanf(str(g["box"]), "%g %g %g %g", &minLat, &minLon, &maxLat, &maxLon); err == nil {
				d.SpatialCoverage = geom.Envelope{MinX: minLon, MinY: minLat, MaxX: maxLon, MaxY: maxLat}
			}
		}
	}
	if tc := str(raw["temporalCoverage"]); tc != "" {
		parts := strings.SplitN(tc, "/", 2)
		if t, err := time.Parse("2006-01-02", parts[0]); err == nil {
			d.TemporalStart = t
		}
		if len(parts) == 2 {
			if t, err := time.Parse("2006-01-02", parts[1]); err == nil {
				d.TemporalEnd = t
			}
		}
	}
	if dist, ok := raw["distribution"].(map[string]any); ok {
		d.DistributionURL = str(dist["contentUrl"])
	}
	d.Platform = str(raw["eo:platform"])
	d.Instrument = str(raw["eo:instrument"])
	d.ProcessingLevel = str(raw["eo:processingLevel"])
	d.ProductType = str(raw["eo:productType"])
	return d, nil
}

func str(v any) string {
	s, _ := v.(string)
	return s
}

// Index is a keyword + spatial dataset search index — the "search engines
// treating datasets as entities" capability, locally.
type Index struct {
	datasets []EODataset
}

// NewIndex returns an empty index.
func NewIndex() *Index { return &Index{} }

// Add indexes a dataset.
func (ix *Index) Add(d EODataset) { ix.datasets = append(ix.datasets, d) }

// Len returns the number of indexed datasets.
func (ix *Index) Len() int { return len(ix.datasets) }

// Query describes a dataset search: free-text terms matched against
// name/description/keywords/publisher/EO fields, and an optional area the
// dataset's spatial coverage must intersect.
type Query struct {
	Text string
	Area geom.Envelope
}

// Search returns matching datasets ranked by the number of matched terms.
func (ix *Index) Search(q Query) []EODataset {
	terms := tokenize(q.Text)
	type scored struct {
		d     EODataset
		score int
	}
	var hits []scored
	noArea := q.Area.IsEmpty() || q.Area == (geom.Envelope{})
	for _, d := range ix.datasets {
		if !noArea {
			if d.SpatialCoverage.IsEmpty() || !d.SpatialCoverage.Intersects(q.Area) {
				continue
			}
		}
		if len(terms) == 0 {
			hits = append(hits, scored{d, 0})
			continue
		}
		hay := strings.ToLower(strings.Join(append([]string{
			d.Name, d.Description, d.Publisher, d.Platform, d.Instrument,
			d.ProductType, d.ProcessingLevel}, d.Keywords...), " "))
		score := 0
		for _, t := range terms {
			if strings.Contains(hay, t) {
				score++
			}
		}
		if score > 0 {
			hits = append(hits, scored{d, score})
		}
	}
	sort.SliceStable(hits, func(i, j int) bool { return hits[i].score > hits[j].score })
	out := make([]EODataset, len(hits))
	for i, h := range hits {
		out[i] = h.d
	}
	return out
}

func tokenize(s string) []string {
	fields := strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
	})
	var out []string
	for _, f := range fields {
		// drop stop words of the motivating query form
		switch f {
		case "is", "there", "a", "the", "by", "of", "an", "produced", "covering", "area", "dataset":
			continue
		}
		out = append(out, f)
	}
	return out
}
