package schemaorg

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"applab/internal/geom"
	"applab/internal/netcdf"
	"applab/internal/opendap"
)

// Harvest walks an OPeNDAP server's catalog, reads each dataset's NcML
// metadata, and converts it into schema.org EO dataset records — the
// paper's §3.1 metadata-harvesting pipeline ("the publishing and then
// harvesting of metadata from CSPs is recurrent by design") feeding the
// §5 dataset-search contribution.
//
// Recognized (ACDD-style) attributes: title, summary, keywords, license,
// institution/creator_name, platform/source, processing_level,
// geospatial_{lat,lon}_{min,max}, time_coverage_{start,end}.
func Harvest(client *opendap.Client) ([]EODataset, error) {
	names, err := client.Catalog()
	if err != nil {
		return nil, fmt.Errorf("schemaorg: harvest: %v", err)
	}
	var out []EODataset
	for _, name := range names {
		doc, err := client.NcML(name)
		if err != nil {
			return nil, fmt.Errorf("schemaorg: harvest %s: %v", name, err)
		}
		skel, err := opendap.ParseNcML(doc)
		if err != nil {
			return nil, fmt.Errorf("schemaorg: harvest %s: %v", name, err)
		}
		out = append(out, DatasetFromMetadata(name, skel))
	}
	return out, nil
}

// DatasetFromMetadata builds an EO dataset record from a dataset's
// metadata skeleton.
func DatasetFromMetadata(name string, ds *netcdf.Dataset) EODataset {
	attr := func(keys ...string) string {
		for _, k := range keys {
			if v := strings.TrimSpace(ds.Attrs[k]); v != "" {
				return v
			}
		}
		return ""
	}
	d := EODataset{
		ID:              "urn:opendap:" + name,
		Name:            attr("title"),
		Description:     attr("summary", "comment"),
		Publisher:       attr("institution", "creator_name"),
		License:         attr("license"),
		Platform:        attr("platform", "source"),
		Instrument:      attr("instrument"),
		ProcessingLevel: attr("processing_level"),
		ProductType:     attr("product_type"),
	}
	if d.Name == "" {
		d.Name = name
	}
	if kw := attr("keywords"); kw != "" {
		for _, k := range strings.Split(kw, ",") {
			if k = strings.TrimSpace(k); k != "" {
				d.Keywords = append(d.Keywords, k)
			}
		}
	}
	num := func(k string) (float64, bool) {
		v, err := strconv.ParseFloat(strings.TrimSpace(ds.Attrs[k]), 64)
		return v, err == nil
	}
	if latMin, ok1 := num("geospatial_lat_min"); ok1 {
		if latMax, ok2 := num("geospatial_lat_max"); ok2 {
			if lonMin, ok3 := num("geospatial_lon_min"); ok3 {
				if lonMax, ok4 := num("geospatial_lon_max"); ok4 {
					d.SpatialCoverage = geom.Envelope{
						MinX: lonMin, MinY: latMin, MaxX: lonMax, MaxY: latMax,
					}
				}
			}
		}
	}
	parseT := func(k string) time.Time {
		for _, layout := range []string{"2006-01-02T15:04:05Z", time.RFC3339, "2006-01-02"} {
			if t, err := time.Parse(layout, strings.TrimSpace(ds.Attrs[k])); err == nil {
				return t
			}
		}
		return time.Time{}
	}
	d.TemporalStart = parseT("time_coverage_start")
	d.TemporalEnd = parseT("time_coverage_end")
	return d
}
