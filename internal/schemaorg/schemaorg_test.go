package schemaorg

import (
	"strings"
	"testing"
	"time"

	"applab/internal/geom"
)

func sampleDataset() EODataset {
	return EODataset{
		ID:              "http://www.app-lab.eu/datasets/corine-2012",
		Name:            "CORINE Land Cover 2012",
		Description:     "Pan-European land cover and land use inventory with 44 classes",
		Publisher:       "European Environment Agency",
		License:         "https://creativecommons.org/licenses/by/4.0/",
		Keywords:        []string{"land cover", "land use", "Copernicus", "pan-European"},
		SpatialCoverage: geom.Envelope{MinX: -10, MinY: 35, MaxX: 30, MaxY: 60},
		TemporalStart:   time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		TemporalEnd:     time.Date(2012, 12, 31, 0, 0, 0, 0, time.UTC),
		DistributionURL: "https://land.copernicus.eu/pan-european/corine-land-cover",
		Platform:        "Sentinel-2",
		Instrument:      "MSI",
		ProcessingLevel: "L3",
		ProductType:     "LandCover",
	}
}

func TestJSONLDRoundTrip(t *testing.T) {
	d := sampleDataset()
	doc, err := JSONLD(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"@type": "Dataset"`, `"name": "CORINE Land Cover 2012"`,
		`"eo:platform": "Sentinel-2"`, `"box": "35 -10 60 30"`, `"temporalCoverage": "2011-01-01/2012-12-31"`} {
		if !strings.Contains(doc, want) {
			t.Errorf("JSON-LD missing %s:\n%s", want, doc)
		}
	}
	back, err := ParseJSONLD(doc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != d.Name || back.Publisher != d.Publisher || back.Platform != d.Platform {
		t.Errorf("round trip = %+v", back)
	}
	if back.SpatialCoverage != d.SpatialCoverage {
		t.Errorf("coverage = %+v", back.SpatialCoverage)
	}
	if !back.TemporalStart.Equal(d.TemporalStart) || !back.TemporalEnd.Equal(d.TemporalEnd) {
		t.Errorf("temporal = %v %v", back.TemporalStart, back.TemporalEnd)
	}
	if len(back.Keywords) != 4 {
		t.Errorf("keywords = %v", back.Keywords)
	}
}

func TestParseJSONLDErrors(t *testing.T) {
	if _, err := ParseJSONLD("not json"); err == nil {
		t.Error("bad JSON must error")
	}
	if _, err := ParseJSONLD(`{"@type": "Person", "name": "x"}`); err == nil {
		t.Error("non-Dataset must error")
	}
}

func TestSearchMotivatingQuery(t *testing.T) {
	// The paper's example: "Is there a land cover dataset produced by the
	// European Environmental Agency covering the area of Torino, Italy?"
	ix := NewIndex()
	ix.Add(sampleDataset())
	ix.Add(EODataset{
		ID: "http://x/lai", Name: "Copernicus Global Land LAI",
		Publisher:       "VITO",
		Keywords:        []string{"LAI", "vegetation"},
		SpatialCoverage: geom.Envelope{MinX: -180, MinY: -90, MaxX: 180, MaxY: 90},
	})
	ix.Add(EODataset{
		ID: "http://x/ua-oslo", Name: "Urban Atlas Oslo",
		Publisher:       "European Environment Agency",
		Keywords:        []string{"land use", "urban"},
		SpatialCoverage: geom.Envelope{MinX: 10.6, MinY: 59.8, MaxX: 10.9, MaxY: 60.0},
	})

	torino := geom.Envelope{MinX: 7.6, MinY: 45.0, MaxX: 7.75, MaxY: 45.15}
	hits := ix.Search(Query{
		Text: "Is there a land cover dataset produced by the European Environmental Agency",
		Area: torino,
	})
	if len(hits) == 0 {
		t.Fatal("motivating query found nothing")
	}
	if hits[0].Name != "CORINE Land Cover 2012" {
		t.Errorf("top hit = %q", hits[0].Name)
	}
	// Oslo UA is excluded by the spatial constraint despite matching text.
	for _, h := range hits {
		if h.Name == "Urban Atlas Oslo" {
			t.Error("Oslo dataset must not cover Torino")
		}
	}
}

func TestSearchTextOnlyAndAreaOnly(t *testing.T) {
	ix := NewIndex()
	ix.Add(sampleDataset())
	if got := ix.Search(Query{Text: "vegetation index"}); len(got) != 0 {
		t.Errorf("unrelated text matched: %v", got)
	}
	if got := ix.Search(Query{Area: geom.Envelope{MinX: 0, MinY: 40, MaxX: 1, MaxY: 41}}); len(got) != 1 {
		t.Errorf("area-only search = %v", got)
	}
	if got := ix.Search(Query{}); len(got) != 1 {
		t.Errorf("empty query must list all: %v", got)
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d", ix.Len())
	}
}
