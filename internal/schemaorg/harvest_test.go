package schemaorg

import (
	"net/http/httptest"
	"testing"

	"applab/internal/drs"
	"applab/internal/geom"
	"applab/internal/opendap"
	"applab/internal/workload"
)

func TestHarvestFromOPeNDAP(t *testing.T) {
	srv := opendap.NewServer()
	// Two auto-augmented products with ACDD coverage attributes.
	for _, spec := range []struct {
		name, varName string
	}{{"lai", "LAI"}, {"ndvi", "NDVI"}} {
		opts := workload.DefaultLAIOptions()
		opts.Name, opts.VarName = spec.name, spec.varName
		srv.Publish(drs.AutoAugment(workload.LAIGrid(opts)))
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	datasets, err := Harvest(opendap.NewClient(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if len(datasets) != 2 {
		t.Fatalf("harvested %d datasets", len(datasets))
	}
	ix := NewIndex()
	for _, d := range datasets {
		if d.Publisher == "" {
			t.Errorf("%s: publisher missing", d.ID)
		}
		if d.SpatialCoverage.IsEmpty() {
			t.Errorf("%s: spatial coverage missing (AutoAugment attrs lost)", d.ID)
		}
		if d.TemporalStart.IsZero() {
			t.Errorf("%s: temporal coverage missing", d.ID)
		}
		// The annotation round-trips through JSON-LD.
		doc, err := JSONLD(d)
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseJSONLD(doc)
		if err != nil {
			t.Fatal(err)
		}
		ix.Add(parsed)
	}
	// Paris-area search finds the harvested products.
	hits := ix.Search(Query{Text: "Copernicus LAI", Area: workload.ParisExtent})
	if len(hits) == 0 {
		t.Fatal("harvested index returned nothing for a Paris LAI search")
	}
}

func TestDatasetFromMetadataDefaults(t *testing.T) {
	skel, err := opendap.ParseNcML(`<netcdf location="bare"></netcdf>`)
	if err != nil {
		t.Fatal(err)
	}
	d := DatasetFromMetadata("bare", skel)
	if d.Name != "bare" {
		t.Errorf("fallback name = %q", d.Name)
	}
	if !d.SpatialCoverage.IsEmpty() && d.SpatialCoverage != (geom.Envelope{}) {
		t.Errorf("coverage = %+v", d.SpatialCoverage)
	}
}

func TestHarvestErrors(t *testing.T) {
	if _, err := Harvest(opendap.NewClient("http://127.0.0.1:1")); err == nil {
		t.Error("harvest of dead server must fail")
	}
}
