package interlink

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"applab/internal/geom"
	"applab/internal/rdf"
	"applab/internal/workload"
)

func ent(id string, g geom.Geometry) Entity {
	return Entity{ID: rdf.NewIRI("http://ex.org/" + id), Geom: g}
}

func TestSpatialLinkerMatchesNaive(t *testing.T) {
	parks := workload.OSMParks(workload.VectorOptions{Extent: workload.ParisExtent, N: 60, Seed: 3})
	clc := workload.CorineLandCover(workload.VectorOptions{Extent: workload.ParisExtent, N: 80, Seed: 4})
	var src, dst []Entity
	for _, f := range parks {
		src = append(src, ent("osm/"+f.ID, f.Geom))
	}
	for _, f := range clc {
		dst = append(dst, ent("clc/"+f.ID, f.Geom))
	}
	naive := DiscoverNaive(src, dst, geom.Intersects, rdf.NSGeo+"sfIntersects")
	if len(naive) == 0 {
		t.Fatal("naive discovery found nothing; bad workload")
	}
	for _, workers := range []int{1, 4} {
		l := &SpatialLinker{Relation: geom.Intersects, Predicate: rdf.NSGeo + "sfIntersects", Workers: workers}
		got := l.Discover(src, dst)
		if len(got) != len(naive) {
			t.Fatalf("workers=%d: %d links, naive %d", workers, len(got), len(naive))
		}
		for i := range got {
			if got[i] != naive[i] {
				t.Fatalf("workers=%d: link %d differs: %+v vs %+v", workers, i, got[i], naive[i])
			}
		}
	}
}

func TestSpatialLinkerExplicitCellSize(t *testing.T) {
	a := []Entity{ent("a", geom.NewRect(0, 0, 1, 1))}
	b := []Entity{
		ent("b1", geom.NewRect(0.5, 0.5, 2, 2)), // intersects
		ent("b2", geom.NewRect(10, 10, 11, 11)), // disjoint
		ent("b3", geom.NewRect(0.9, 0.9, 5, 5)), // intersects
	}
	l := &SpatialLinker{Relation: geom.Intersects, Predicate: "p", CellSize: 0.5}
	links := l.Discover(a, b)
	if len(links) != 2 {
		t.Fatalf("links = %+v", links)
	}
}

func TestSpatialLinkerEmptyInputs(t *testing.T) {
	l := &SpatialLinker{Relation: geom.Intersects, Predicate: "p"}
	if got := l.Discover(nil, nil); got != nil {
		t.Errorf("empty discover = %v", got)
	}
}

func TestEntitiesFromGraph(t *testing.T) {
	parks := workload.OSMParks(workload.VectorOptions{Extent: workload.ParisExtent, N: 5, Seed: 1})
	g := rdf.NewGraph()
	g.AddAll(workload.FeaturesToRDF(rdf.NSOSM, rdf.NSOSM+"poiType", parks))
	// Add an unparseable geometry that must be skipped.
	g.Add(rdf.NewTriple(rdf.NewIRI("bad"), rdf.NewIRI(rdf.NSGeo+"hasGeometry"), rdf.NewIRI("badg")))
	g.Add(rdf.NewTriple(rdf.NewIRI("badg"), rdf.NewIRI(rdf.NSGeo+"asWKT"), rdf.NewWKT("JUNK")))

	ents := EntitiesFromGraph(g, rdf.NSOSM+"hasName")
	if len(ents) != 5 {
		t.Fatalf("entities = %d", len(ents))
	}
	foundBois := false
	for _, e := range ents {
		if e.Name == "Bois de Boulogne" {
			foundBois = true
		}
		if e.Geom == nil {
			t.Errorf("entity %v lacks geometry", e.ID)
		}
	}
	if !foundBois {
		t.Error("named entity missing")
	}
}

func TestResolveEntities(t *testing.T) {
	a := []Entity{
		{ID: rdf.NewIRI("a1"), Name: "Bois de Boulogne"},
		{ID: rdf.NewIRI("a2"), Name: "Parc Monceau"},
		{ID: rdf.NewIRI("a3"), Name: "Jardin du Luxembourg"},
	}
	b := []Entity{
		{ID: rdf.NewIRI("b1"), Name: "bois de boulogne"}, // same, case differs
		{ID: rdf.NewIRI("b2"), Name: "Parc de Monceau"},  // near
		{ID: rdf.NewIRI("b3"), Name: "Tour Eiffel"},      // unrelated
	}
	links := ResolveEntities(a, b, 0.6, 2)
	if len(links) != 2 {
		t.Fatalf("links = %+v", links)
	}
	if links[0].Source.Value != "a1" || links[0].Target.Value != "b1" {
		t.Errorf("first link = %+v", links[0])
	}
	if links[0].Score != 1 {
		t.Errorf("identical names score = %v", links[0].Score)
	}
	if links[0].Predicate != rdf.OWLSameAs {
		t.Errorf("predicate = %q", links[0].Predicate)
	}
	// Threshold 1.0 keeps only the exact match.
	strict := ResolveEntities(a, b, 1.0, 1)
	if len(strict) != 1 {
		t.Fatalf("strict links = %+v", strict)
	}
	// Workers must not change results.
	for _, w := range []int{1, 2, 8} {
		got := ResolveEntities(a, b, 0.6, w)
		if len(got) != 2 {
			t.Errorf("workers=%d links=%d", w, len(got))
		}
	}
}

func TestTemporalLinks(t *testing.T) {
	d := func(m time.Month, day int) time.Time {
		return time.Date(2018, m, day, 0, 0, 0, 0, time.UTC)
	}
	a := []Entity{
		{ID: rdf.NewIRI("jan"), From: d(1, 1), To: d(1, 31)},
		{ID: rdf.NewIRI("jun"), From: d(6, 1), To: d(6, 30)},
	}
	b := []Entity{
		{ID: rdf.NewIRI("spring"), From: d(3, 1), To: d(5, 31)},
		{ID: rdf.NewIRI("h1"), From: d(1, 1), To: d(6, 30)},
		{ID: rdf.NewIRI("notime")},
	}
	before := TemporalLinks(a, b, RelBefore)
	if len(before) != 1 || before[0].Source.Value != "jan" || before[0].Target.Value != "spring" {
		t.Errorf("before = %+v", before)
	}
	during := TemporalLinks(a, b, RelDuring)
	if len(during) != 2 { // jan during h1, jun during h1
		t.Errorf("during = %+v", during)
	}
	overlaps := TemporalLinks(a, b, RelOverlaps)
	if len(overlaps) != 2 { // jan-h1, jun-h1 (jan/spring disjoint)
		t.Errorf("overlaps = %+v", overlaps)
	}
	after := TemporalLinks(b, a, RelAfter)
	if len(after) != 1 || after[0].Source.Value != "spring" {
		t.Errorf("after = %+v", after)
	}
}

func TestLinksToRDF(t *testing.T) {
	links := []Link{{Source: rdf.NewIRI("a"), Target: rdf.NewIRI("b"), Predicate: rdf.OWLSameAs, Score: 1}}
	triples := LinksToRDF(links)
	if len(triples) != 1 || triples[0].P.Value != rdf.OWLSameAs {
		t.Errorf("triples = %v", triples)
	}
}

func TestBlockingScalesBetterThanNaive(t *testing.T) {
	// Not a benchmark, just a sanity check that blocking visits far fewer
	// pairs: compare verified-pair counts via instrumented relations.
	n := 300
	var src, dst []Entity
	for i := 0; i < n; i++ {
		x := float64(i%20) * 10
		y := float64(i/20) * 10
		src = append(src, ent(fmt.Sprintf("s%d", i), geom.NewRect(x, y, x+1, y+1)))
		dst = append(dst, ent(fmt.Sprintf("d%d", i), geom.NewRect(x+0.5, y+0.5, x+1.5, y+1.5)))
	}
	naiveCalls := 0
	DiscoverNaive(src, dst, func(a, b geom.Geometry) bool {
		naiveCalls++
		return geom.Intersects(a, b)
	}, "p")
	blockedCalls := 0
	l := &SpatialLinker{Relation: func(a, b geom.Geometry) bool {
		blockedCalls++
		return geom.Intersects(a, b)
	}, Predicate: "p", CellSize: 10}
	l.Discover(src, dst)
	if blockedCalls*10 > naiveCalls {
		t.Errorf("blocking visited %d pairs, naive %d — expected >=10x reduction", blockedCalls, naiveCalls)
	}
}

func TestObservationEntitiesFromGraph(t *testing.T) {
	g := rdf.NewGraph()
	hasTime := rdf.NewIRI(rdf.NSTime + "hasTime")
	hasGeom := rdf.NewIRI(rdf.NSGeo + "hasGeometry")
	asWKT := rdf.NewIRI(rdf.NSGeo + "asWKT")
	add := func(id, when, wkt string) {
		s := rdf.NewIRI("http://ex.org/" + id)
		gn := rdf.NewIRI("http://ex.org/" + id + "/g")
		g.Add(rdf.NewTriple(s, hasTime, rdf.NewTypedLiteral(when, rdf.XSDDateTime)))
		g.Add(rdf.NewTriple(s, hasGeom, gn))
		g.Add(rdf.NewTriple(gn, asWKT, rdf.NewWKT(wkt)))
	}
	add("o2", "2018-06-01T00:00:00Z", "POINT (2 2)")
	add("o1", "2018-03-01T00:00:00Z", "POINT (1 1)")
	// Subject with time but no geometry: skipped.
	g.Add(rdf.NewTriple(rdf.NewIRI("http://ex.org/nogeo"), hasTime,
		rdf.NewTypedLiteral("2018-01-01T00:00:00Z", rdf.XSDDateTime)))

	ents := ObservationEntitiesFromGraph(g)
	if len(ents) != 2 {
		t.Fatalf("entities = %d", len(ents))
	}
	// Sorted by time.
	if !strings.HasSuffix(ents[0].ID.Value, "o1") || !strings.HasSuffix(ents[1].ID.Value, "o2") {
		t.Errorf("order = %v, %v", ents[0].ID, ents[1].ID)
	}
	// Usable with TemporalLinks.
	links := TemporalLinks(ents[:1], ents[1:], RelBefore)
	if len(links) != 1 {
		t.Errorf("temporal links = %v", links)
	}
}
