// Package interlink implements the interlinking tools of the App Lab
// stack: spatial and temporal link discovery in the style of the
// Silk extension of [Smeros & Koubarakis, LDOW 2016], and name-based
// entity resolution with token blocking in the style of JedAI
// [Papadakis et al., SEMANTICS 2017], including the multi-core mode the
// paper cites as "scalable to very large datasets".
//
// Both tools avoid the O(n*m) comparison explosion with blocking: spatial
// discovery assigns geometries to equi-grid cells and compares only
// co-located pairs; entity resolution compares only entities sharing a
// name token.
package interlink

import (
	"sort"
	"strings"
	"sync"
	"time"

	"applab/internal/geom"
	"applab/internal/rdf"
)

// Entity is one interlinking subject with its comparable attributes.
type Entity struct {
	ID   rdf.Term
	Geom geom.Geometry // nil when the entity has no geometry
	Name string
	From time.Time // valid-time / observation interval (optional)
	To   time.Time
}

// Link is a discovered link between two entities.
type Link struct {
	Source    rdf.Term
	Target    rdf.Term
	Predicate string
	// Score is 1 for boolean relations, the similarity for sameAs links.
	Score float64
}

// EntitiesFromGraph extracts entities from an RDF graph: every subject
// with geo:hasGeometry/geo:asWKT becomes an entity; nameProp (optional)
// fills Name. Geometries that fail to parse are skipped.
func EntitiesFromGraph(g *rdf.Graph, nameProp string) []Entity {
	hasGeom := rdf.NewIRI(rdf.NSGeo + "hasGeometry")
	asWKT := rdf.NewIRI(rdf.NSGeo + "asWKT")
	var out []Entity
	for _, t := range g.Match(rdf.Term{}, hasGeom, rdf.Term{}) {
		wkt, ok := g.FirstObject(t.O, asWKT)
		if !ok {
			continue
		}
		gm, err := geom.ParseWKT(wkt.Value)
		if err != nil {
			continue
		}
		e := Entity{ID: t.S, Geom: gm}
		if nameProp != "" {
			if n, ok := g.FirstObject(t.S, rdf.NewIRI(nameProp)); ok {
				e.Name = n.Value
			}
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Key() < out[j].ID.Key() })
	return out
}

// ObservationEntitiesFromGraph extracts spatio-temporal entities: subjects
// with a geometry and a time:hasTime instant (the observation shape of the
// LAI datasets). The instant becomes a degenerate [t, t] interval, making
// the entities usable with TemporalLinks.
func ObservationEntitiesFromGraph(g *rdf.Graph) []Entity {
	hasTime := rdf.NewIRI(rdf.NSTime + "hasTime")
	byKey := map[string]int{}
	ents := EntitiesFromGraph(g, "")
	for i, e := range ents {
		byKey[e.ID.Key()] = i
	}
	var out []Entity
	for _, t := range g.Match(rdf.Term{}, hasTime, rdf.Term{}) {
		tm, ok := t.O.Time()
		if !ok {
			continue
		}
		i, ok := byKey[t.S.Key()]
		if !ok {
			continue
		}
		e := ents[i]
		e.From, e.To = tm, tm
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].From.Equal(out[j].From) {
			return out[i].From.Before(out[j].From)
		}
		return out[i].ID.Key() < out[j].ID.Key()
	})
	return out
}

// SpatialLinker discovers links between geometric entities.
type SpatialLinker struct {
	// Relation is the geometric predicate (geom.Intersects, geom.Touches,
	// ...).
	Relation func(a, b geom.Geometry) bool
	// Predicate is the IRI of emitted links (e.g. geo:sfIntersects).
	Predicate string
	// CellSize is the blocking grid cell size in coordinate units; <= 0
	// picks a heuristic from the data extent.
	CellSize float64
	// Workers is the number of parallel verification workers (1 = serial).
	Workers int
}

// Discover returns all (src, dst) pairs satisfying the relation, using
// grid blocking.
func (l *SpatialLinker) Discover(src, dst []Entity) []Link {
	if len(src) == 0 || len(dst) == 0 {
		return nil
	}
	cell := l.CellSize
	if cell <= 0 {
		ext := geom.EmptyEnvelope()
		for _, e := range src {
			ext = ext.Extend(e.Geom.Envelope())
		}
		for _, e := range dst {
			ext = ext.Extend(e.Geom.Envelope())
		}
		// ~32x32 grid over the data extent.
		w := ext.MaxX - ext.MinX
		h := ext.MaxY - ext.MinY
		cell = maxF(w, h) / 32
		if cell <= 0 {
			cell = 1
		}
	}

	// Block destination entities by covered cells.
	dstCells := map[[2]int][]int{}
	for i, e := range dst {
		for _, c := range cellsOf(e.Geom.Envelope(), cell) {
			dstCells[c] = append(dstCells[c], i)
		}
	}

	workers := l.Workers
	if workers < 1 {
		workers = 1
	}
	type result struct {
		links []Link
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seen := map[[2]string]bool{}
			var links []Link
			for i := w; i < len(src); i += workers {
				e := src[i]
				env := e.Geom.Envelope()
				for _, c := range cellsOf(env, cell) {
					for _, di := range dstCells[c] {
						d := dst[di]
						key := [2]string{e.ID.Key(), d.ID.Key()}
						if seen[key] {
							continue
						}
						seen[key] = true
						if e.ID.Equal(d.ID) {
							continue
						}
						if !env.Intersects(d.Geom.Envelope()) {
							continue
						}
						if l.Relation(e.Geom, d.Geom) {
							links = append(links, Link{Source: e.ID, Target: d.ID,
								Predicate: l.Predicate, Score: 1})
						}
					}
				}
			}
			results[w] = result{links}
		}(w)
	}
	wg.Wait()
	var out []Link
	for _, r := range results {
		out = append(out, r.links...)
	}
	sortLinks(out)
	return out
}

// DiscoverNaive is the blocking-free baseline: all pairs are verified.
func DiscoverNaive(src, dst []Entity, rel func(a, b geom.Geometry) bool, predicate string) []Link {
	var out []Link
	for _, e := range src {
		for _, d := range dst {
			if e.ID.Equal(d.ID) {
				continue
			}
			if rel(e.Geom, d.Geom) {
				out = append(out, Link{Source: e.ID, Target: d.ID, Predicate: predicate, Score: 1})
			}
		}
	}
	sortLinks(out)
	return out
}

func cellsOf(env geom.Envelope, cell float64) [][2]int {
	minX := int(floorDiv(env.MinX, cell))
	maxX := int(floorDiv(env.MaxX, cell))
	minY := int(floorDiv(env.MinY, cell))
	maxY := int(floorDiv(env.MaxY, cell))
	var out [][2]int
	for x := minX; x <= maxX; x++ {
		for y := minY; y <= maxY; y++ {
			out = append(out, [2]int{x, y})
		}
	}
	return out
}

func floorDiv(v, cell float64) float64 {
	q := v / cell
	f := float64(int(q))
	if q < 0 && q != f {
		f--
	}
	return f
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func sortLinks(links []Link) {
	sort.Slice(links, func(i, j int) bool {
		if links[i].Source.Value != links[j].Source.Value {
			return links[i].Source.Value < links[j].Source.Value
		}
		return links[i].Target.Value < links[j].Target.Value
	})
}

// ---- entity resolution ----

// ResolveEntities links entities of a and b whose names are similar
// (Jaccard token similarity >= threshold), emitting owl:sameAs links. It
// uses token blocking: only pairs sharing at least one token are compared.
// workers parallelizes the comparison phase.
func ResolveEntities(a, b []Entity, threshold float64, workers int) []Link {
	if workers < 1 {
		workers = 1
	}
	// Token blocking over b.
	blocks := map[string][]int{}
	for i, e := range b {
		for _, tok := range nameTokens(e.Name) {
			blocks[tok] = append(blocks[tok], i)
		}
	}
	results := make([][]Link, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seen := map[[2]string]bool{}
			var links []Link
			for i := w; i < len(a); i += workers {
				e := a[i]
				toksA := nameTokens(e.Name)
				if len(toksA) == 0 {
					continue
				}
				for _, tok := range toksA {
					for _, bi := range blocks[tok] {
						d := b[bi]
						key := [2]string{e.ID.Key(), d.ID.Key()}
						if seen[key] || e.ID.Equal(d.ID) {
							continue
						}
						seen[key] = true
						s := jaccard(toksA, nameTokens(d.Name))
						if s >= threshold {
							links = append(links, Link{Source: e.ID, Target: d.ID,
								Predicate: rdf.OWLSameAs, Score: s})
						}
					}
				}
			}
			results[w] = links
		}(w)
	}
	wg.Wait()
	var out []Link
	for _, r := range results {
		out = append(out, r...)
	}
	sortLinks(out)
	return out
}

func nameTokens(name string) []string {
	fields := strings.FieldsFunc(strings.ToLower(name), func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
	})
	seen := map[string]bool{}
	var out []string
	for _, f := range fields {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

func jaccard(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := map[string]bool{}
	for _, t := range a {
		set[t] = true
	}
	inter := 0
	for _, t := range b {
		if set[t] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// ---- temporal links ----

// TemporalRelation names the supported interval relations.
type TemporalRelation string

// Temporal relations.
const (
	RelBefore   TemporalRelation = "before"
	RelAfter    TemporalRelation = "after"
	RelDuring   TemporalRelation = "during"
	RelOverlaps TemporalRelation = "overlaps"
)

// TemporalLinks links entities of src to entities of dst whose intervals
// satisfy rel. Entities without valid intervals are skipped.
func TemporalLinks(src, dst []Entity, rel TemporalRelation) []Link {
	pred := rdf.NSTime + string(rel)
	var out []Link
	for _, e := range src {
		if e.From.IsZero() && e.To.IsZero() {
			continue
		}
		eFrom, eTo := normInterval(e)
		for _, d := range dst {
			if (d.From.IsZero() && d.To.IsZero()) || e.ID.Equal(d.ID) {
				continue
			}
			dFrom, dTo := normInterval(d)
			ok := false
			switch rel {
			case RelBefore:
				ok = eTo.Before(dFrom)
			case RelAfter:
				ok = eFrom.After(dTo)
			case RelDuring:
				ok = !eFrom.Before(dFrom) && !eTo.After(dTo)
			case RelOverlaps:
				ok = !eFrom.After(dTo) && !dFrom.After(eTo)
			}
			if ok {
				out = append(out, Link{Source: e.ID, Target: d.ID, Predicate: pred, Score: 1})
			}
		}
	}
	sortLinks(out)
	return out
}

func normInterval(e Entity) (time.Time, time.Time) {
	from, to := e.From, e.To
	if from.IsZero() {
		from = to
	}
	if to.IsZero() {
		to = from
	}
	return from, to
}

// LinksToRDF converts links to triples.
func LinksToRDF(links []Link) []rdf.Triple {
	out := make([]rdf.Triple, len(links))
	for i, l := range links {
		out[i] = rdf.NewTriple(l.Source, rdf.NewIRI(l.Predicate), l.Target)
	}
	return out
}
