package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"applab/internal/geom"
	"applab/internal/interlink"
	"applab/internal/rdf"
	"applab/internal/sextant"
	"applab/internal/workload"
)

// TestLAIOntology structure-checks the paper's Figure 2.
func TestLAIOntology(t *testing.T) {
	g := rdf.NewGraph()
	g.AddAll(LAIOntology())
	obs := rdf.NewIRI(rdf.NSLAI + "Observation")
	if sup, ok := g.FirstObject(obs, rdf.NewIRI(rdf.RDFSSubClassOf)); !ok || sup.Value != rdf.NSQB+"Observation" {
		t.Errorf("lai:Observation superclass = %v", sup)
	}
	rng, ok := g.FirstObject(rdf.NewIRI(rdf.NSLAI+"lai"), rdf.NewIRI(rdf.RDFSRange))
	if !ok || rng.Value != rdf.NSXSD+"float" {
		t.Errorf("lai:lai range = %v", rng)
	}
	// Emitted Turtle parses back.
	var buf bytes.Buffer
	if err := rdf.WriteTurtle(&buf, LAIOntology(), rdf.DefaultPrefixes()); err != nil {
		t.Fatal(err)
	}
	back, _, err := rdf.ParseTurtleString(buf.String())
	if err != nil {
		t.Fatalf("ontology turtle re-parse: %v\n%s", err, buf.String())
	}
	if len(back) != len(LAIOntology()) {
		t.Errorf("round trip %d -> %d", len(LAIOntology()), len(back))
	}
}

// TestGADMOntology structure-checks the paper's Figure 3.
func TestGADMOntology(t *testing.T) {
	g := rdf.NewGraph()
	g.AddAll(GADMOntology())
	area := rdf.NewIRI(rdf.NSGADM + "AdministrativeArea")
	if sup, ok := g.FirstObject(area, rdf.NewIRI(rdf.RDFSSubClassOf)); !ok || sup.Value != rdf.NSGeo+"Feature" {
		t.Errorf("gadm:AdministrativeArea superclass = %v", sup)
	}
}

func TestCORINEOntologyHierarchy(t *testing.T) {
	g := rdf.NewGraph()
	g.AddAll(CORINEOntology())
	// clc:greenUrbanAreas -> clc:ArtificialSurfaces -> clc:CorineValue
	green := rdf.NewIRI(rdf.NSCLC + "greenUrbanAreas")
	sup, ok := g.FirstObject(green, rdf.NewIRI(rdf.RDFSSubClassOf))
	if !ok || sup.Value != rdf.NSCLC+"ArtificialSurfaces" {
		t.Fatalf("greenUrbanAreas superclass = %v", sup)
	}
	sup2, ok := g.FirstObject(sup, rdf.NewIRI(rdf.RDFSSubClassOf))
	if !ok || sup2.Value != rdf.NSCLC+"CorineValue" {
		t.Fatalf("ArtificialSurfaces superclass = %v", sup2)
	}
}

// newCaseStudyStack loads the full §4 case study into a materialized
// stack.
func newCaseStudyStack(t testing.TB) *MaterializedStack {
	t.Helper()
	m := NewMaterializedStack()
	ext := workload.ParisExtent
	m.LoadFeatures(rdf.NSOSM, rdf.NSOSM+"poiType",
		workload.OSMParks(workload.VectorOptions{Extent: ext, N: 30, Seed: 5}))
	m.LoadFeatures(rdf.NSCLC, rdf.NSCLC+"hasCorineValue",
		workload.CorineLandCover(workload.VectorOptions{Extent: ext, N: 40, Seed: 6}))
	m.LoadFeatures(rdf.NSUA, rdf.NSUA+"hasClass",
		workload.UrbanAtlas(workload.VectorOptions{Extent: ext, N: 40, Seed: 7}))
	m.LoadFeatures(rdf.NSGADM, rdf.NSGADM+"hasType", workload.GADMAreas(ext, 4, 5))
	opts := workload.DefaultLAIOptions()
	opts.NLat, opts.NLon, opts.Times = 10, 12, 4
	if err := m.LoadLAI(workload.LAIGrid(opts), "LAI"); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestListing1 runs the paper's Listing 1 query end-to-end on the
// materialized stack.
func TestListing1(t *testing.T) {
	m := newCaseStudyStack(t)
	res, err := m.Query(Listing1Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) == 0 {
		t.Fatal("Listing 1 returned no LAI observations over Bois de Boulogne")
	}
	for _, b := range res.Bindings {
		if b["geoA"].Datatype != rdf.WKTLiteral || b["geoB"].Datatype != rdf.WKTLiteral {
			t.Errorf("non-WKT binding: %v", b)
		}
		if _, ok := b["lai"].Float(); !ok {
			t.Errorf("non-numeric lai: %v", b["lai"])
		}
	}
}

// TestGreennessOfParis reproduces Figure 4: the layered temporal map.
func TestGreennessOfParis(t *testing.T) {
	m := newCaseStudyStack(t)
	mp := sextant.NewMap("The greenness of Paris")

	// GADM boundaries (magenta lines in the paper's figure).
	gadmRes, err := m.Query(`SELECT ?wkt WHERE {
	  ?a gadm:hasType ?ty . ?a geo:hasGeometry ?g . ?g geo:asWKT ?wkt }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mp.LayerFromResults("GADM", sextant.Style{Stroke: "#ff00ff", Fill: "none"},
		gadmRes, "wkt", "", ""); err != nil {
		t.Fatal(err)
	}

	// CORINE green urban areas.
	clcRes, err := m.Query(`SELECT ?wkt WHERE {
	  ?a clc:hasCorineValue clc:greenUrbanAreas .
	  ?a geo:hasGeometry ?g . ?g geo:asWKT ?wkt }`)
	if err != nil {
		t.Fatal(err)
	}
	mp.LayerFromResults("CLC green", sextant.Style{Fill: "#44aa44", FillOpacity: 0.5}, clcRes, "wkt", "", "")

	// LAI circles over time.
	laiRes, err := m.Query(`SELECT ?wkt ?lai ?t WHERE {
	  ?o lai:lai ?lai ; geo:hasGeometry ?g ; time:hasTime ?t .
	  ?g geo:asWKT ?wkt }`)
	if err != nil {
		t.Fatal(err)
	}
	laiLayer, err := mp.LayerFromResults("LAI", sextant.Style{Fill: "#007700", Radius: 2},
		laiRes, "wkt", "lai", "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(laiLayer.Features) == 0 {
		t.Fatal("no LAI features on the map")
	}
	times := mp.Times()
	if len(times) != 4 {
		t.Fatalf("temporal frames = %d, want 4", len(times))
	}
	svg := mp.RenderSVGAt(800, times[0])
	if !strings.Contains(svg, "<circle") || !strings.Contains(svg, "<polygon") {
		t.Error("figure 4 frame must contain LAI circles and area polygons")
	}
	// Map ontology description.
	g := rdf.NewGraph()
	g.AddAll(mp.ToRDF())
	if len(g.Subjects(rdf.NewIRI(rdf.RDFType), rdf.NewIRI(sextant.NSMap+"Layer"))) != 3 {
		t.Error("map RDF must describe 3 layers")
	}
}

// TestFigure1Architecture wires both workflows end-to-end: the
// materialized store and the on-the-fly OBDA stack answer the same
// structural query over the same LAI product, and interlinking adds
// sameAs/spatial links.
func TestFigure1Architecture(t *testing.T) {
	opts := workload.DefaultLAIOptions()
	opts.NLat, opts.NLon, opts.Times = 6, 6, 2
	grid := workload.LAIGrid(opts)
	grid.Name = "lai"

	// On-the-fly workflow (right side of Figure 1).
	fly, err := NewOnTheFlyStack(Listing2Mapping, grid)
	if err != nil {
		t.Fatal(err)
	}
	defer fly.Close()
	flyRes, err := fly.Query(Listing3Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(flyRes.Bindings) == 0 {
		t.Fatal("on-the-fly workflow returned nothing")
	}

	// Materialized workflow (left side): same grid through the converter.
	mat := NewMaterializedStack()
	if err := mat.LoadLAI(grid, "LAI"); err != nil {
		t.Fatal(err)
	}
	matRes, err := mat.Query(Listing3Query)
	if err != nil {
		t.Fatal(err)
	}
	// Both see exactly the positive observations.
	if len(matRes.Bindings) != len(flyRes.Bindings) {
		t.Errorf("materialized %d rows, on-the-fly %d rows",
			len(matRes.Bindings), len(flyRes.Bindings))
	}

	// Materializing the virtual graph yields a queryable Strabon store.
	st, err := fly.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if st.ObservationCount() == 0 {
		t.Error("materialized store has no observations")
	}

	// Interlinking on the materialized side.
	m2 := newCaseStudyStack(t)
	linker := &interlink.SpatialLinker{Relation: geom.Intersects,
		Predicate: rdf.NSGeo + "sfIntersects", Workers: 2}
	if n := m2.Interlink(linker, rdf.NSOSM+"hasName", ""); n == 0 {
		t.Error("interlinking found no links")
	}
}

// TestOnTheFlyCacheWindow verifies the Listing 2 cache semantics through
// the whole stack.
func TestOnTheFlyCacheWindow(t *testing.T) {
	opts := workload.DefaultLAIOptions()
	opts.NLat, opts.NLon, opts.Times = 4, 4, 2
	grid := workload.LAIGrid(opts)
	grid.Name = "lai"
	fly, err := NewOnTheFlyStack(Listing2Mapping, grid)
	if err != nil {
		t.Fatal(err)
	}
	defer fly.Close()
	clock := time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC)
	fly.Adapter.Now = func() time.Time { return clock }

	if _, err := fly.Query(Listing3Query); err != nil {
		t.Fatal(err)
	}
	calls := fly.Adapter.PhysicalCalls()
	if _, err := fly.Query(Listing3Query); err != nil {
		t.Fatal(err)
	}
	if fly.Adapter.PhysicalCalls() != calls {
		t.Error("second query within window must be served from cache")
	}
	clock = clock.Add(11 * time.Minute)
	if _, err := fly.Query(Listing3Query); err != nil {
		t.Fatal(err)
	}
	if fly.Adapter.PhysicalCalls() != calls+1 {
		t.Error("query after window expiry must refetch")
	}
}
