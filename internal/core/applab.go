package core

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"applab/internal/interlink"
	"applab/internal/madis"
	"applab/internal/netcdf"
	"applab/internal/obda"
	"applab/internal/opendap"
	"applab/internal/rdf"
	"applab/internal/sparql"
	"applab/internal/strabon"
	"applab/internal/workload"
)

// MaterializedStack is the left-hand workflow of the paper's Figure 1:
// data transformed to RDF (GeoTriples / converters), stored in Strabon,
// interlinked, and queried with GeoSPARQL.
type MaterializedStack struct {
	Store *strabon.Store
}

// NewMaterializedStack returns a stack with the case-study ontologies
// preloaded.
func NewMaterializedStack() *MaterializedStack {
	s := strabon.New()
	s.AddAll(AllOntologies())
	return &MaterializedStack{Store: s}
}

// LoadFeatures converts features to RDF and stores them.
func (m *MaterializedStack) LoadFeatures(ns, classProp string, feats []workload.Feature) {
	m.Store.AddAll(workload.FeaturesToRDF(ns, classProp, feats))
}

// LoadLAI converts a LAI grid to RDF observations and stores them.
func (m *MaterializedStack) LoadLAI(ds *netcdf.Dataset, varName string) error {
	triples, err := workload.LAIGridToRDF(ds, varName)
	if err != nil {
		return err
	}
	m.Store.AddAll(triples)
	return nil
}

// Interlink discovers spatial links between two feature classes already in
// the store and adds the links as triples, returning how many were found.
func (m *MaterializedStack) Interlink(linker *interlink.SpatialLinker, srcNameProp, dstNameProp string) int {
	ents := interlink.EntitiesFromGraph(m.Store.Graph(), srcNameProp)
	links := linker.Discover(ents, ents)
	m.Store.AddAll(interlink.LinksToRDF(links))
	return len(links)
}

// Query runs a GeoSPARQL query against the store.
func (m *MaterializedStack) Query(q string) (*sparql.Results, error) {
	return m.Store.Query(q)
}

// OnTheFlyStack is the right-hand workflow of Figure 1: an OPeNDAP server
// (the VITO deployment substitute), the MadIS backend with the opendap
// virtual table, and an Ontop-spatial virtual graph over mappings.
type OnTheFlyStack struct {
	Server  *opendap.Server
	Client  *opendap.Client
	DB      *madis.DB
	Adapter *obda.OpendapAdapter
	Graph   *obda.VirtualGraph

	httpServer *http.Server
	listener   net.Listener
}

// NewOnTheFlyStack starts a loopback OPeNDAP server publishing the given
// datasets, wires the MadIS opendap adapter over it, and builds a virtual
// graph from the mapping document (Ontop native syntax, as in the paper's
// Listing 2). Close must be called to release the listener.
func NewOnTheFlyStack(mappingDoc string, datasets ...*netcdf.Dataset) (*OnTheFlyStack, error) {
	srv := opendap.NewServer()
	for _, d := range datasets {
		srv.Publish(d)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("core: %v", err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)

	client := opendap.NewClient("http://" + ln.Addr().String())
	adapter := obda.NewOpendapAdapter(client)
	db := madis.NewDB()
	adapter.Register(db)

	mappings, err := obda.ParseMappings(mappingDoc)
	if err != nil {
		_ = ln.Close() // best-effort cleanup on the error path
		return nil, err
	}
	return &OnTheFlyStack{
		Server:  srv,
		Client:  client,
		DB:      db,
		Adapter: adapter,
		Graph:   obda.NewVirtualGraph(db, mappings),

		httpServer: hs,
		listener:   ln,
	}, nil
}

// URL returns the OPeNDAP server base URL.
func (s *OnTheFlyStack) URL() string { return "http://" + s.listener.Addr().String() }

// SetLatency configures the simulated WAN latency per data request.
func (s *OnTheFlyStack) SetLatency(d time.Duration) { s.Server.Latency = d }

// Query evaluates a GeoSPARQL query on-the-fly (mapping sources
// re-executed; OPeNDAP hit unless the adapter cache window covers it).
func (s *OnTheFlyStack) Query(q string) (*sparql.Results, error) {
	return s.Graph.Query(q)
}

// Materialize snapshots the current virtual graph into a Strabon store —
// the paper's "for more costly operations ... it is better to materialize
// the data".
func (s *OnTheFlyStack) Materialize() (*strabon.Store, error) {
	s.Graph.Invalidate()
	g, err := s.Graph.Snapshot()
	if err != nil {
		return nil, err
	}
	st := strabon.New()
	st.AddAll(g.Triples())
	return st, nil
}

// Close shuts the OPeNDAP server down.
func (s *OnTheFlyStack) Close() error {
	return s.httpServer.Close()
}

// Listing2Mapping is the paper's Listing 2 mapping over a dataset named
// "lai" with variable "LAI" and a 10-minute cache window.
const Listing2Mapping = `
mappingId	opendap_mapping
target		lai:{id} rdf:type lai:Observation .
			lai:{id} lai:lai {LAI}^^xsd:float ;
			time:hasTime {ts}^^xsd:dateTime .
			lai:{id} geo:hasGeometry _:g .
			_:g geo:asWKT {loc}^^geo:wktLiteral .
source		SELECT id, LAI , ts, loc
			FROM (ordered opendap
			url:https://analytics.ramani.ujuizi.com/thredds/dodsC/lai/LAI/, 10)
			WHERE LAI > 0
`

// Listing1Query is the paper's Listing 1 GeoSPARQL query (LAI in Bois de
// Boulogne).
const Listing1Query = `SELECT DISTINCT ?geoA ?geoB ?lai WHERE
{ ?areaA osm:poiType osm:park .
  ?areaA geo:hasGeometry ?geomA .
  ?geomA geo:asWKT ?geoA .
  ?areaA osm:hasName "Bois de Boulogne"^^xsd:string .
  ?areaB lai:lai ?lai .
  ?areaB geo:hasGeometry ?geomB .
  ?geomB geo:asWKT ?geoB .
  FILTER(geof:sfIntersects(?geoA , ?geoB))
}`

// Listing3Query is the paper's Listing 3 query over the virtual graph.
const Listing3Query = `SELECT DISTINCT ?s ?wkt ?lai
WHERE { ?s lai:lai ?lai .
        ?s geo:hasGeometry ?g .
        ?g geo:asWKT ?wkt }`

// EnsurePrefixed is a helper for CLIs: the default prefix table.
func EnsurePrefixed() *rdf.Prefixes { return rdf.DefaultPrefixes() }
