// Package core wires the App Lab stack together: the materialized workflow
// (GeoTriples → Strabon → interlinking → Sextant) and the on-the-fly
// workflow (OPeNDAP → MadIS opendap adapter → Ontop-spatial virtual
// graphs), plus the INSPIRE-compliant ontologies of the paper's Figures
// 2-3 and the case-study vocabularies.
package core

import (
	"applab/internal/rdf"
)

func iri(s string) rdf.Term         { return rdf.NewIRI(s) }
func lit(s string) rdf.Term         { return rdf.NewLiteral(s) }
func t(s, p, o rdf.Term) rdf.Triple { return rdf.NewTriple(s, p, o) }

// LAIOntology returns the LAI ontology of the paper's Figure 2: the class
// lai:Observation specializes qb:Observation; lai:lai carries the
// measurement; time:hasTime and geo:hasGeometry/geo:asWKT attach the
// spatio-temporal context.
func LAIOntology() []rdf.Triple {
	obs := iri(rdf.NSLAI + "Observation")
	laiProp := iri(rdf.NSLAI + "lai")
	return []rdf.Triple{
		t(obs, iri(rdf.RDFType), iri(rdf.OWLClass)),
		t(obs, iri(rdf.RDFSSubClassOf), iri(rdf.NSQB+"Observation")),
		t(obs, iri(rdf.RDFSLabel), lit("LAI observation")),
		t(obs, iri(rdf.RDFSComment), lit("One leaf-area-index measurement of the Copernicus global land service")),
		t(laiProp, iri(rdf.RDFSLabel), lit("leaf area index")),
		t(laiProp, iri(rdf.RDFSDomain), obs),
		t(laiProp, iri(rdf.RDFSRange), iri(rdf.NSXSD+"float")),
		t(iri(rdf.NSTime+"hasTime"), iri(rdf.RDFSDomain), obs),
		t(iri(rdf.NSTime+"hasTime"), iri(rdf.RDFSRange), iri(rdf.NSXSD+"dateTime")),
		t(iri(rdf.NSGeo+"hasGeometry"), iri(rdf.RDFSDomain), obs),
		t(iri(rdf.NSGeo+"hasGeometry"), iri(rdf.RDFSRange), iri(rdf.NSSF+"Geometry")),
		t(iri(rdf.NSGeo+"asWKT"), iri(rdf.RDFSDomain), iri(rdf.NSSF+"Geometry")),
		t(iri(rdf.NSGeo+"asWKT"), iri(rdf.RDFSRange), iri(rdf.WKTLiteral)),
	}
}

// GADMOntology returns the GADM ontology of the paper's Figure 3:
// gadm:AdministrativeArea extends geo:Feature with a name and level.
func GADMOntology() []rdf.Triple {
	area := iri(rdf.NSGADM + "AdministrativeArea")
	return []rdf.Triple{
		t(area, iri(rdf.RDFType), iri(rdf.OWLClass)),
		t(area, iri(rdf.RDFSSubClassOf), iri(rdf.NSGeo+"Feature")),
		t(area, iri(rdf.RDFSLabel), lit("administrative area")),
		t(area, iri(rdf.RDFSComment), lit("An administrative division from the GADM dataset")),
		t(iri(rdf.NSGADM+"hasName"), iri(rdf.RDFSDomain), area),
		t(iri(rdf.NSGADM+"hasName"), iri(rdf.RDFSRange), iri(rdf.NSXSD+"string")),
		t(iri(rdf.NSGADM+"hasLevel"), iri(rdf.RDFSDomain), area),
		t(iri(rdf.NSGADM+"hasLevel"), iri(rdf.RDFSRange), iri(rdf.NSXSD+"integer")),
		t(iri(rdf.NSGADM+"hasGeometry"), iri(rdf.RDFSSubClassOf), iri(rdf.NSGeo+"hasGeometry")),
	}
}

// CORINEOntology returns the CORINE land cover ontology sketched in §4:
// clc:CorineArea specializes the INSPIRE land-cover unit; the property
// clc:hasCorineValue links areas to classes in the CORINE hierarchy, of
// which a representative subset is materialized (clc:greenUrbanAreas
// included, since Figure 4's discussion depends on it).
func CORINEOntology() []rdf.Triple {
	area := iri(rdf.NSCLC + "CorineArea")
	value := iri(rdf.NSCLC + "CorineValue")
	hasValue := iri(rdf.NSCLC + "hasCorineValue")
	out := []rdf.Triple{
		t(area, iri(rdf.RDFType), iri(rdf.OWLClass)),
		t(area, iri(rdf.RDFSSubClassOf), iri(rdf.NSInspire+"LandCoverUnit")),
		t(value, iri(rdf.RDFType), iri(rdf.OWLClass)),
		t(hasValue, iri(rdf.RDFSDomain), area),
		t(hasValue, iri(rdf.RDFSRange), value),
	}
	// Level-1 groups and a subset of level-3 classes.
	groups := map[string][]string{
		"ArtificialSurfaces": {"continuousUrbanFabric", "discontinuousUrbanFabric",
			"industrialOrCommercialUnits", "roadAndRailNetworks", "greenUrbanAreas",
			"sportAndLeisureFacilities"},
		"AgriculturalAreas": {"arableLand", "pastures", "vineyards", "oliveGroves"},
		"ForestAndSeminatural": {"broadLeavedForest", "coniferousForest",
			"naturalGrasslands"},
		"WaterBodies": {"waterBodies"},
	}
	for group, classes := range groups {
		g := iri(rdf.NSCLC + group)
		out = append(out,
			t(g, iri(rdf.RDFType), iri(rdf.OWLClass)),
			t(g, iri(rdf.RDFSSubClassOf), value),
		)
		for _, cls := range classes {
			c := iri(rdf.NSCLC + cls)
			out = append(out,
				t(c, iri(rdf.RDFType), iri(rdf.OWLClass)),
				t(c, iri(rdf.RDFSSubClassOf), g),
			)
		}
	}
	return out
}

// OSMOntology returns the OpenStreetMap ontology built for the case study
// (constructed "by following closely the description of OpenStreetMap data
// provided by Geofabrik").
func OSMOntology() []rdf.Triple {
	poi := iri(rdf.NSOSM + "PointOfInterest")
	out := []rdf.Triple{
		t(poi, iri(rdf.RDFType), iri(rdf.OWLClass)),
		t(poi, iri(rdf.RDFSSubClassOf), iri(rdf.NSGeo+"Feature")),
		t(iri(rdf.NSOSM+"poiType"), iri(rdf.RDFSDomain), poi),
		t(iri(rdf.NSOSM+"hasName"), iri(rdf.RDFSDomain), poi),
		t(iri(rdf.NSOSM+"hasName"), iri(rdf.RDFSRange), iri(rdf.NSXSD+"string")),
	}
	for _, cls := range []string{"park", "forest", "playground", "cemetery", "stadium", "garden"} {
		c := iri(rdf.NSOSM + cls)
		out = append(out,
			t(c, iri(rdf.RDFType), iri(rdf.OWLClass)),
			t(c, iri(rdf.RDFSSubClassOf), poi),
		)
	}
	return out
}

// UrbanAtlasOntology returns the Urban Atlas ontology used by the case
// study.
func UrbanAtlasOntology() []rdf.Triple {
	block := iri(rdf.NSUA + "UrbanBlock")
	out := []rdf.Triple{
		t(block, iri(rdf.RDFType), iri(rdf.OWLClass)),
		t(block, iri(rdf.RDFSSubClassOf), iri(rdf.NSInspire+"LandUseUnit")),
		t(iri(rdf.NSUA+"hasClass"), iri(rdf.RDFSDomain), block),
	}
	for _, cls := range []string{"continuousUrbanFabric", "discontinuousVeryLowDensityUrbanFabric",
		"industrialCommercialPublicMilitaryAndPrivateUnits", "greenUrbanAreas",
		"sportsAndLeisureFacilities", "forests", "orchards", "waterBodies"} {
		c := iri(rdf.NSUA + cls)
		out = append(out, t(c, iri(rdf.RDFType), iri(rdf.OWLClass)))
	}
	return out
}

// AllOntologies returns every ontology of the case study merged.
func AllOntologies() []rdf.Triple {
	var out []rdf.Triple
	out = append(out, LAIOntology()...)
	out = append(out, GADMOntology()...)
	out = append(out, CORINEOntology()...)
	out = append(out, OSMOntology()...)
	out = append(out, UrbanAtlasOntology()...)
	return out
}
