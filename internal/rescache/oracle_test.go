package rescache_test

// Cache-correctness differential oracle: randomized schedules of
// ingest / delete / reopen / promotion ticks / concurrent query
// batches run against memory and disk-reopened strabon stores behind
// an adaptive (promotable) source, and every answer the cache serves
// is compared canonically byte-for-byte against a fresh EvalSeed
// evaluation through the same source. The store is quiescent during
// each query batch (mutations and clock advances happen only between
// batches), so "cached answer == fresh evaluation" is an exact
// invariant, not a racy approximation. All timing runs on a fake
// clock and background promotions are awaited with Quiesce — zero
// real sleeps, deterministic under -race.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"applab/internal/faults"
	"applab/internal/rdf"
	"applab/internal/rescache"
	"applab/internal/segment"
	"applab/internal/sparql"
	"applab/internal/strabon"
	"applab/internal/telemetry"
)

var oracleQueries = []string{
	fmt.Sprintf(`SELECT ?s ?v WHERE { ?s <%slai> ?v }`, rdf.NSLAI),
	// Renamed variables: same plan key as the query above, so hits
	// exercise the column-remapping path.
	fmt.Sprintf(`SELECT ?a ?b WHERE { ?a <%slai> ?b }`, rdf.NSLAI),
	`SELECT ?s ?g WHERE { ?s geo:hasGeometry ?g }`,
	fmt.Sprintf(`SELECT ?s WHERE { ?s <%s> <%sPark> }`, rdf.RDFType, rdf.NSOSM),
	fmt.Sprintf(`SELECT ?s ?v WHERE { ?s <%slai> ?v . FILTER(?v > 5) }`, rdf.NSLAI),
	`ASK { ?s geo:hasGeometry ?g }`,
	fmt.Sprintf(`SELECT ?s ?v ?t WHERE { ?s <%slai> ?v . OPTIONAL { ?s <%shasTime> ?t } }`,
		rdf.NSLAI, rdf.NSTime),
	`SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }`,
}

// canon renders a result set order-independently: sorted rows of
// var=termKey pairs in projection order, plus the ASK boolean.
func canon(res *sparql.Results) string {
	if res == nil {
		return "<nil>"
	}
	rows := make([]string, len(res.Bindings))
	for i, b := range res.Bindings {
		var row []string
		for _, v := range res.Vars {
			if tm, ok := b[v]; ok {
				row = append(row, v+"="+tm.Key())
			}
		}
		rows[i] = strings.Join(row, "|")
	}
	sort.Strings(rows)
	return fmt.Sprintf("bool=%v vars=%v\n%s", res.Bool, res.Vars, strings.Join(rows, "\n"))
}

// oracleSource is a miniature adaptive source: it serves from the live
// store until the promoter flips it onto a materialized local copy,
// demoting when the live store's content stamp drifts. Its cache
// identity composes the live store's fingerprint, so a disk reopen
// (fresh instance, epoch restarted at zero) re-keys every entry
// instead of wrongly validating against the old epochs.
type oracleSource struct {
	p  *rescache.Promoter
	fp string

	mu    sync.Mutex
	live  *strabon.Store
	local *strabon.Store // nil unless a promotion has completed
}

const oracleRegion = "oracle/main"

func newOracleSource(live *strabon.Store, now func() time.Time) *oracleSource {
	o := &oracleSource{live: live, fp: rescache.NextFingerprint("oracle")}
	p := rescache.NewPromoter(2, time.Minute)
	p.Now = now
	p.Promote = o.promote
	p.Check = o.stamp
	p.OnDemote = func(string) {
		o.mu.Lock()
		o.local = nil
		o.mu.Unlock()
	}
	o.p = p
	return o
}

func (o *oracleSource) setLive(st *strabon.Store) {
	o.mu.Lock()
	o.live = st
	o.mu.Unlock()
}

func (o *oracleSource) liveStore() *strabon.Store {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.live
}

// stamp fingerprints the live store's content identity: instance plus
// epoch, so both mutations and reopens demote a promoted region.
func (o *oracleSource) stamp(string) (string, error) {
	live := o.liveStore()
	return fmt.Sprintf("%s@%d", live.Fingerprint(), live.DataEpoch()), nil
}

func (o *oracleSource) promote(region string) (string, error) {
	stamp, err := o.stamp(region)
	if err != nil {
		return "", err
	}
	live := o.liveStore()
	st := strabon.New()
	st.AddAll(live.Match(rdf.Term{}, rdf.Term{}, rdf.Term{}))
	if err := st.Err(); err != nil {
		return "", err
	}
	o.mu.Lock()
	o.local = st
	o.mu.Unlock()
	return stamp, nil
}

func (o *oracleSource) serving() *strabon.Store {
	if o.p.Promoted() {
		o.mu.Lock()
		local := o.local
		o.mu.Unlock()
		if local != nil {
			return local
		}
	}
	return o.liveStore()
}

func (o *oracleSource) Match(s, p, obj rdf.Term) []rdf.Triple {
	return o.serving().Match(s, p, obj)
}

// DataEpoch: promoter flips plus live mutations, both monotonic, so
// the sum moves on every event that could change served content.
func (o *oracleSource) DataEpoch() uint64 {
	return o.p.Epoch() + o.liveStore().DataEpoch()
}

func (o *oracleSource) Fingerprint() string {
	return o.fp + "|" + o.liveStore().Fingerprint()
}

// queryBatch runs each worker through its pre-drawn queries
// concurrently. Cache hits are the answers under test; misses are
// evaluated with the compiled engine and filled. Every answer —
// cached or fresh — must canonically equal a fresh EvalSeed
// evaluation through the same source.
func queryBatch(t *testing.T, rng *rand.Rand, cache *rescache.Cache, src *oracleSource, workers int) {
	perWorker := make([][]string, workers)
	for w := range perWorker {
		for i := 0; i < 3; i++ {
			perWorker[w] = append(perWorker[w], oracleQueries[rng.Intn(len(oracleQueries))])
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(qs []string) {
			defer wg.Done()
			for _, qstr := range qs {
				query, err := sparql.Parse(qstr)
				if err != nil {
					t.Errorf("parse %q: %v", qstr, err)
					return
				}
				res, fill, st := cache.Lookup(query, src)
				if st != rescache.Hit {
					res, err = query.EvalContext(context.Background(), src)
					if err != nil {
						t.Errorf("eval %q: %v", qstr, err)
						continue
					}
					fill.Store(res)
				}
				want, err := sparql.EvalSeed(src, qstr)
				if err != nil {
					t.Errorf("seed eval %q: %v", qstr, err)
					continue
				}
				if got, exp := canon(res), canon(want); got != exp {
					t.Errorf("%v answer for %q diverges from fresh EvalSeed:\n got: %s\nwant: %s",
						st, qstr, got, exp)
				}
			}
		}(perWorker[w])
	}
	wg.Wait()
}

// promotionTick advances the fake clock past the revalidation window,
// settles any due demotion, counts one use toward promotion, and waits
// out the background promotion it may have started.
func promotionTick(clock *faults.Clock, src *oracleSource) {
	clock.Advance(61 * time.Second)
	src.p.Promoted() // settle due revalidation (may demote) first
	src.p.Note(oracleRegion)
	src.p.Quiesce()
	src.p.Promoted() // settle the just-completed promotion's state
}

func runOracle(t *testing.T, seed int64, workers int, disk bool) {
	rng := rand.New(rand.NewSource(seed))
	clock := faults.NewClock(time.Date(2019, 3, 26, 9, 0, 0, 0, time.UTC))
	dir := t.TempDir()

	var live *strabon.Store
	var err error
	if disk {
		live, err = strabon.Open(dir, segment.Options{FlushEvery: 25, CompactAt: 3})
		if err != nil {
			t.Fatal(err)
		}
	} else {
		live = strabon.New()
	}
	defer func() { _ = live.Close() }()

	// Seed content: a park and a handful of observations.
	geo := func(local string) rdf.Term { return rdf.NewIRI(rdf.NSGeo + local) }
	park := rdf.NewIRI(rdf.NSOSM + "park1")
	parkGeom := rdf.NewIRI(rdf.NSOSM + "parkGeom1")
	live.AddAll([]rdf.Triple{
		rdf.NewTriple(park, rdf.NewIRI(rdf.RDFType), rdf.NewIRI(rdf.NSOSM+"Park")),
		rdf.NewTriple(park, geo("hasGeometry"), parkGeom),
		rdf.NewTriple(parkGeom, geo("asWKT"), rdf.NewWKT("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))")),
	})
	var added []rdf.Triple
	counter := 0
	genBatch := func() []rdf.Triple {
		counter++
		obs := rdf.NewIRI(fmt.Sprintf("%soracle%d", rdf.NSLAI, counter))
		gnode := rdf.NewIRI(fmt.Sprintf("%soracleGeom%d", rdf.NSLAI, counter))
		when := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(counter) * time.Hour)
		return []rdf.Triple{
			rdf.NewTriple(obs, rdf.NewIRI(rdf.NSLAI+"lai"), rdf.NewDouble(float64(rng.Intn(10)))),
			rdf.NewTriple(obs, geo("hasGeometry"), gnode),
			rdf.NewTriple(obs, rdf.NewIRI(rdf.NSTime+"hasTime"), rdf.NewDateTime(when)),
			rdf.NewTriple(gnode, geo("asWKT"), rdf.NewWKT(fmt.Sprintf("POINT (%d %d)", counter%10, counter%7))),
		}
	}
	for i := 0; i < 5; i++ {
		b := genBatch()
		live.AddAll(b)
		added = append(added, b...)
	}

	src := newOracleSource(live, clock.Now)
	reg := telemetry.NewRegistry()
	cache := rescache.New(32, 0)
	cache.Metrics = reg

	for step := 0; step < 60; step++ {
		switch pick := rng.Intn(10); {
		case pick < 3: // ingest
			b := genBatch()
			live.AddAll(b)
			added = append(added, b...)
		case pick < 5: // delete
			if len(added) > 0 {
				k := rng.Intn(len(added))
				live.Delete(added[k])
				added = append(added[:k], added[k+1:]...)
			}
		case pick < 6: // reopen (disk mode) — fresh instance, epoch reset
			if !disk {
				continue
			}
			if err := live.Close(); err != nil {
				t.Fatalf("step %d: close: %v", step, err)
			}
			live, err = strabon.Open(dir, segment.Options{FlushEvery: 25, CompactAt: 3})
			if err != nil {
				t.Fatalf("step %d: reopen: %v", step, err)
			}
			src.setLive(live)
		case pick < 7: // promotion tick
			promotionTick(clock, src)
		default:
			queryBatch(t, rng, cache, src, workers)
		}
		if err := live.Err(); err != nil {
			t.Fatalf("step %d: store error: %v", step, err)
		}
	}

	// Two quiescent identical batches at the end guarantee the run
	// exercised the hit path at least once.
	queryBatch(t, rand.New(rand.NewSource(seed)), cache, src, workers)
	queryBatch(t, rand.New(rand.NewSource(seed)), cache, src, workers)
	if hits := reg.Counter("rescache_hits_total").Value(); hits == 0 {
		t.Error("schedule never exercised the cache hit path")
	}
	t.Logf("hits=%d misses=%d stale=%d fills=%d promoted=%v",
		reg.Counter("rescache_hits_total").Value(),
		reg.Counter("rescache_misses_total").Value(),
		reg.Counter("rescache_stale_total").Value(),
		reg.Counter("rescache_fills_total").Value(),
		src.p.Promoted())
}

func TestCacheOracle(t *testing.T) {
	modes := []struct {
		name string
		disk bool
	}{{"memory", false}, {"disk", true}}
	for _, mode := range modes {
		for _, workers := range []int{1, 4} {
			for seed := int64(1); seed <= 3; seed++ {
				mode, workers, seed := mode, workers, seed
				t.Run(fmt.Sprintf("%s-w%d-seed%d", mode.name, workers, seed), func(t *testing.T) {
					runOracle(t, seed, workers, mode.disk)
				})
			}
		}
	}
}
