package rescache

import (
	"sync"
	"time"

	"applab/internal/telemetry"
)

// regionState is the promotion lifecycle of one hot region.
type regionState int

const (
	regionCold regionState = iota
	regionPromoting
	regionPromoted
)

type region struct {
	state     regionState
	uses      int
	stamp     string // upstream change stamp captured at promotion
	lastCheck time.Time
}

// Promoter tracks access counts for remote regions (an opaque key such
// as "dataset/var?w=window") and drives the cold → promoting → promoted
// → demoted state machine:
//
//   - Note(region) counts a use; at PromoteAfter uses the region enters
//     promoting and Promote runs in a background goroutine (callers keep
//     serving the virtual/stale path meanwhile).
//   - Promoted() reports whether every tracked region is promoted; it
//     also kicks lazy revalidation: when RevalidateEvery has elapsed
//     since the last upstream check, Check(region) re-reads the upstream
//     change stamp and a mismatch demotes everything (next uses re-count
//     toward re-promotion). Check errors keep serving the promoted copy
//     and retry after another RevalidateEvery (stale-while-error).
//   - Epoch() is bumped on every completed promotion and demotion, so a
//     result cache layered on a promoter-backed source invalidates on
//     every serving-mode flip.
//
// There are no timers: time only advances through the Now func, and
// Quiesce() waits for in-flight background promotions — tests run with
// a fake clock and zero real sleeps.
type Promoter struct {
	// PromoteAfter is the use count that triggers promotion (min 1).
	PromoteAfter int
	// RevalidateEvery is how long a promoted region may serve locally
	// before the upstream stamp is re-checked. Zero disables demotion.
	RevalidateEvery time.Duration
	// Promote materializes the region and returns the upstream change
	// stamp it was built from. Runs on a background goroutine.
	Promote func(region string) (stamp string, err error)
	// Check re-reads the upstream change stamp for revalidation.
	Check func(region string) (stamp string, err error)
	// OnDemote, if set, runs after a demotion completes (outside locks).
	OnDemote func(region string)
	// Now is the clock; defaults to time.Now. Metrics records
	// promotion_* series.
	Now     func() time.Time
	Metrics *telemetry.Registry

	mu      sync.Mutex
	regions map[string]*region
	epoch   uint64
	wg      sync.WaitGroup
}

// NewPromoter returns a promoter that promotes after promoteAfter uses
// and revalidates promoted regions every revalidate.
func NewPromoter(promoteAfter int, revalidate time.Duration) *Promoter {
	if promoteAfter < 1 {
		promoteAfter = 1
	}
	return &Promoter{
		PromoteAfter:    promoteAfter,
		RevalidateEvery: revalidate,
		Now:             time.Now,
		regions:         make(map[string]*region),
	}
}

func (p *Promoter) now() time.Time {
	if p.Now != nil {
		return p.Now()
	}
	return time.Now()
}

// Note records one use of a region, starting a background promotion
// when the threshold is reached.
func (p *Promoter) Note(reg string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	r := p.regions[reg]
	if r == nil {
		r = &region{}
		p.regions[reg] = r
	}
	if r.state != regionCold {
		p.mu.Unlock()
		return
	}
	r.uses++
	start := r.uses >= p.PromoteAfter && p.Promote != nil
	if start {
		r.state = regionPromoting
		p.wg.Add(1)
	}
	p.mu.Unlock()
	if !start {
		return
	}
	p.notePromotionStarted()
	go p.runPromotion(reg)
}

func (p *Promoter) runPromotion(reg string) {
	defer p.wg.Done()
	stamp, err := p.Promote(reg)
	p.mu.Lock()
	r := p.regions[reg]
	if r == nil || r.state != regionPromoting {
		p.mu.Unlock()
		return
	}
	if err != nil {
		r.state = regionCold
		r.uses = 0
		p.mu.Unlock()
		p.notePromotionFailed()
		return
	}
	r.state = regionPromoted
	r.stamp = stamp
	r.lastCheck = p.now()
	p.epoch++
	n := p.promotedLocked()
	p.mu.Unlock()
	p.notePromotionDone()
	p.setPromotedRegions(n)
}

func (p *Promoter) promotedLocked() int {
	n := 0
	for _, r := range p.regions {
		if r.state == regionPromoted {
			n++
		}
	}
	return n
}

// Promoted reports whether the region set is non-empty and every region
// is promoted — i.e. the materialized copy covers the whole working
// set. It also drives lazy revalidation off the serve path.
func (p *Promoter) Promoted() bool {
	if p == nil {
		return false
	}
	p.revalidate()
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.regions) == 0 {
		return false
	}
	for _, r := range p.regions {
		if r.state != regionPromoted {
			return false
		}
	}
	return true
}

// revalidate re-checks upstream stamps for promoted regions whose
// RevalidateEvery has elapsed. Checks run synchronously (they are cheap
// stamp reads, not materializations) but outside p.mu.
func (p *Promoter) revalidate() {
	if p.RevalidateEvery <= 0 || p.Check == nil {
		return
	}
	now := p.now()
	p.mu.Lock()
	var due []string
	for name, r := range p.regions {
		if r.state == regionPromoted && now.Sub(r.lastCheck) >= p.RevalidateEvery {
			r.lastCheck = now // back off even on error (stale-while-error)
			due = append(due, name)
		}
	}
	p.mu.Unlock()
	for _, name := range due {
		p.noteRevalidation()
		stamp, err := p.Check(name)
		if err != nil {
			continue // keep serving the promoted copy
		}
		p.mu.Lock()
		r := p.regions[name]
		changed := r != nil && r.state == regionPromoted && r.stamp != stamp
		p.mu.Unlock()
		if changed {
			p.Demote(name)
		}
	}
}

// Demote drops a region (and, because a partial promotion set cannot be
// served, callers fall back to the virtual path until it re-promotes).
func (p *Promoter) Demote(reg string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	r := p.regions[reg]
	if r == nil || r.state != regionPromoted {
		p.mu.Unlock()
		return
	}
	r.state = regionCold
	r.uses = 0
	r.stamp = ""
	p.epoch++
	n := p.promotedLocked()
	p.mu.Unlock()
	p.noteDemotion()
	p.setPromotedRegions(n)
	if p.OnDemote != nil {
		p.OnDemote(reg)
	}
}

// Epoch counts completed promotions + demotions; it is a component of
// the serving source's DataEpoch so mode flips invalidate result-cache
// entries.
func (p *Promoter) Epoch() uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// Regions returns the number of tracked regions.
func (p *Promoter) Regions() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.regions)
}

// Quiesce blocks until all in-flight background promotions finish —
// the deterministic-test hook replacing any real sleep.
func (p *Promoter) Quiesce() {
	if p == nil {
		return
	}
	p.wg.Wait()
}
