// Package rescache is a query-result cache keyed by the canonicalized
// compiled plan (internal/sparql PlanKey) combined with a source
// fingerprint. Entries are validated against the source's data epoch —
// a monotonic counter the source bumps on every mutation — so ingest
// invalidates cached answers without any explicit hook call. Sources
// that expose no epoch fall back to a TTL bound.
//
// Correctness contract:
//
//   - For an Epocher source the epoch is read BEFORE evaluation and
//     stored with the entry. If a write lands mid-evaluation the stored
//     epoch is already behind, so the entry can never validate — torn
//     reads are conservatively treated as stale.
//   - A source whose evaluation itself advances the epoch (the OBDA
//     virtual graph refreshes its window cache inside eval) declares
//     that with EvalEpocher; for those the epoch is captured at Fill
//     time instead. That is sound because such evaluations are
//     serialized by the source and are a pure function of its state.
//   - Cached *sparql.Results are shared read-only. Callers must not
//     mutate a returned result set.
package rescache

import (
	"container/list"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"applab/internal/sparql"
	"applab/internal/telemetry"
)

// Epocher is implemented by sources whose data version is observable as
// a monotonic counter.
type Epocher interface {
	DataEpoch() uint64
}

// Fingerprinter distinguishes source *instances*. A fingerprint must be
// unique per logical dataset instance: reopening a store from disk must
// yield a fresh fingerprint (epochs restart at zero, so stale entries
// from the previous instance must be unreachable).
type Fingerprinter interface {
	Fingerprint() string
}

// EvalEpocher marks sources whose evaluation advances their own epoch
// (e.g. a virtual graph that refreshes its backing cache during eval).
// For these the cache captures the epoch after evaluation, at Fill time.
type EvalEpocher interface {
	Epocher
	EpochAdvancesOnEval()
}

// Status classifies a Lookup outcome.
type Status int

const (
	// Bypass: the cache declined (nil cache, uncacheable query/source).
	Bypass Status = iota
	// Miss: no valid entry; caller should evaluate and Fill.
	Miss
	// Hit: a validated entry was returned.
	Hit
	// Stale: an entry exists but failed validation (epoch moved or TTL
	// expired). Lookup treats it as a miss; LookupStale serves it.
	Stale
)

func (s Status) String() string {
	switch s {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Stale:
		return "stale"
	default:
		return "bypass"
	}
}

// instanceSeq feeds process-unique fallback fingerprints.
var instanceSeq atomic.Uint64

// NextFingerprint returns a process-unique fingerprint with the given
// prefix. Sources use it to mint per-instance identities.
func NextFingerprint(prefix string) string {
	return prefix + "-" + strconv.FormatUint(instanceSeq.Add(1), 10)
}

type entry struct {
	res      *sparql.Results
	varMap   map[string]string // original var -> canonical slot, from fill-time query
	epoch    uint64
	hasEpoch bool
	filledAt time.Time
	cost     int64
	elem     *list.Element
}

// Fill stores an evaluation result for the key that missed. A zero Fill
// (from a Bypass) is a no-op.
type Fill struct {
	c     *Cache
	key   string
	vm    map[string]string
	src   sparql.Source
	epoch uint64 // pre-read epoch (ignored for EvalEpocher sources)
	has   bool
	eval  bool // capture epoch at Fill time (EvalEpocher)
}

// Cache is a bounded, LRU-evicting, epoch-validated result cache. The
// zero value is not usable; call New.
type Cache struct {
	capacity int
	ttl      time.Duration

	// Now is the clock used for TTL checks; defaults to time.Now.
	// Swap for a fake clock in tests.
	Now func() time.Time

	// Metrics, when set, records cache_* counters.
	Metrics *telemetry.Registry

	mu       sync.Mutex
	entries  map[string]*entry
	lru      *list.List // front = most recent; values are keys
	maxBytes int64
	bytes    int64
}

// New returns a cache holding at most capacity entries, each valid for
// at most ttl (ttl <= 0 means no TTL bound for epoch-validated entries
// and a 1-minute default bound for epochless ones).
func New(capacity int, ttl time.Duration) *Cache {
	if capacity <= 0 {
		capacity = 256
	}
	return &Cache{
		capacity: capacity,
		ttl:      ttl,
		Now:      time.Now,
		entries:  make(map[string]*entry),
		lru:      list.New(),
	}
}

const epochlessTTL = time.Minute

// SetMaxBytes bounds the cache by total entry cost (the encoded answer
// size, see EncodedSize) in addition to the entry-count capacity.
// n <= 0 removes the byte bound. Shrinking below the current residency
// evicts from the LRU tail immediately.
func (c *Cache) SetMaxBytes(n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.maxBytes = n
	c.evictLocked()
	resident := len(c.entries)
	bytes := c.bytes
	c.mu.Unlock()
	c.setEntries(resident)
	c.setBytes(bytes)
}

// MaxBytes reports the current byte budget (0 = unbounded).
func (c *Cache) MaxBytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxBytes
}

// Bytes reports the summed cost of resident entries.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// evictLocked pops LRU-tail entries until both bounds hold. A single
// entry costing more than the whole byte budget is evicted too: the
// cache honors its budget rather than pinning one oversized answer.
func (c *Cache) evictLocked() {
	for len(c.entries) > c.capacity || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		back := c.lru.Back()
		if back == nil {
			break
		}
		k := back.Value.(string)
		c.lru.Remove(back)
		c.bytes -= c.entries[k].cost
		delete(c.entries, k)
		c.noteEviction()
	}
}

// EncodedSize is the byte-budget cost of a result set: the size of its
// answer encoded in the compact form `var=value` per cell plus row
// framing — a stable, allocation-free stand-in for the serialized
// response size.
func EncodedSize(res *sparql.Results) int64 {
	if res == nil {
		return 0
	}
	const cellOverhead, rowOverhead = 4, 8
	n := int64(rowOverhead) // Bool / head framing
	for _, v := range res.Vars {
		n += int64(len(v)) + cellOverhead
	}
	for _, b := range res.Bindings {
		n += rowOverhead
		for v, t := range b {
			n += int64(len(v)+len(t.Value)+len(t.Datatype)+len(t.Lang)) + cellOverhead
		}
	}
	for _, t := range res.Graph {
		n += rowOverhead
		n += int64(len(t.S.Value) + len(t.P.Value) + len(t.O.Value) + len(t.O.Datatype) + len(t.O.Lang))
	}
	return n
}

// key derives the cache key for a query against a source, or "" when
// the pair is not cacheable (no fingerprint — identity unknown).
func (c *Cache) key(q *sparql.Query, src sparql.Source) (string, map[string]string) {
	fp, ok := src.(Fingerprinter)
	if !ok {
		return "", nil
	}
	cp := q.PlanKey()
	return fp.Fingerprint() + "\x00" + cp.Key, cp.VarMap
}

// Lookup checks for a cached answer to q over src. On Hit the returned
// results are ready to serve (column names remapped to q's variable
// spelling). On Miss/Stale/Bypass the caller evaluates and, for
// Miss/Stale, calls Fill.Store with the fresh result.
func (c *Cache) Lookup(q *sparql.Query, src sparql.Source) (*sparql.Results, Fill, Status) {
	if c == nil {
		return nil, Fill{}, Bypass
	}
	key, vm := c.key(q, src)
	if key == "" {
		c.noteBypass()
		return nil, Fill{}, Bypass
	}

	fill := Fill{c: c, key: key, vm: vm, src: src}
	if ee, ok := src.(EvalEpocher); ok {
		_ = ee
		fill.eval = true
	} else if ep, ok := src.(Epocher); ok {
		fill.epoch = ep.DataEpoch()
		fill.has = true
	}

	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.noteMiss()
		return nil, fill, Miss
	}
	valid := c.validLocked(e, src)
	if !valid {
		c.mu.Unlock()
		c.noteStale()
		return nil, fill, Stale
	}
	c.lru.MoveToFront(e.elem)
	res, evm := e.res, e.varMap
	c.mu.Unlock()

	out := remap(res, evm, vm, q)
	if out == nil {
		// Slot structure mismatch should be impossible for equal keys;
		// degrade to a miss rather than serve a wrong shape.
		c.noteMiss()
		return nil, fill, Miss
	}
	c.noteHit()
	return out, fill, Hit
}

// LookupStale returns a cached entry even if its epoch is behind or its
// TTL has lapsed — the degraded-serving path. It never returns entries
// from a different source instance (fingerprints see to that).
func (c *Cache) LookupStale(q *sparql.Query, src sparql.Source) (*sparql.Results, bool) {
	if c == nil {
		return nil, false
	}
	key, vm := c.key(q, src)
	if key == "" {
		return nil, false
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.lru.MoveToFront(e.elem)
	res, evm := e.res, e.varMap
	c.mu.Unlock()
	out := remap(res, evm, vm, q)
	if out == nil {
		return nil, false
	}
	c.noteStaleServed()
	return out, true
}

// validLocked reports whether e is still serveable as fresh.
func (c *Cache) validLocked(e *entry, src sparql.Source) bool {
	if e.hasEpoch {
		ep, ok := src.(Epocher)
		if !ok || ep.DataEpoch() != e.epoch {
			return false
		}
		if c.ttl > 0 && c.Now().Sub(e.filledAt) >= c.ttl {
			return false
		}
		return true
	}
	ttl := c.ttl
	if ttl <= 0 {
		ttl = epochlessTTL
	}
	return c.Now().Sub(e.filledAt) < ttl
}

// Store records res for the looked-up key. Concurrent fills of the same
// key are last-write-wins; both results are correct answers for their
// respective epochs, and validation re-checks on every hit.
func (f Fill) Store(res *sparql.Results) {
	if f.c == nil || res == nil {
		return
	}
	e := &entry{res: res, varMap: f.vm, epoch: f.epoch, hasEpoch: f.has, filledAt: f.c.Now(), cost: EncodedSize(res)}
	if f.eval {
		if ep, ok := f.src.(Epocher); ok {
			e.epoch = ep.DataEpoch()
			e.hasEpoch = true
		}
	}
	c := f.c
	c.mu.Lock()
	if old, ok := c.entries[f.key]; ok {
		c.lru.Remove(old.elem)
		c.bytes -= old.cost
	}
	e.elem = c.lru.PushFront(f.key)
	c.entries[f.key] = e
	c.bytes += e.cost
	c.evictLocked()
	n := len(c.entries)
	bytes := c.bytes
	c.mu.Unlock()
	c.noteFill()
	c.setEntries(n)
	c.setBytes(bytes)
}

// Len reports the number of resident entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every entry.
func (c *Cache) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.entries = make(map[string]*entry)
	c.lru.Init()
	c.bytes = 0
	c.mu.Unlock()
	c.setEntries(0)
	c.setBytes(0)
}

// remap rebuilds a cached result under the variable spelling of the
// querying (lookup-side) query. entryVM maps fill-time names to slots;
// lookupVM maps lookup-time names to the same slots. Returns nil if the
// slot sets don't line up (defensive; equal keys imply equal slots).
func remap(res *sparql.Results, entryVM, lookupVM map[string]string, q *sparql.Query) *sparql.Results {
	if res == nil {
		return nil
	}
	// ASK / CONSTRUCT results carry no variable columns.
	if res.Graph != nil || len(res.Vars) == 0 && len(res.Bindings) == 0 {
		return res
	}
	// Fast path: identical spelling end to end → share the entry.
	same := len(entryVM) == len(lookupVM)
	if same {
		for name, slot := range entryVM {
			if lookupVM[name] != slot {
				same = false
				break
			}
		}
	}
	if same {
		return res
	}
	// slot -> lookup-side name
	fromSlot := make(map[string]string, len(lookupVM))
	for name, slot := range lookupVM {
		fromSlot[slot] = name
	}
	trans := make(map[string]string, len(entryVM)) // entry name -> lookup name
	for name, slot := range entryVM {
		ln, ok := fromSlot[slot]
		if !ok {
			return nil
		}
		trans[name] = ln
	}
	out := &sparql.Results{Bool: res.Bool, Graph: res.Graph}
	out.Vars = make([]string, len(res.Vars))
	for i, v := range res.Vars {
		ln, ok := trans[v]
		if !ok {
			return nil
		}
		out.Vars[i] = ln
	}
	out.Bindings = make([]sparql.Binding, len(res.Bindings))
	for i, b := range res.Bindings {
		nb := make(sparql.Binding, len(b))
		for v, t := range b {
			ln, ok := trans[v]
			if !ok {
				return nil
			}
			nb[ln] = t
		}
		out.Bindings[i] = nb
	}
	return out
}
