package rescache

// Byte-budget eviction tests: entry cost is the encoded answer size,
// the summed cost never exceeds the budget after a fill, eviction is
// LRU-ordered, shrinking the budget evicts immediately, and an answer
// larger than the whole budget is refused residency rather than pinned.

import (
	"fmt"
	"strings"
	"testing"

	"applab/internal/sparql"
	"applab/internal/telemetry"
)

// fillDistinct evaluates nq distinct queries through the cache, each
// answered with a payload of roughly payload bytes.
func fillDistinct(t *testing.T, c *Cache, src *memSource, nq, payload int) []string {
	t.Helper()
	queries := make([]string, nq)
	for i := 0; i < nq; i++ {
		p := fmt.Sprintf("http://ex/p%d", i)
		src.Add(triple("http://ex/s", p, strings.Repeat("x", payload)))
		queries[i] = fmt.Sprintf(`SELECT ?o WHERE { ?s <%s> ?o }`, p)
		if _, st := evalThrough(t, c, src, queries[i]); st != Miss && st != Stale {
			t.Fatalf("query %d: status %v", i, st)
		}
	}
	return queries
}

func TestEncodedSize(t *testing.T) {
	if EncodedSize(nil) != 0 {
		t.Fatal("nil result has nonzero size")
	}
	small := &sparql.Results{Vars: []string{"o"}}
	big := &sparql.Results{Vars: []string{"o"}}
	big.Bindings = []sparql.Binding{{"o": triple("a", "b", strings.Repeat("x", 1000)).O}}
	if EncodedSize(big) <= EncodedSize(small)+1000 {
		t.Fatalf("cost not payload-proportional: big=%d small=%d", EncodedSize(big), EncodedSize(small))
	}
}

func TestByteBudgetEviction(t *testing.T) {
	src := newMemSource()
	reg := telemetry.NewRegistry()
	c := New(100, 0) // count capacity far above what the byte budget allows
	c.Metrics = reg
	c.SetMaxBytes(2000)

	queries := fillDistinct(t, c, src, 8, 400)
	if c.Bytes() > 2000 {
		t.Fatalf("resident bytes %d exceed the 2000 budget", c.Bytes())
	}
	if c.Len() >= 8 {
		t.Fatalf("no eviction: %d entries resident", c.Len())
	}
	snap := reg.Snapshot()
	if snap.Counters["rescache_evictions_total"] == 0 {
		t.Fatal("evictions not counted")
	}
	if snap.Gauges["rescache_bytes"] != float64(c.Bytes()) {
		t.Fatalf("rescache_bytes gauge %v != %d", snap.Gauges["rescache_bytes"], c.Bytes())
	}
	// LRU order: the oldest query is gone, the newest still hits.
	if _, _, st := c.Lookup(parseQ(t, queries[0]), src); st != Miss {
		t.Fatalf("oldest entry survived a byte eviction: %v", st)
	}
	if _, _, st := c.Lookup(parseQ(t, queries[7]), src); st != Hit {
		t.Fatalf("newest entry evicted: %v", st)
	}
}

func TestByteBudgetShrinkAndOversized(t *testing.T) {
	src := newMemSource()
	c := New(100, 0)
	fillDistinct(t, c, src, 4, 100)
	resident := c.Len()
	if resident != 4 {
		t.Fatalf("setup: %d entries", resident)
	}
	// Shrinking evicts immediately, without waiting for the next fill.
	c.SetMaxBytes(c.Bytes() / 2)
	if c.Len() >= resident || c.Bytes() > c.MaxBytes() {
		t.Fatalf("shrink did not evict: %d entries, %d bytes", c.Len(), c.Bytes())
	}
	// An answer bigger than the whole budget is not pinned: the fill
	// self-evicts and the cache stays within budget.
	src.Add(triple("http://ex/s", "http://ex/huge", strings.Repeat("y", 4096)))
	huge := `SELECT ?o WHERE { ?s <http://ex/huge> ?o }`
	evalThrough(t, c, src, huge)
	if c.Bytes() > c.MaxBytes() {
		t.Fatalf("oversized answer pinned: %d bytes > budget %d", c.Bytes(), c.MaxBytes())
	}
	if _, _, st := c.Lookup(parseQ(t, huge), src); st == Hit {
		t.Fatal("oversized answer resident")
	}
	// Removing the bound restores count-only behaviour.
	c.SetMaxBytes(0)
	evalThrough(t, c, src, huge)
	if _, _, st := c.Lookup(parseQ(t, huge), src); st != Hit {
		t.Fatalf("unbounded cache refused the entry: %v", st)
	}
}
