package rescache

// Metric helpers: one per series, each owning its name literal (the
// applab-lint telemetry checker enforces one registration site per
// name). All are nil-safe through the registry.

func (c *Cache) noteHit() {
	if c.Metrics != nil {
		c.Metrics.Counter("rescache_hits_total").Inc()
	}
}

func (c *Cache) noteMiss() {
	if c.Metrics != nil {
		c.Metrics.Counter("rescache_misses_total").Inc()
	}
}

func (c *Cache) noteStale() {
	if c.Metrics != nil {
		c.Metrics.Counter("rescache_stale_total").Inc()
	}
}

func (c *Cache) noteBypass() {
	if c.Metrics != nil {
		c.Metrics.Counter("rescache_bypass_total").Inc()
	}
}

func (c *Cache) noteFill() {
	if c.Metrics != nil {
		c.Metrics.Counter("rescache_fills_total").Inc()
	}
}

func (c *Cache) noteEviction() {
	if c.Metrics != nil {
		c.Metrics.Counter("rescache_evictions_total").Inc()
	}
}

func (c *Cache) noteStaleServed() {
	if c.Metrics != nil {
		c.Metrics.Counter("rescache_stale_served_total").Inc()
	}
}

func (c *Cache) setEntries(n int) {
	if c.Metrics != nil {
		c.Metrics.Gauge("rescache_entries").Set(float64(n))
	}
}

func (c *Cache) setBytes(n int64) {
	if c.Metrics != nil {
		c.Metrics.Gauge("rescache_bytes").Set(float64(n))
	}
}

func (p *Promoter) notePromotionStarted() {
	if p.Metrics != nil {
		p.Metrics.Counter("promotion_started_total").Inc()
	}
}

func (p *Promoter) notePromotionDone() {
	if p.Metrics != nil {
		p.Metrics.Counter("promotion_completed_total").Inc()
	}
}

func (p *Promoter) notePromotionFailed() {
	if p.Metrics != nil {
		p.Metrics.Counter("promotion_failed_total").Inc()
	}
}

func (p *Promoter) noteDemotion() {
	if p.Metrics != nil {
		p.Metrics.Counter("promotion_demotions_total").Inc()
	}
}

func (p *Promoter) noteRevalidation() {
	if p.Metrics != nil {
		p.Metrics.Counter("promotion_revalidations_total").Inc()
	}
}

func (p *Promoter) setPromotedRegions(n int) {
	if p.Metrics != nil {
		p.Metrics.Gauge("promotion_promoted_regions").Set(float64(n))
	}
}
