package rescache

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"applab/internal/rdf"
	"applab/internal/sparql"
	"applab/internal/telemetry"
)

// memSource is a tiny epoch-tracking in-memory source.
type memSource struct {
	mu      sync.Mutex
	triples []rdf.Triple
	epoch   uint64
	fp      string
}

func newMemSource() *memSource {
	return &memSource{fp: NextFingerprint("mem")}
}

func (m *memSource) Add(t rdf.Triple) {
	m.mu.Lock()
	m.triples = append(m.triples, t)
	m.epoch++
	m.mu.Unlock()
}

func (m *memSource) Match(s, p, o rdf.Term) []rdf.Triple {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []rdf.Triple
	for _, t := range m.triples {
		if (s.Value == "" || t.S == s) && (p.Value == "" || t.P == p) && (o.Value == "" || t.O == o) {
			out = append(out, t)
		}
	}
	return out
}

func (m *memSource) DataEpoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

func (m *memSource) Fingerprint() string { return m.fp }

func triple(s, p, o string) rdf.Triple {
	return rdf.Triple{S: rdf.NewIRI(s), P: rdf.NewIRI(p), O: rdf.NewLiteral(o)}
}

const qBase = `SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }`

func parseQ(t *testing.T, s string) *sparql.Query {
	t.Helper()
	q, err := sparql.Parse(s)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return q
}

// evalThrough runs the cache protocol like a real caller would.
func evalThrough(t *testing.T, c *Cache, src *memSource, query string) (*sparql.Results, Status) {
	t.Helper()
	q := parseQ(t, query)
	if res, _, st := c.Lookup(q, src); st == Hit {
		return res, st
	} else if st == Bypass {
		t.Fatalf("unexpected bypass")
	}
	_, fill, st := c.Lookup(q, src) // deliberate double-lookup is fine; returns same status
	res, err := q.Eval(src)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	fill.Store(res)
	return res, st
}

func TestCacheMissHitInvalidate(t *testing.T) {
	src := newMemSource()
	src.Add(triple("http://ex/a", "http://ex/p", "1"))
	c := New(16, 0)

	q := parseQ(t, qBase)
	if _, _, st := c.Lookup(q, src); st != Miss {
		t.Fatalf("first lookup: got %v, want Miss", st)
	}
	_, fill, _ := c.Lookup(q, src)
	res, err := q.Eval(src)
	if err != nil {
		t.Fatal(err)
	}
	fill.Store(res)

	got, _, st := c.Lookup(q, src)
	if st != Hit {
		t.Fatalf("second lookup: got %v, want Hit", st)
	}
	if len(got.Bindings) != 1 {
		t.Fatalf("wrong cached rows: %+v", got.Bindings)
	}

	// Ingest bumps the epoch: entry must go stale.
	src.Add(triple("http://ex/b", "http://ex/p", "2"))
	if _, _, st := c.Lookup(q, src); st != Stale {
		t.Fatalf("after ingest: got %v, want Stale", st)
	}
	// Refill validates again.
	_, fill, _ = c.Lookup(q, src)
	res, _ = q.Eval(src)
	fill.Store(res)
	got, _, st = c.Lookup(q, src)
	if st != Hit || len(got.Bindings) != 2 {
		t.Fatalf("refill: st=%v rows=%d", st, len(got.Bindings))
	}
}

func TestCacheRenamedQueryHits(t *testing.T) {
	src := newMemSource()
	src.Add(triple("http://ex/a", "http://ex/p", "1"))
	c := New(16, 0)

	if _, st := evalThrough(t, c, src, qBase); st != Miss {
		t.Fatalf("expected miss")
	}
	// Same shape, different variable names: must hit, with remapped columns.
	q2 := parseQ(t, `SELECT ?subj ?val WHERE { ?subj <http://ex/p> ?val }`)
	got, _, st := c.Lookup(q2, src)
	if st != Hit {
		t.Fatalf("renamed lookup: got %v, want Hit", st)
	}
	if len(got.Vars) != 2 || got.Vars[0] != "subj" || got.Vars[1] != "val" {
		t.Fatalf("columns not remapped: %v", got.Vars)
	}
	if got.Bindings[0]["subj"].Value != "http://ex/a" || got.Bindings[0]["val"].Value != "1" {
		t.Fatalf("row not remapped: %+v", got.Bindings[0])
	}
	// Fresh eval must agree exactly.
	want, err := q2.Eval(src)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", want.Bindings) != fmt.Sprintf("%+v", got.Bindings) {
		t.Fatalf("cached != fresh:\n  %+v\n  %+v", got.Bindings, want.Bindings)
	}
}

func TestCacheDistinctSourcesDoNotShare(t *testing.T) {
	a, b := newMemSource(), newMemSource()
	a.Add(triple("http://ex/a", "http://ex/p", "1"))
	c := New(16, 0)
	evalThrough(t, c, a, qBase)
	if _, _, st := c.Lookup(parseQ(t, qBase), b); st != Miss {
		t.Fatalf("entry leaked across source instances: %v", st)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	src := newMemSource()
	src.Add(triple("http://ex/a", "http://ex/p", "1"))
	now := time.Unix(1000, 0)
	c := New(16, 30*time.Second)
	c.Now = func() time.Time { return now }

	evalThrough(t, c, src, qBase)
	if _, _, st := c.Lookup(parseQ(t, qBase), src); st != Hit {
		t.Fatalf("want hit before expiry")
	}
	now = now.Add(31 * time.Second)
	if _, _, st := c.Lookup(parseQ(t, qBase), src); st != Stale {
		t.Fatalf("want stale after ttl")
	}
}

// fpOnlySource has a fingerprint but no epoch: TTL is the only bound.
type fpOnlySource struct {
	src *memSource
}

func (f fpOnlySource) Match(s, p, o rdf.Term) []rdf.Triple { return f.src.Match(s, p, o) }
func (f fpOnlySource) Fingerprint() string                 { return f.src.fp }

func TestCacheEpochlessUsesTTL(t *testing.T) {
	inner := newMemSource()
	inner.Add(triple("http://ex/a", "http://ex/p", "1"))
	src := fpOnlySource{src: inner}
	now := time.Unix(1000, 0)
	c := New(16, 0) // no explicit ttl → epochless default bound
	c.Now = func() time.Time { return now }

	q := parseQ(t, qBase)
	_, fill, st := c.Lookup(q, src)
	if st != Miss {
		t.Fatalf("want miss")
	}
	res, _ := q.Eval(src)
	fill.Store(res)
	if _, _, st := c.Lookup(q, src); st != Hit {
		t.Fatalf("want hit inside default ttl")
	}
	now = now.Add(2 * time.Minute)
	if _, _, st := c.Lookup(q, src); st != Stale {
		t.Fatalf("want stale past default ttl")
	}
}

// evalSource mutates its own epoch during Match, like the OBDA virtual
// graph; it declares EvalEpocher so fills capture the post-eval epoch.
type evalSource struct {
	*memSource
}

func (evalSource) EpochAdvancesOnEval() {}

func (e evalSource) Match(s, p, o rdf.Term) []rdf.Triple {
	e.mu.Lock()
	e.epoch++ // self-advance, as a window-cache refresh would
	e.mu.Unlock()
	return e.memSource.Match(s, p, o)
}

func TestCacheEvalEpocherNoDoubleMiss(t *testing.T) {
	src := evalSource{newMemSource()}
	src.memSource.triples = append(src.memSource.triples, triple("http://ex/a", "http://ex/p", "1"))
	c := New(16, 0)

	q := parseQ(t, qBase)
	_, fill, st := c.Lookup(q, src)
	if st != Miss {
		t.Fatalf("want miss")
	}
	res, err := q.Eval(src) // advances the epoch
	if err != nil {
		t.Fatal(err)
	}
	fill.Store(res) // must capture the post-eval epoch
	if _, _, st := c.Lookup(q, src); st != Hit {
		t.Fatalf("EvalEpocher fill did not validate: got %v (double-miss bug)", st)
	}
	// External mutation still invalidates.
	src.Add(triple("http://ex/b", "http://ex/p", "2"))
	if _, _, st := c.Lookup(q, src); st != Stale {
		t.Fatalf("want stale after external mutation")
	}
}

func TestCacheMidEvalWriteNeverValidates(t *testing.T) {
	src := newMemSource()
	src.Add(triple("http://ex/a", "http://ex/p", "1"))
	c := New(16, 0)

	q := parseQ(t, qBase)
	_, fill, _ := c.Lookup(q, src)
	res, _ := q.Eval(src)
	// A write lands between eval and fill (models a mid-eval write): the
	// stored pre-read epoch is behind, so the entry must never validate.
	src.Add(triple("http://ex/b", "http://ex/p", "2"))
	fill.Store(res)
	if _, _, st := c.Lookup(q, src); st != Stale {
		t.Fatalf("torn fill validated: %v", st)
	}
}

func TestCacheLookupStale(t *testing.T) {
	src := newMemSource()
	src.Add(triple("http://ex/a", "http://ex/p", "1"))
	c := New(16, 0)
	evalThrough(t, c, src, qBase)
	src.Add(triple("http://ex/b", "http://ex/p", "2"))

	q := parseQ(t, qBase)
	if _, _, st := c.Lookup(q, src); st != Stale {
		t.Fatalf("setup: want stale")
	}
	got, ok := c.LookupStale(q, src)
	if !ok || len(got.Bindings) != 1 {
		t.Fatalf("stale serve failed: ok=%v", ok)
	}
	// Renamed query also stale-serves with remapping.
	q2 := parseQ(t, `SELECT ?x ?y WHERE { ?x <http://ex/p> ?y }`)
	got, ok = c.LookupStale(q2, src)
	if !ok || got.Vars[0] != "x" {
		t.Fatalf("stale remap failed: ok=%v vars=%v", ok, got.Vars)
	}
	// Unknown query: no stale entry.
	if _, ok := c.LookupStale(parseQ(t, `ASK { ?s <http://ex/p> ?o }`), src); ok {
		t.Fatalf("stale serve invented an entry")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	src := newMemSource()
	src.Add(triple("http://ex/a", "http://ex/p", "1"))
	c := New(2, 0)
	queries := []string{
		`SELECT ?s WHERE { ?s <http://ex/p> ?o }`,
		`SELECT ?s WHERE { ?s <http://ex/q> ?o }`,
		`SELECT ?s WHERE { ?s <http://ex/r> ?o }`,
	}
	for _, qs := range queries {
		evalThrough(t, c, src, qs)
	}
	if c.Len() != 2 {
		t.Fatalf("capacity not enforced: %d", c.Len())
	}
	// Oldest (queries[0]) was evicted.
	if _, _, st := c.Lookup(parseQ(t, queries[0]), src); st != Miss {
		t.Fatalf("oldest not evicted: %v", st)
	}
	if _, _, st := c.Lookup(parseQ(t, queries[2]), src); st != Hit {
		t.Fatalf("newest evicted: %v", st)
	}
}

func TestCacheBypassWithoutFingerprint(t *testing.T) {
	c := New(16, 0)
	bare := sourceFunc(func(s, p, o rdf.Term) []rdf.Triple { return nil })
	if _, _, st := c.Lookup(parseQ(t, qBase), bare); st != Bypass {
		t.Fatalf("fingerprint-less source must bypass")
	}
	if _, ok := c.LookupStale(parseQ(t, qBase), bare); ok {
		t.Fatalf("stale lookup must bypass too")
	}
}

type sourceFunc func(s, p, o rdf.Term) []rdf.Triple

func (f sourceFunc) Match(s, p, o rdf.Term) []rdf.Triple { return f(s, p, o) }

func TestNilCacheIsNoop(t *testing.T) {
	var c *Cache
	src := newMemSource()
	if _, _, st := c.Lookup(parseQ(t, qBase), src); st != Bypass {
		t.Fatalf("nil cache must bypass")
	}
	if _, ok := c.LookupStale(parseQ(t, qBase), src); ok {
		t.Fatalf("nil cache stale lookup")
	}
	Fill{}.Store(&sparql.Results{})
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("nil len")
	}
}

func TestCacheMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	src := newMemSource()
	src.Add(triple("http://ex/a", "http://ex/p", "1"))
	c := New(16, 0)
	c.Metrics = reg

	evalThrough(t, c, src, qBase)   // 2 misses (double lookup), 1 fill
	c.Lookup(parseQ(t, qBase), src) // hit
	src.Add(triple("http://ex/b", "http://ex/p", "2"))
	c.Lookup(parseQ(t, qBase), src)      // stale
	c.LookupStale(parseQ(t, qBase), src) // stale served

	if v := reg.Counter("rescache_misses_total").Value(); v != 2 {
		t.Fatalf("misses: %v", v)
	}
	if v := reg.Counter("rescache_hits_total").Value(); v != 1 {
		t.Fatalf("hits: %v", v)
	}
	if v := reg.Counter("rescache_stale_total").Value(); v != 1 {
		t.Fatalf("stale: %v", v)
	}
	if v := reg.Counter("rescache_stale_served_total").Value(); v != 1 {
		t.Fatalf("stale served: %v", v)
	}
	if v := reg.Counter("rescache_fills_total").Value(); v != 1 {
		t.Fatalf("fills: %v", v)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	src := newMemSource()
	src.Add(triple("http://ex/a", "http://ex/p", "1"))
	c := New(64, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := parseQ(t, qBase)
				res, fill, st := c.Lookup(q, src)
				switch st {
				case Hit:
					if len(res.Bindings) == 0 {
						t.Error("empty hit")
						return
					}
				case Miss, Stale:
					fresh, err := q.Eval(src)
					if err != nil {
						t.Error(err)
						return
					}
					fill.Store(fresh)
				}
				if w == 0 && i%10 == 0 {
					src.Add(triple(fmt.Sprintf("http://ex/n%d", i), "http://ex/p", "x"))
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestNextFingerprintUnique(t *testing.T) {
	a, b := NextFingerprint("x"), NextFingerprint("x")
	if a == b {
		t.Fatalf("fingerprints collide: %s", a)
	}
}

// ---- promoter ----

func TestPromoterLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	p := NewPromoter(3, time.Minute)
	p.Now = func() time.Time { return now }
	stamp := "v1"
	var promoted, checked int
	p.Promote = func(region string) (string, error) { promoted++; return stamp, nil }
	p.Check = func(region string) (string, error) { checked++; return stamp, nil }

	p.Note("r1")
	p.Note("r1")
	if p.Promoted() {
		t.Fatalf("promoted before threshold")
	}
	p.Note("r1") // threshold: background promotion starts
	p.Quiesce()
	if !p.Promoted() {
		t.Fatalf("not promoted after threshold")
	}
	if promoted != 1 {
		t.Fatalf("promote calls: %d", promoted)
	}
	if p.Epoch() != 1 {
		t.Fatalf("epoch after promote: %d", p.Epoch())
	}

	// Within the revalidation window: no checks.
	now = now.Add(30 * time.Second)
	p.Promoted()
	if checked != 0 {
		t.Fatalf("checked early: %d", checked)
	}

	// Past the window with an unchanged stamp: still promoted.
	now = now.Add(31 * time.Second)
	if !p.Promoted() || checked != 1 {
		t.Fatalf("revalidation failed: promoted=%v checked=%d", p.Promoted(), checked)
	}

	// Upstream changes: next revalidation demotes.
	stamp = "v2"
	var demoted []string
	p.OnDemote = func(r string) { demoted = append(demoted, r) }
	now = now.Add(time.Minute)
	if p.Promoted() {
		t.Fatalf("still promoted after upstream change")
	}
	if len(demoted) != 1 || demoted[0] != "r1" {
		t.Fatalf("demote hook: %v", demoted)
	}
	if p.Epoch() != 2 {
		t.Fatalf("epoch after demote: %d", p.Epoch())
	}

	// Uses re-accumulate toward re-promotion.
	p.Note("r1")
	p.Note("r1")
	p.Note("r1")
	p.Quiesce()
	if !p.Promoted() {
		t.Fatalf("re-promotion failed")
	}
}

func TestPromoterCheckErrorServesStale(t *testing.T) {
	now := time.Unix(0, 0)
	p := NewPromoter(1, time.Minute)
	p.Now = func() time.Time { return now }
	p.Promote = func(string) (string, error) { return "v1", nil }
	fail := true
	checks := 0
	p.Check = func(string) (string, error) {
		checks++
		if fail {
			return "", errors.New("upstream down")
		}
		return "v1", nil
	}
	p.Note("r")
	p.Quiesce()
	now = now.Add(2 * time.Minute)
	if !p.Promoted() || checks != 1 {
		t.Fatalf("check error must keep serving promoted: %v %d", p.Promoted(), checks)
	}
	// Backed off: immediate re-call doesn't re-check.
	p.Promoted()
	if checks != 1 {
		t.Fatalf("no backoff after error: %d", checks)
	}
	now = now.Add(2 * time.Minute)
	fail = false
	if !p.Promoted() || checks != 2 {
		t.Fatalf("recovery check missing: %d", checks)
	}
}

func TestPromoterPromoteFailureStaysCold(t *testing.T) {
	p := NewPromoter(1, 0)
	p.Promote = func(string) (string, error) { return "", errors.New("boom") }
	p.Note("r")
	p.Quiesce()
	if p.Promoted() {
		t.Fatalf("failed promotion marked promoted")
	}
	if p.Epoch() != 0 {
		t.Fatalf("failed promotion bumped epoch")
	}
	// Counter reset: threshold must be crossed again.
	ok := false
	p.Promote = func(string) (string, error) { ok = true; return "v", nil }
	p.Note("r")
	p.Quiesce()
	if !ok || !p.Promoted() {
		t.Fatalf("retry after failure did not promote")
	}
}

func TestPromoterPartialSetNotPromoted(t *testing.T) {
	p := NewPromoter(2, 0)
	p.Promote = func(string) (string, error) { return "v", nil }
	p.Note("a")
	p.Note("a")
	p.Quiesce()
	p.Note("b") // b is cold
	if p.Promoted() {
		t.Fatalf("partial region set reported promoted")
	}
	p.Note("b")
	p.Quiesce()
	if !p.Promoted() {
		t.Fatalf("full set not promoted")
	}
	if p.Regions() != 2 {
		t.Fatalf("regions: %d", p.Regions())
	}
}

func TestPromoterEmptyAndNil(t *testing.T) {
	p := NewPromoter(1, 0)
	if p.Promoted() {
		t.Fatalf("empty set reported promoted")
	}
	var nilP *Promoter
	nilP.Note("x")
	nilP.Demote("x")
	nilP.Quiesce()
	if nilP.Promoted() || nilP.Epoch() != 0 || nilP.Regions() != 0 {
		t.Fatalf("nil promoter misbehaved")
	}
}

func TestPromoterConcurrentNotes(t *testing.T) {
	p := NewPromoter(10, 0)
	var promotions int
	var mu sync.Mutex
	p.Promote = func(string) (string, error) {
		mu.Lock()
		promotions++
		mu.Unlock()
		return "v", nil
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p.Note("hot")
			}
		}()
	}
	wg.Wait()
	p.Quiesce()
	if promotions != 1 {
		t.Fatalf("promotion ran %d times", promotions)
	}
	if !p.Promoted() {
		t.Fatalf("not promoted")
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{Hit: "hit", Miss: "miss", Stale: "stale", Bypass: "bypass"} {
		if st.String() != want {
			t.Fatalf("%d: %s", st, st.String())
		}
	}
}

func TestCachePurgeAndDefaults(t *testing.T) {
	src := newMemSource()
	src.Add(triple("http://ex/a", "http://ex/p", "1"))
	c := New(0, 0) // capacity default
	c.Metrics = telemetry.NewRegistry()
	evalThrough(t, c, src, qBase)
	if c.Len() != 1 {
		t.Fatalf("len: %d", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("purge left entries")
	}
	if _, _, st := c.Lookup(parseQ(t, qBase), src); st != Miss {
		t.Fatalf("purged entry hit")
	}
	// Bypass + eviction metric paths with a registry attached.
	bare := sourceFunc(func(s, p, o rdf.Term) []rdf.Triple { return nil })
	c.Lookup(parseQ(t, qBase), bare)
	if v := c.Metrics.Counter("rescache_bypass_total").Value(); v != 1 {
		t.Fatalf("bypass counter: %v", v)
	}
	small := New(1, 0)
	small.Metrics = c.Metrics
	evalThrough(t, small, src, `SELECT ?s WHERE { ?s <http://ex/p> ?o }`)
	evalThrough(t, small, src, `SELECT ?s WHERE { ?s <http://ex/q> ?o }`)
	if v := c.Metrics.Counter("rescache_evictions_total").Value(); v != 1 {
		t.Fatalf("eviction counter: %v", v)
	}
}

func TestPromoterMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	now := time.Unix(0, 0)
	p := NewPromoter(0, time.Minute) // promoteAfter default → 1
	p.Metrics = reg
	p.Now = func() time.Time { return now }
	stamp := "v1"
	p.Promote = func(string) (string, error) { return stamp, nil }
	p.Check = func(string) (string, error) { return stamp, nil }

	p.Note("r")
	p.Quiesce()
	if !p.Promoted() {
		t.Fatalf("not promoted")
	}
	stamp = "v2"
	now = now.Add(2 * time.Minute)
	p.Promoted() // revalidate → demote
	for name, want := range map[string]int64{
		"promotion_started_total":       1,
		"promotion_completed_total":     1,
		"promotion_demotions_total":     1,
		"promotion_revalidations_total": 1,
	} {
		if v := reg.Counter(name).Value(); v != want {
			t.Fatalf("%s: %v", name, v)
		}
	}
	// Failure path with metrics.
	p2 := NewPromoter(1, 0)
	p2.Metrics = reg
	p2.Promote = func(string) (string, error) { return "", errors.New("x") }
	p2.Note("r")
	p2.Quiesce()
	if v := reg.Counter("promotion_failed_total").Value(); v != 1 {
		t.Fatalf("failed counter: %v", v)
	}
}
