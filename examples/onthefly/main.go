// onthefly reproduces the paper's §3.2 on-the-fly workflow: a local
// OPeNDAP server publishes a synthetic Copernicus LAI product; the MadIS
// opendap virtual table streams it into SQL; Ontop-spatial mappings
// (the paper's Listing 2) expose it as a virtual RDF graph answered with
// GeoSPARQL (Listing 3) — no triples materialized, with the cache window
// moderating repeated calls.
//
//	go run ./examples/onthefly
package main

import (
	"fmt"
	"log"
	"time"

	"applab/internal/core"
	"applab/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. Synthetic LAI product, published over OPeNDAP.
	opts := workload.DefaultLAIOptions()
	opts.NLat, opts.NLon = 12, 15
	grid := workload.LAIGrid(opts)
	grid.Name = "lai"

	stack, err := core.NewOnTheFlyStack(core.Listing2Mapping, grid)
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()
	stack.SetLatency(20 * time.Millisecond) // simulate the WAN link to VITO
	fmt.Printf("OPeNDAP server at %s\n", stack.URL())

	// Metadata discovery the way a mobile developer would do it.
	dds, err := stack.Client.DDS("lai")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDDS of the published product:\n%s\n", dds)

	// 2. The paper's Listing 3 over the virtual graph: data is fetched
	// from OPeNDAP at query time.
	start := time.Now()
	res, err := stack.Query(core.Listing3Query)
	if err != nil {
		log.Fatal(err)
	}
	cold := time.Since(start)
	fmt.Printf("Listing 3 (cold): %d rows in %v (%d OPeNDAP calls so far)\n",
		len(res.Bindings), cold.Round(time.Millisecond), stack.Adapter.PhysicalCalls())

	// 3. Repeat within the 10-minute cache window of Listing 2: no new
	// OPeNDAP call.
	start = time.Now()
	res, err = stack.Query(core.Listing3Query)
	if err != nil {
		log.Fatal(err)
	}
	warm := time.Since(start)
	fmt.Printf("Listing 3 (warm): %d rows in %v (%d OPeNDAP calls — cache window hit)\n",
		len(res.Bindings), warm.Round(time.Millisecond), stack.Adapter.PhysicalCalls())

	// 4. A spatial filter over the same virtual graph.
	center := workload.ParisExtent.Center()
	q := fmt.Sprintf(`SELECT (COUNT(*) AS ?n) (AVG(?lai) AS ?avg) WHERE {
  ?s lai:lai ?lai ; geo:hasGeometry ?g .
  ?g geo:asWKT ?wkt .
  FILTER(geof:distance(?wkt, "POINT (%g %g)"^^geo:wktLiteral) < 0.05)
}`, center.X, center.Y)
	res, err = stack.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	n, _ := res.Bindings[0]["n"].Int()
	avg, _ := res.Bindings[0]["avg"].Float()
	fmt.Printf("\ncity-center greenness: %d observations, mean LAI %.2f\n", n, avg)

	// 5. For costly repeated analysis, materialize (the paper's §5
	// advice) into a Strabon store.
	st, err := stack.Materialize()
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	fmt.Printf("materialized snapshot: %d triples, %d observations\n",
		st.Len(), st.ObservationCount())
}
