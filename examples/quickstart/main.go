// Quickstart: load a few triples, run a GeoSPARQL query, print the rows.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"applab/internal/rdf"
	"applab/internal/strabon"
)

const data = `
@prefix geo: <http://www.opengis.net/ont/geosparql#> .
@prefix osm: <http://www.app-lab.eu/osm/> .

osm:boisDeBoulogne a osm:park ;
    osm:hasName "Bois de Boulogne" ;
    geo:hasGeometry osm:geomBdB .
osm:geomBdB geo:asWKT "POLYGON ((2.23 48.85, 2.26 48.85, 2.26 48.88, 2.23 48.88, 2.23 48.85))"^^geo:wktLiteral .

osm:parcMonceau a osm:park ;
    osm:hasName "Parc Monceau" ;
    geo:hasGeometry osm:geomPM .
osm:geomPM geo:asWKT "POLYGON ((2.307 48.878, 2.311 48.878, 2.311 48.881, 2.307 48.881, 2.307 48.878))"^^geo:wktLiteral .

osm:eiffel a osm:landmark ;
    osm:hasName "Tour Eiffel" ;
    geo:hasGeometry osm:geomTE .
osm:geomTE geo:asWKT "POINT (2.2945 48.8584)"^^geo:wktLiteral .
`

func main() {
	log.SetFlags(0)

	// 1. Parse Turtle and load it into the spatiotemporal store.
	triples, _, err := rdf.ParseTurtleString(data)
	if err != nil {
		log.Fatal(err)
	}
	store := strabon.New()
	defer store.Close()
	store.AddAll(triples)
	fmt.Printf("loaded %d triples, %d indexed geometries\n", store.Len(), store.GeometryCount())

	// 2. A GeoSPARQL query: which parks is the Eiffel tower within 0.05
	// degrees of?
	res, err := store.Query(`
SELECT ?name (geof:distance(?parkWKT, "POINT (2.2945 48.8584)"^^geo:wktLiteral) AS ?d)
WHERE {
  ?park a osm:park ; osm:hasName ?name ; geo:hasGeometry ?g .
  ?g geo:asWKT ?parkWKT .
  FILTER(geof:distance(?parkWKT, "POINT (2.2945 48.8584)"^^geo:wktLiteral) < 0.05)
}
ORDER BY ?d`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nparks within 0.05 degrees of the Eiffel tower:")
	for _, b := range res.Bindings {
		d, _ := b["d"].Float()
		fmt.Printf("  %-20s distance %.4f\n", b["name"].Value, d)
	}

	// 3. A spatial ASK: does the Bois de Boulogne contain point (2.24, 48.86)?
	ask, err := store.Query(`ASK {
  ?park osm:hasName "Bois de Boulogne" ; geo:hasGeometry ?g .
  ?g geo:asWKT ?wkt .
  FILTER(geof:sfContains(?wkt, "POINT (2.24 48.86)"^^geo:wktLiteral))
}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBois de Boulogne contains (2.24, 48.86)? %v\n", ask.Bool)
}
