// paris-greenness reproduces the paper's §4 case study end-to-end through
// the materialized workflow: synthetic Copernicus/OSM/GADM datasets are
// converted to RDF, stored in Strabon, interlinked, queried with the
// paper's Listing 1, and rendered as the Figure 4 thematic map.
//
//	go run ./examples/paris-greenness
package main

import (
	"fmt"
	"log"
	"os"

	"applab/internal/core"
	"applab/internal/geom"
	"applab/internal/interlink"
	"applab/internal/rdf"
	"applab/internal/sextant"
	"applab/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. Generate the case-study datasets (substitutes for the real
	// Copernicus land monitoring, OSM and GADM data).
	ext := workload.ParisExtent
	parks := workload.OSMParks(workload.VectorOptions{Extent: ext, N: 40, Seed: 5})
	corine := workload.CorineLandCover(workload.VectorOptions{Extent: ext, N: 60, Seed: 6})
	urban := workload.UrbanAtlas(workload.VectorOptions{Extent: ext, N: 60, Seed: 7})
	gadm := workload.GADMAreas(ext, 4, 5)
	lai := workload.LAIGrid(workload.DefaultLAIOptions())

	// 2. Transform to RDF and load into Strabon (with the Figure 2/3
	// ontologies preloaded).
	stack := core.NewMaterializedStack()
	stack.LoadFeatures(rdf.NSOSM, rdf.NSOSM+"poiType", parks)
	stack.LoadFeatures(rdf.NSCLC, rdf.NSCLC+"hasCorineValue", corine)
	stack.LoadFeatures(rdf.NSUA, rdf.NSUA+"hasClass", urban)
	stack.LoadFeatures(rdf.NSGADM, rdf.NSGADM+"hasType", gadm)
	if err := stack.LoadLAI(lai, "LAI"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store: %d triples, %d geometries, %d LAI observations\n",
		stack.Store.Len(), stack.Store.GeometryCount(), stack.Store.ObservationCount())

	// 3. Interlink: discover geo:sfIntersects links between everything
	// with a geometry (parks overlapping land-cover patches etc.).
	linker := &interlink.SpatialLinker{
		Relation:  geom.Intersects,
		Predicate: rdf.NSGeo + "sfIntersects",
		Workers:   2,
	}
	n := stack.Interlink(linker, rdf.NSOSM+"hasName", "")
	fmt.Printf("interlinking: %d geo:sfIntersects links added\n", n)

	// 4. The paper's Listing 1: LAI values over the Bois de Boulogne.
	res, err := stack.Query(core.Listing1Query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Listing 1: %d LAI observations intersect the Bois de Boulogne\n", len(res.Bindings))
	for i, b := range res.Bindings {
		if i >= 3 {
			fmt.Printf("  ... and %d more\n", len(res.Bindings)-3)
			break
		}
		v, _ := b["lai"].Float()
		fmt.Printf("  LAI %.2f at %s\n", v, b["geoB"].Value)
	}

	// 5. Figure 4: the layered "greenness of Paris" map.
	m := sextant.NewMap("The greenness of Paris")
	mustLayer := func(name, q, wkt, val, tm string, style sextant.Style) {
		r, err := stack.Query(q)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if _, err := m.LayerFromResults(name, style, r, wkt, val, tm); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	mustLayer("CORINE green urban areas",
		`SELECT ?wkt WHERE { ?a clc:hasCorineValue clc:greenUrbanAreas .
		   ?a geo:hasGeometry ?g . ?g geo:asWKT ?wkt }`,
		"wkt", "", "", sextant.Style{Stroke: "#2e7d32", Fill: "#66bb6a", FillOpacity: 0.45})
	mustLayer("OSM parks",
		`SELECT ?wkt WHERE { ?a osm:poiType osm:park . ?a geo:hasGeometry ?g . ?g geo:asWKT ?wkt }`,
		"wkt", "", "", sextant.Style{Stroke: "#1b5e20", Fill: "#a5d6a7", FillOpacity: 0.5})
	mustLayer("GADM boundaries",
		`SELECT ?wkt WHERE { ?a gadm:hasType ?ty . ?a geo:hasGeometry ?g . ?g geo:asWKT ?wkt }`,
		"wkt", "", "", sextant.Style{Stroke: "#d500f9", Fill: "none", FillOpacity: 0})
	mustLayer("LAI observations",
		`SELECT ?wkt ?lai ?t WHERE { ?o lai:lai ?lai ; geo:hasGeometry ?g ; time:hasTime ?t .
		   ?g geo:asWKT ?wkt }`,
		"wkt", "lai", "t", sextant.Style{Stroke: "none", Fill: "#004d40", FillOpacity: 0.8, Radius: 1.5})

	out := "paris-greenness.svg"
	if err := os.WriteFile(out, []byte(m.RenderSVG(900)), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 4 map written to %s (%d layers, %d temporal frames)\n",
		out, len(m.Layers), len(m.Times()))
}
