// federation demonstrates the paper's §5 open problem solved at prototype
// scale: a GeoSPARQL query answered over a *federation* of SPARQL
// endpoints — one serving GADM administrative areas, one serving
// OpenStreetMap parks — with cross-endpoint spatial joins and learned
// source selection.
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"applab/internal/endpoint"
	"applab/internal/federation"
	"applab/internal/rdf"
	"applab/internal/strabon"
	"applab/internal/workload"
)

func serveStore(st *strabon.Store) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: endpoint.Handler(st)}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() { hs.Close() }, nil
}

func main() {
	log.SetFlags(0)

	// Endpoint 1: the GADM administrative areas of Paris.
	gadmStore := strabon.New()
	gadmStore.AddAll(workload.FeaturesToRDF(rdf.NSGADM, rdf.NSGADM+"hasType",
		workload.GADMAreas(workload.ParisExtent, 4, 5)))
	gadmURL, closeGadm, err := serveStore(gadmStore)
	if err != nil {
		log.Fatal(err)
	}
	defer closeGadm()

	// Endpoint 2: OpenStreetMap parks.
	osmStore := strabon.New()
	osmStore.AddAll(workload.FeaturesToRDF(rdf.NSOSM, rdf.NSOSM+"poiType",
		workload.OSMParks(workload.VectorOptions{Extent: workload.ParisExtent, N: 25, Seed: 5})))
	osmURL, closeOsm, err := serveStore(osmStore)
	if err != nil {
		log.Fatal(err)
	}
	defer closeOsm()

	fmt.Printf("GADM endpoint: %s/sparql (%d triples)\n", gadmURL, gadmStore.Len())
	fmt.Printf("OSM endpoint:  %s/sparql (%d triples)\n", osmURL, osmStore.Len())

	// Federate the two remote endpoints.
	fed := federation.New(
		federation.Member{Name: "gadm", Source: endpoint.NewRemoteSource(gadmURL)},
		federation.Member{Name: "osm", Source: endpoint.NewRemoteSource(osmURL)},
	)

	// A cross-endpoint GeoSPARQL join: which administrative areas does
	// each park intersect? Neither endpoint alone can answer this.
	res, err := fed.Query(`
SELECT ?parkName ?areaName WHERE {
  ?park osm:poiType osm:park ; osm:hasName ?parkName ; geo:hasGeometry ?pg .
  ?pg geo:asWKT ?pw .
  ?area gadm:hasType ?ty ; gadm:hasName ?areaName ; geo:hasGeometry ?ag .
  ?ag geo:asWKT ?aw .
  FILTER(geof:sfIntersects(?pw, ?aw))
} ORDER BY ?parkName`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncross-endpoint spatial join: %d (park, area) pairs\n", len(res.Bindings))
	shown := 0
	for _, b := range res.Bindings {
		if shown >= 6 {
			fmt.Printf("  ... and %d more\n", len(res.Bindings)-shown)
			break
		}
		fmt.Printf("  %-14s intersects %s\n", b["parkName"].Value, b["areaName"].Value)
		shown++
	}

	// Source selection: the first run of an OSM-only pattern probes both
	// endpoints; the repeat skips the GADM endpoint, which was learned
	// not to contribute.
	fed.ForgetCapabilities()
	before := fed.RequestCount("gadm")
	fed.Query(`SELECT (COUNT(*) AS ?n) WHERE { ?s osm:poiType osm:park }`)
	mid := fed.RequestCount("gadm")
	fed.Query(`SELECT (COUNT(*) AS ?n) WHERE { ?s osm:poiType osm:park }`)
	after := fed.RequestCount("gadm")
	fmt.Printf("\nsource selection: GADM endpoint requests %d -> %d -> %d "+
		"(probed once, then skipped)\n", before, mid, after)
}
