// dataset-search reproduces the paper's §5 dataset-discoverability
// contribution: the case-study datasets are annotated with schema.org
// JSON-LD (extended with the EO vocabulary), indexed, and searched with
// the paper's motivating question — "Is there a land cover dataset
// produced by the European Environmental Agency covering the area of
// Torino, Italy?"
//
//	go run ./examples/dataset-search
package main

import (
	"fmt"
	"log"
	"time"

	"applab/internal/geom"
	"applab/internal/schemaorg"
)

func main() {
	log.SetFlags(0)

	catalogue := []schemaorg.EODataset{
		{
			ID:              "http://www.app-lab.eu/datasets/corine-2012",
			Name:            "CORINE Land Cover 2012",
			Description:     "Pan-European land cover / land use inventory, 44 classes, 39 countries",
			Publisher:       "European Environment Agency",
			Keywords:        []string{"land cover", "land use", "Copernicus", "pan-European"},
			SpatialCoverage: geom.Envelope{MinX: -10, MinY: 35, MaxX: 30, MaxY: 60},
			TemporalStart:   time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
			TemporalEnd:     time.Date(2012, 12, 31, 0, 0, 0, 0, time.UTC),
			Platform:        "Sentinel-2",
			ProductType:     "LandCover",
		},
		{
			ID:              "http://www.app-lab.eu/datasets/global-lai",
			Name:            "Copernicus Global Land LAI",
			Description:     "10-daily leaf area index composites at global scale",
			Publisher:       "VITO (Copernicus Global Land Service)",
			Keywords:        []string{"LAI", "vegetation", "biophysical"},
			SpatialCoverage: geom.Envelope{MinX: -180, MinY: -90, MaxX: 180, MaxY: 90},
			Platform:        "PROBA-V",
			Instrument:      "VEGETATION",
			ProcessingLevel: "L3",
			ProductType:     "LAI",
		},
		{
			ID:              "http://www.app-lab.eu/datasets/urban-atlas-torino",
			Name:            "Urban Atlas 2012 - Torino",
			Description:     "Land use / land cover for the Torino functional urban area",
			Publisher:       "European Environment Agency",
			Keywords:        []string{"urban", "land use", "local"},
			SpatialCoverage: geom.Envelope{MinX: 7.5, MinY: 44.95, MaxX: 7.85, MaxY: 45.2},
			ProductType:     "LandUse",
		},
	}

	// 1. Emit the JSON-LD annotations webmasters would embed (and Google
	// dataset search would index).
	ix := schemaorg.NewIndex()
	for _, d := range catalogue {
		doc, err := schemaorg.JSONLD(d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("---- %s ----\n%s\n\n", d.Name, doc)
		// Round-trip through the markup, as a harvester would.
		parsed, err := schemaorg.ParseJSONLD(doc)
		if err != nil {
			log.Fatal(err)
		}
		ix.Add(parsed)
	}

	// 2. The paper's motivating question.
	torino := geom.Envelope{MinX: 7.6, MinY: 45.0, MaxX: 7.75, MaxY: 45.15}
	question := "Is there a land cover dataset produced by the European Environmental Agency covering the area of Torino, Italy?"
	fmt.Printf("Q: %s\n", question)
	hits := ix.Search(schemaorg.Query{Text: question, Area: torino})
	if len(hits) == 0 {
		fmt.Println("A: no matching dataset")
		return
	}
	fmt.Println("A: yes —")
	for i, h := range hits {
		fmt.Printf("   %d. %s (%s), coverage %+v\n", i+1, h.Name, h.Publisher, h.SpatialCoverage)
	}
}
