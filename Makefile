GO ?= go

# Packages exercised under the race detector: the concurrent query stack
# (sharded store, OPeNDAP caches, federation fan-out, interlinking).
RACE_PKGS = ./internal/strabon/ ./internal/opendap/ ./internal/federation/ ./internal/interlink/

.PHONY: all build test lint race fmt vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Repo-specific static analysis (see DESIGN.md "Correctness tooling").
lint:
	$(GO) run ./cmd/applab-lint ./...

race:
	$(GO) test -race $(RACE_PKGS)

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# The full gate: fmt + vet + lint + tests + race in one invocation.
ci:
	./ci.sh
