GO ?= go

# Packages exercised under the race detector: the concurrent query stack
# (sharded store, OPeNDAP caches, federation fan-out, interlinking) plus
# the fault-injection harness, the SPARQL HTTP transport it exercises,
# the segment storage engine (concurrent readers vs writer/flush), and
# the spatial core (parallel join probes, bounded geometry cache).
RACE_PKGS = ./internal/sparql/ ./internal/strabon/ ./internal/opendap/ ./internal/federation/ ./internal/interlink/ ./internal/faults/ ./internal/endpoint/ ./internal/telemetry/ ./internal/admission/ ./internal/e2e/ ./internal/segment/ ./internal/geom/ ./internal/geom/rtree/ ./internal/geosparql/ ./internal/geographica/

# End-to-end suites: the golden two-workflow test over live loopback
# servers plus the cmd-level boot/query/shutdown tests.
E2E_PKGS = ./internal/e2e/ ./cmd/strabon/ ./cmd/opendapd/

.PHONY: all build test lint race fmt vet fuzz bench bench-telemetry bench-budget bench-segment bench-spatial bench-cache e2e ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Repo-specific static analysis (see DESIGN.md "Correctness tooling"
# and "Static analysis architecture"): the linter lints itself first,
# then the whole tree against the committed (empty) baseline.
lint:
	$(GO) run ./cmd/applab-lint ./internal/analysis/... ./cmd/applab-lint
	$(GO) run ./cmd/applab-lint -baseline lint-baseline.json ./...

race:
	$(GO) test -race $(RACE_PKGS)

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# Short mutation runs over the binary/DAP parsers; ci.sh runs the same
# targets. Each -fuzz invocation may match only one target.
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzRead$$' -fuzztime=3s ./internal/netcdf/
	$(GO) test -run='^$$' -fuzz='^FuzzParseConstraint$$' -fuzztime=2s ./internal/opendap/
	$(GO) test -run='^$$' -fuzz='^FuzzParseDDS$$' -fuzztime=2s ./internal/opendap/
	$(GO) test -run='^$$' -fuzz='^FuzzApplyConstraint$$' -fuzztime=2s ./internal/opendap/
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=3s ./internal/sparql/
	$(GO) test -run='^$$' -fuzz='^FuzzLoad$$' -fuzztime=3s ./internal/strabon/
	$(GO) test -run='^$$' -fuzz='^FuzzSegmentOpen$$' -fuzztime=3s ./internal/segment/
	$(GO) test -run='^$$' -fuzz='^FuzzWALReplay$$' -fuzztime=3s ./internal/segment/

# Engine benchmarks: the in-package BenchmarkEngine_* family, the
# seed-vs-compiled comparison recorded machine-readably in BENCH_PR3.json,
# and the spatial-join-vs-filter comparison in BENCH_PR8.json.
bench: bench-spatial
	$(GO) test -run=NONE -bench=BenchmarkEngine_ -benchmem ./internal/sparql/
	$(GO) run ./cmd/applab-bench -json BENCH_PR3.json

# Telemetry overhead comparison (instrumented vs uninstrumented engine),
# recorded in BENCH_PR4.json; fails if Engine_BGPJoin exceeds the 5%
# ns/op budget.
bench-telemetry:
	$(GO) run ./cmd/applab-bench -telemetry-json BENCH_PR4.json

# Budget overhead comparison (budgeted vs unlimited engine), recorded in
# BENCH_PR5.json; fails if Engine_BGPJoin exceeds the 5% ns/op budget.
bench-budget:
	$(GO) run ./cmd/applab-bench -budget-json BENCH_PR5.json

# Segment store report (ingest throughput, cold start vs .astr replay,
# memory-mode query overhead), recorded in BENCH_PR7.json; fails if
# Engine_BGPJoin through the memory-mode store exceeds the 5% budget.
bench-segment:
	$(GO) run ./cmd/applab-bench -segment-json BENCH_PR7.json

# Spatial join vs per-row filtering on Geographica join queries,
# recorded in BENCH_PR8.json; fails if a join query misses the 3x
# speedup floor, a strategy diverges on row count, or Engine_BGPJoin
# pays more than 5% for the plan detection.
bench-spatial:
	$(GO) run ./cmd/applab-bench -spatial-json BENCH_PR8.json

# Result cache report (federated upstream-request collapse and per-query
# lookup overhead), recorded in BENCH_PR9.json; fails if the cached
# federated workload collapses upstream requests less than 10x or the
# cache-disabled Lookup path costs Engine_BGPJoin more than 5%.
bench-cache:
	$(GO) run ./cmd/applab-bench -cache-json BENCH_PR9.json

# End-to-end golden suite: boots both Figure-1 workflows on loopback
# servers and asserts exact telemetry counters (see internal/e2e).
e2e:
	$(GO) test -count=1 $(E2E_PKGS)

# The full gate: fmt + vet + lint + tests + race in one invocation.
ci:
	./ci.sh
