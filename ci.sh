#!/usr/bin/env bash
# CI gate for the applab repository: formatting, vet, the repo's own
# static analysis (cmd/applab-lint), the full test suite, and the race
# detector over the concurrent query stack. Everything is stdlib-only;
# the whole gate runs offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt required on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== applab-lint (self-lint: the linter and its framework first)"
go run ./cmd/applab-lint ./internal/analysis/... ./cmd/applab-lint

echo "== applab-lint (whole repo, against the committed baseline)"
# The dataflow checkers must stay fast enough to run on every commit:
# the whole-repo pass gets a 30-second wall budget.
lint_start=$(date +%s)
go run ./cmd/applab-lint -baseline lint-baseline.json ./...
lint_elapsed=$(( $(date +%s) - lint_start ))
if [ "$lint_elapsed" -ge 30 ]; then
    echo "applab-lint took ${lint_elapsed}s; budget is 30s" >&2
    exit 1
fi
echo "  whole-repo lint in ${lint_elapsed}s (budget 30s)"

echo "== go test"
go test ./...

echo "== go test -race (concurrent query stack + fault injection + telemetry)"
go test -race ./internal/sparql/ ./internal/strabon/ ./internal/opendap/ \
    ./internal/federation/ ./internal/interlink/ \
    ./internal/faults/ ./internal/endpoint/ \
    ./internal/telemetry/ ./internal/admission/ ./internal/e2e/ \
    ./internal/segment/ ./internal/geom/ ./internal/geom/rtree/ \
    ./internal/geosparql/ ./internal/geographica/ \
    ./internal/rescache/ ./internal/obda/ ./internal/cluster/

echo "== e2e golden suite (both workflows over live loopback servers)"
make e2e

echo "== coverage gate (resilience stack)"
# The retry/breaker/deadline machinery is all error paths; a coverage
# floor keeps new branches from landing untested. Floors sit ~5pt under
# the level at which the gate was introduced.
check_cover() {
    pkg=$1 floor=$2
    pct=$(go test -cover "$pkg" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "coverage gate: no coverage reported for $pkg" >&2
        exit 1
    fi
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
        echo "coverage gate: $pkg at ${pct}%, floor is ${floor}%" >&2
        exit 1
    fi
    echo "  $pkg: ${pct}% (floor ${floor}%)"
}
check_cover ./internal/opendap/ 85
check_cover ./internal/federation/ 85
check_cover ./internal/telemetry/ 90
check_cover ./internal/sparql/ 80
check_cover ./internal/admission/ 90
check_cover ./internal/analysis/ 90
check_cover ./internal/segment/ 90
check_cover ./internal/geom/ 85
check_cover ./internal/geom/rtree/ 85
check_cover ./internal/rescache/ 90
check_cover ./internal/cluster/ 85

echo "== fuzz smoke (seed corpus + a few seconds of mutation)"
# One -fuzz target per invocation: the flag rejects patterns matching
# several targets in a package.
go test -run='^$' -fuzz='^FuzzRead$' -fuzztime=3s ./internal/netcdf/
go test -run='^$' -fuzz='^FuzzParseConstraint$' -fuzztime=2s ./internal/opendap/
go test -run='^$' -fuzz='^FuzzParseDDS$' -fuzztime=2s ./internal/opendap/
go test -run='^$' -fuzz='^FuzzApplyConstraint$' -fuzztime=2s ./internal/opendap/
go test -run='^$' -fuzz='^FuzzParse$' -fuzztime=3s ./internal/sparql/
go test -run='^$' -fuzz='^FuzzPlanKey$' -fuzztime=3s ./internal/sparql/
go test -run='^$' -fuzz='^FuzzLoad$' -fuzztime=3s ./internal/strabon/
go test -run='^$' -fuzz='^FuzzSegmentOpen$' -fuzztime=3s ./internal/segment/
go test -run='^$' -fuzz='^FuzzWALReplay$' -fuzztime=3s ./internal/segment/
go test -run='^$' -fuzz='^FuzzWireDecode$' -fuzztime=3s ./internal/cluster/

echo "== budget overhead gate (budgeted vs unlimited engine)"
# Query budgets may not slow the engine down: applab-bench fails when
# Engine_BGPJoin's budgeted path exceeds the 5% ns/op overhead budget.
go run ./cmd/applab-bench -budget-json BENCH_PR5.json

echo "== segment store gate (ingest, cold start, memory-mode overhead)"
# The disk-backed store may not slow the in-memory path down:
# applab-bench fails when Engine_BGPJoin through the memory-mode
# segment store exceeds the 5% ns/op overhead budget. The report also
# records ingest throughput and the cold-start (footer open) vs .astr
# (full image replay) latency this PR's lazy boot is built on.
go run ./cmd/applab-bench -segment-json BENCH_PR7.json

echo "== spatial join gate (envelope index vs per-row filtering)"
# The planner-selected spatial join must beat the per-row filter path by
# at least 3x on the Geographica join queries, every strategy (inl,
# cells, store) must return the filter path's exact row count, and plans
# with no spatial filter may not pay more than 5% for the detection.
go run ./cmd/applab-bench -spatial-json BENCH_PR8.json

echo "== result cache gate (federated collapse + lookup overhead)"
# The plan-keyed result cache must collapse the repeated federated
# workload's upstream requests at least 10x, and the cache-disabled
# Lookup path (Bypass on an anonymous source) may not cost
# Engine_BGPJoin more than 5% ns/op.
go run ./cmd/applab-bench -cache-json BENCH_PR9.json

echo "== cluster serving gate (read scaling + hedged tail latency)"
# The replicated cluster must scale: 4 nodes serve the routed read
# workload at least 2.5x faster than 1 node in the deterministic
# queueing model, hedged reads must cut the slow-replica p99 at least
# 3x, and no hedged read may ever return duplicate rows.
go run ./cmd/applab-bench -cluster-json BENCH_PR10.json

echo "== bench compile smoke"
# Benchmarks must at least compile and run one iteration; keeps the
# BenchmarkEngine_* family (and BENCH_PR3.json's source) from rotting.
go test -run=NONE -bench=. -benchtime=1x ./... > /dev/null

echo "CI OK"
