#!/usr/bin/env bash
# CI gate for the applab repository: formatting, vet, the repo's own
# static analysis (cmd/applab-lint), the full test suite, and the race
# detector over the concurrent query stack. Everything is stdlib-only;
# the whole gate runs offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt required on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== applab-lint"
go run ./cmd/applab-lint ./...

echo "== go test"
go test ./...

echo "== go test -race (concurrent query stack)"
go test -race ./internal/strabon/ ./internal/opendap/ \
    ./internal/federation/ ./internal/interlink/

echo "CI OK"
